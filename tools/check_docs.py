#!/usr/bin/env python3
"""Documentation gate: link-check docs/ + README, doctest docs/*.md.

Three checks, all zero-dependency:

1. **Links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must resolve to an existing file.  External links
   (``http(s)://``), pure anchors (``#...``) and GitHub-relative paths
   that climb out of the repository (the CI badge) are skipped.
2. **Doctests** — every ``>>>`` example in ``docs/*.md`` is executed
   with :mod:`doctest`, so the documentation's code snippets cannot rot
   silently.
3. **CLI verb ↔ docs-page mapping** — every ``repro`` verb's
   ``--help`` epilog must name a ``docs/`` page, and that page must
   exist; a new verb cannot ship without documentation, and a renamed
   page cannot orphan a verb.

Exit status 0 when everything passes; 1 with a findings list otherwise.
Run from anywhere: ``python tools/check_docs.py``.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(paths: list[Path]) -> list[str]:
    problems: list[str] = []
    for path in paths:
        text = path.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if "://" in target or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(REPO_ROOT)
            except ValueError:
                continue  # GitHub-relative (e.g. the CI badge), not local
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def run_doctests(paths: list[Path]) -> list[str]:
    problems: list[str] = []
    for path in paths:
        result = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
            verbose=False,
        )
        label = path.relative_to(REPO_ROOT)
        if result.failed:
            problems.append(
                f"{label}: {result.failed}/{result.attempted} doctests failed"
            )
        else:
            print(f"  {label}: {result.attempted} doctests ok")
    return problems


_DOCS_EPILOG = re.compile(r"docs/([\w-]+)\.md")


def check_cli_verb_pages() -> list[str]:
    """Assert the verb ↔ docs-page mapping is complete.

    Walks the real argparse tree (not the source text), so the check
    cannot drift from what ``repro <verb> --help`` actually prints.
    """
    import argparse

    from repro.cli import build_parser

    problems: list[str] = []
    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    for verb, vp in sub.choices.items():
        match = _DOCS_EPILOG.search(vp.epilog or "")
        if match is None:
            problems.append(
                f"cli: verb {verb!r} names no docs/ page in its --help epilog"
            )
            continue
        page = REPO_ROOT / "docs" / f"{match.group(1)}.md"
        if not page.exists():
            problems.append(
                f"cli: verb {verb!r} points to missing docs/{page.name}"
            )
    if not problems:
        print(f"  {len(sub.choices)} verbs all map to existing docs/ pages")
    return problems


def main() -> int:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    if not docs:
        print("no docs/*.md found", file=sys.stderr)
        return 1
    pages = docs + [REPO_ROOT / "README.md"]
    print(f"link-checking {len(pages)} pages ...")
    problems = check_links(pages)
    print(f"doctesting {len(docs)} docs pages ...")
    problems += run_doctests(docs)
    print("checking CLI verb -> docs page mapping ...")
    problems += check_cli_verb_pages()
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
