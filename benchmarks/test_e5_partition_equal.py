"""E5 — Theorem 5 / Fig. 5: Multiple-Bin NP-hardness (instance I6).

Paper claim: Multiple-Bin with a client exceeding the server capacity
is NP-hard — instance *I6* admits a ``4m``-replica placement iff the
2-Partition-Equal input is a *yes*-instance.

Regenerated here: certified yes/no inputs are pushed through the
reduction; the *yes* direction maps the partition to a checker-valid
4m placement following the proof verbatim, and the decision procedure
(forced structure + max-flow over the C(2m, m) free choices) agrees
with the partition solver in both directions.  The timed kernel is the
full I6 decision.
"""

from __future__ import annotations

from repro import is_valid
from repro.analysis import ExperimentTable
from repro.reductions import (
    build_i6,
    i6_decision,
    i6_target_replicas,
    placement_from_partition_equal,
    solve_two_partition_equal,
)

from conftest import emit

# All instances satisfy the reduction's domain: even sum and
# a_i <= S/4 (so the derived b_i stay non-negative).
INSTANCES = [
    [3, 5, 4, 6, 2, 4],      # m=3, yes: e.g. {3,5,4} = 12 = S/2
    [1, 1, 1, 3, 3, 3],      # m=3, no (size-3 sums: 3,5,7,9 — never 6)
    [3, 3, 3, 3],            # m=2, yes (trivial)
    [2, 2, 3, 3, 3, 3],      # m=3, yes: {2,3,3} = 8 = S/2
    [1, 2, 3, 3, 3, 4],      # m=3, yes: {1,3,4} = 8 = S/2
    [2, 2, 2, 4, 4, 4],      # m=3, no (size-3 sums: 6,8,10,12 — never 9)
    [2, 2, 2, 3, 3, 4],      # m=3, yes: {2,2,4} = 8 = S/2
]


def test_e5_reduction_equivalence():
    table = ExperimentTable(
        "E5 (Thm 5, Fig. 5)",
        "I6 admits 4m replicas iff 2-Partition-Equal is a yes-instance",
    )
    for a in INSTANCES:
        m = len(a) // 2
        subset = solve_two_partition_equal(a)
        yes = subset is not None
        inst, lay = build_i6(a)
        decided, witness = i6_decision(inst, lay)
        ok = decided == yes
        measured = f"decision = {decided}"
        if yes:
            p = placement_from_partition_equal(inst, lay, subset)
            ok = (
                ok
                and is_valid(inst, p)
                and p.n_replicas == i6_target_replicas(m)
                and witness is not None
            )
            measured += f", mapped |R| = {p.n_replicas}"
        table.add(
            f"a={a}",
            f"{'4m feasible' if yes else '4m infeasible'} (m={m})",
            measured,
            ok,
        )
    emit(table)


def test_e5_oversized_client_refused_by_theorem6_algorithm():
    """The same instance is out of scope for Algorithm 3 (r_i > W) —
    exactly the boundary Theorem 5 draws."""
    from repro import InvalidInstanceError, multiple_bin
    import pytest

    inst, _lay = build_i6([3, 5, 4, 6, 2, 4])
    with pytest.raises(InvalidInstanceError):
        multiple_bin(inst)


def test_e5_decision_benchmark(benchmark):
    a = [3, 5, 4, 6, 2, 4]

    def pipeline():
        inst, lay = build_i6(a)
        return i6_decision(inst, lay)[0]

    ok = benchmark(pipeline)
    benchmark.extra_info["feasible_4m"] = ok
    assert ok
