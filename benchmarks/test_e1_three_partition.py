"""E1 — Theorem 1 / Fig. 1: the 3-Partition reduction (instance I2).

Paper claim: Single-NoD-Bin is strongly NP-hard — instance *I2* built
from a 3-Partition input admits ``m`` replicas iff the 3-Partition
instance is a *yes*-instance.

Regenerated here: certified yes/no 3-Partition inputs are pushed through
the reduction; the exact solver's optimum is compared with the ``K = m``
threshold, and the mapped placement is checker-validated.  The timed
kernel is the full reduction pipeline (build + exact decision).
"""

from __future__ import annotations

from repro import is_valid
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable
from repro.reductions import (
    build_i2,
    i2_target_replicas,
    placement_from_three_partition,
    solve_three_partition,
)

from conftest import emit

# (values, B) with certified answers.
YES_INSTANCES = [
    ([30, 30, 30, 23, 31, 36], 90),                 # m=2
    ([30, 30, 30, 23, 31, 36, 25, 27, 38], 90),     # m=3
    ([26, 37, 37, 33, 33, 34], 100),                # m=2
]
NO_INSTANCES = [
    ([27, 27, 27, 27, 45, 47], 100),  # 45/47 need 55/53, pairs give 54
    ([29, 29, 29, 29, 41, 43], 100),  # 41/43 need 59/57, pairs give 58
]


def certified(instances, expected_yes):
    out = []
    for a, B in instances:
        got = solve_three_partition(a, B)
        if (got is not None) == expected_yes:
            out.append((a, B, got))
    return out


def test_e1_reduction_equivalence():
    table = ExperimentTable(
        "E1 (Thm 1, Fig. 1)",
        "I2 has an m-replica placement iff 3-Partition is a yes-instance",
    )
    for a, B, triples in certified(YES_INSTANCES, True):
        inst, clients = build_i2(a, B)
        m = i2_target_replicas(a)
        p = placement_from_three_partition(inst, clients, triples)
        opt = exact_single(inst).n_replicas
        table.add(
            f"yes m={m} B={B}",
            f"opt <= {m}",
            f"opt = {opt}, mapped |R| = {p.n_replicas}",
            opt == m and p.n_replicas == m and is_valid(inst, p),
        )
    for a, B, _ in certified(NO_INSTANCES, False):
        inst, _clients = build_i2(a, B)
        m = i2_target_replicas(a)
        opt = exact_single(inst).n_replicas
        table.add(f"no  m={m} B={B}", f"opt > {m}", f"opt = {opt}", opt > m)
    emit(table)


def test_e1_reduction_pipeline_benchmark(benchmark):
    a, B = YES_INSTANCES[0]

    def pipeline():
        inst, clients = build_i2(a, B)
        return exact_single(inst).n_replicas

    opt = benchmark(pipeline)
    benchmark.extra_info["optimum"] = opt
    assert opt == i2_target_replicas(a)
