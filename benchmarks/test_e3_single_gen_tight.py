"""E3 — Theorem 3 / Fig. 3: single-gen's tight ratio on family *I_m*.

Paper claim: ``single-gen`` is a (Δ+1)-approximation, and on instance
family *I_m* it opens exactly ``m(Δ+1)`` replicas against an optimum of
``m+1``, so the ratio ``m(Δ+1)/(m+1) → Δ+1`` — the factor cannot be
improved.

Regenerated here for m = 1..8 and Δ = 2..5: exact replica counts on
both sides, ratio series increasing toward Δ+1.  The timed kernel is
``single_gen`` on the largest family member.
"""

from __future__ import annotations

import pytest

from repro import is_valid, single_gen
from repro.analysis import ExperimentTable
from repro.instances import single_gen_tight_instance

from conftest import emit


@pytest.mark.parametrize("arity", [2, 3, 4, 5])
def test_e3_ratio_series(arity):
    table = ExperimentTable(
        f"E3 (Thm 3, Fig. 3) Δ={arity}",
        f"single-gen opens m(Δ+1) replicas vs opt m+1: ratio → Δ+1 = {arity + 1}",
    )
    prev_ratio = 0.0
    for m in range(1, 9):
        inst, opt = single_gen_tight_instance(m, arity)
        p = single_gen(inst)
        ok = (
            is_valid(inst, p)
            and is_valid(inst, opt)
            and p.n_replicas == m * (arity + 1)
            and opt.n_replicas == m + 1
        )
        ratio = p.n_replicas / opt.n_replicas
        ok = ok and ratio >= prev_ratio
        prev_ratio = ratio
        table.add(
            f"m={m}",
            f"{m * (arity + 1)} vs {m + 1} (ratio {m * (arity + 1) / (m + 1):.3f})",
            f"{p.n_replicas} vs {opt.n_replicas} (ratio {ratio:.3f})",
            ok,
        )
    # The series must get arbitrarily close to Δ+1 from below
    # (at m=8 the ratio is exactly (Δ+1)·8/9).
    assert prev_ratio >= (arity + 1) * 8 / 9 - 1e-9
    emit(table)


def test_e3_single_gen_benchmark(benchmark):
    inst, _opt = single_gen_tight_instance(8, 5)
    p = benchmark(single_gen, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    assert p.n_replicas == 8 * 6
