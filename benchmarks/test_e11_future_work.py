"""E11 — Section 5 future work: toward a 3/2-approximation.

Paper claim (conjecture): a 3/2-approximation for Single-NoD-Bin should
exist; the suggested direction is "to push servers towards the root of
the tree, whenever possible" because "a greedy algorithm is unlikely to
be good enough".

Measured here (these are *our* constructions in the paper's suggested
direction — measured, not proven):

* ``single_push`` (single-nod + root-pushing local search) against
  exact optima on random binary NoD instances — observed worst ratio
  vs the conjectured 3/2 and vs single-nod's proven 2;
* the packing-rule ablation ``single_nod_bestfit`` — quantifies how
  much of single-nod's slack is the proof-friendly smallest-first rule
  (it is exactly what loses factor 2 on the Fig. 4 family).
"""

from __future__ import annotations

from repro import Policy, single_nod, single_nod_bestfit, single_push
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable, measure_ratios
from repro.instances import random_tree, single_nod_tight_instance

from conftest import emit


def _nod_bin_instances(n=20):
    return [
        random_tree(
            8, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=s, max_arity=2, request_range=(1, 12),
        )
        for s in range(n)
    ]


def test_e11_push_toward_root():
    table = ExperimentTable(
        "E11 (Sec. 5 future work)",
        "conjecture: 3/2-approx for Single-NoD-Bin via pushing servers "
        "to the root — measured on random Single-NoD-Bin instances",
    )
    insts = _nod_bin_instances()
    ref = lambda i: exact_single(i).n_replicas  # noqa: E731
    base = measure_ratios(insts, single_nod, ref)
    push = measure_ratios(insts, single_push, ref)
    bf = measure_ratios(insts, single_nod_bestfit, ref)
    table.add(
        "single-nod (proven 2)",
        "max <= 2",
        f"max {base.max_ratio:.3f}, mean {base.mean_ratio:.3f}",
        base.all_valid and base.max_ratio <= 2 + 1e-9,
    )
    table.add(
        "single-push (conjectured direction)",
        "max <= 1.5 (conjecture)",
        f"max {push.max_ratio:.3f}, mean {push.mean_ratio:.3f}, "
        f"optimal {push.optimal_fraction * 100:.0f}%",
        push.all_valid and push.max_ratio <= 1.5 + 1e-9,
    )
    table.add(
        "ablation: best-fit packing",
        "valid; no ratio proof",
        f"max {bf.max_ratio:.3f}, mean {bf.mean_ratio:.3f}",
        bf.all_valid,
    )
    emit(table)


def test_e11_fig4_family_fixed():
    table = ExperimentTable(
        "E11b (Fig. 4 family revisited)",
        "the tight-family pathology disappears under both refinements",
    )
    for K in (6, 12, 20):
        inst, opt = single_nod_tight_instance(K)
        sf = single_nod(inst).n_replicas
        bf = single_nod_bestfit(inst).n_replicas
        push = single_push(inst).n_replicas
        table.add(
            f"K={K}",
            f"single-nod {2 * K}, opt {K + 1}",
            f"single-nod {sf}, best-fit {bf}, push {push}",
            sf == 2 * K and bf <= K + 1 and push < sf,
        )
    emit(table)


def test_e11_single_push_benchmark(benchmark):
    inst = random_tree(
        60, 60, capacity=20, dmax=None, policy=Policy.SINGLE,
        seed=0, max_arity=2, request_range=(1, 20),
    )
    p = benchmark(single_push, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
