"""E12 — engineering ablations: preprocessing and failure repair.

Not a paper table — these benchmark the library's own extensions,
with the qualitative claims DESIGN.md makes for them:

* **preprocessing** (prune + unary-chain collapse) shrinks typical
  instances without changing the heuristics' replica counts, and
  speeds up the exact solver;
* **failure repair** restores validity after single-replica failures
  with bounded overhead (measured: extra replicas per repair).
"""

from __future__ import annotations

from repro import Policy, is_valid, single_gen
from repro.analysis import ExperimentTable
from repro.core import preprocess
from repro.instances import cdn_hierarchy, random_tree
from repro.simulate import failure_study

from conftest import emit


def test_e12_preprocessing_preserves_heuristic_counts():
    table = ExperimentTable(
        "E12a (preprocessing)",
        "prune+collapse shrinks instances; lifted placements stay valid "
        "with identical replica counts on these families",
    )
    for name, inst in [
        ("cdn", cdn_hierarchy(capacity=300, dmax=9.0, seed=3)),
        (
            "random sparse",
            random_tree(
                30, 35, capacity=25, dmax=8.0, policy=Policy.SINGLE,
                seed=1, max_arity=3, request_range=(0, 25),
            ),
        ),
    ]:
        reduced, nmap = preprocess(inst)
        p = single_gen(reduced)
        lifted = nmap.lift(p)
        direct = single_gen(inst)
        table.add(
            name,
            "valid lift; |T| shrinks",
            f"|T| {len(inst.tree)}→{len(reduced.tree)}, "
            f"replicas {direct.n_replicas} direct vs {lifted.n_replicas} lifted",
            is_valid(inst, lifted) and len(reduced.tree) <= len(inst.tree),
        )
    emit(table)


def test_e12_failure_repair_overhead():
    table = ExperimentTable(
        "E12b (failure repair)",
        "single-replica failures are repaired with small overhead",
    )
    inst = cdn_hierarchy(capacity=300, dmax=9.0, seed=3)
    placement = single_gen(inst)
    results = failure_study(inst, placement, n_failures=1, trials=30, seed=0)
    repaired = [r for r in results if r is not None]
    overheads = [r.replica_overhead for r in repaired]
    ok = all(is_valid(inst, r.placement) for r in repaired)
    table.add(
        f"cdn, {placement.n_replicas} replicas, 30 single-failures",
        "all repairs valid",
        f"repaired {len(repaired)}/30, overhead mean "
        f"{sum(overheads) / max(len(overheads), 1):.2f} max "
        f"{max(overheads, default=0)}",
        ok and len(repaired) >= 25,
    )
    emit(table)


def test_e12_preprocess_benchmark(benchmark):
    inst = random_tree(
        200, 300, capacity=30, dmax=10.0, policy=Policy.SINGLE,
        seed=2, max_arity=3, request_range=(0, 30),
    )
    reduced, _ = benchmark(preprocess, inst)
    benchmark.extra_info["nodes_before"] = len(inst.tree)
    benchmark.extra_info["nodes_after"] = len(reduced.tree)
