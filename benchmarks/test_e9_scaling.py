"""E9 — Complexity claims: empirical scaling of the three algorithms.

Paper claims: ``single-gen`` runs in O(Δ·|T|), ``single-nod`` in
O((Δ log Δ + |C|)·|T|), ``multiple-bin`` in O(|T|²).

Regenerated here: wall-time across a size sweep on caterpillar trees
(deep binary — the adversarial shape for traversals), with a log-log
power-law fit.  Accepted envelopes: fitted exponent ≤ 1.4 for
single-gen, ≤ 2.3 for single-nod and multiple-bin (the paper's bounds
are upper bounds; for bounded per-client demand multiple-bin's lists
stay short and it often measures near-linear — measuring *below* the
bound confirms, measuring above would refute).  Per the HPC guides the
timed region excludes instance construction.
"""

from __future__ import annotations

import pytest

from repro import Policy, multiple_bin, single_gen, single_nod
from repro.analysis import ExperimentTable, measure_scaling
from repro.instances import caterpillar

from conftest import emit

SIZES = [200, 400, 800, 1600, 3200]


def _make(policy):
    def make(n):
        return caterpillar(
            n, capacity=10, dmax=None, policy=policy,
            request_range=(1, 5), seed=0,
        )

    return make


CASES = [
    ("single-gen", single_gen, Policy.SINGLE, "O(Δ·|T|)", 1.4),
    ("single-nod", single_nod, Policy.SINGLE, "O((ΔlogΔ+|C|)·|T|)", 2.3),
    ("multiple-bin", multiple_bin, Policy.MULTIPLE, "O(|T|²)", 2.3),
]


def test_e9_empirical_exponents():
    table = ExperimentTable(
        "E9 (complexity)",
        "measured growth exponents stay within the paper's bounds",
    )
    for name, solver, policy, bound, limit in CASES:
        res = measure_scaling(_make(policy), solver, SIZES, repeats=2)
        table.add(
            name,
            f"{bound} (α <= {limit})",
            f"α = {res.exponent:.2f}",
            res.exponent <= limit,
        )
    emit(table)


@pytest.mark.parametrize(
    "name,solver,policy",
    [(n, s, p) for (n, s, p, _b, _l) in CASES],
    ids=[c[0] for c in CASES],
)
def test_e9_solver_benchmarks(benchmark, name, solver, policy):
    inst = _make(policy)(2000)
    p = benchmark(solver, inst)
    benchmark.extra_info["nodes"] = len(inst.tree)
    benchmark.extra_info["replicas"] = p.n_replicas
