"""E7 — Theorem 3 in practice: single-gen's ratio on random trees.

Paper claim: the (Δ+1) factor is a worst-case guarantee; the tight
family is adversarial.  On random instances the algorithm should sit
far below the bound (typically near the optimum).

Regenerated here: ratio distribution against the exact optimum across
arities and distance regimes — maximum observed ratio must respect the
theorem, mean ratio reported.  The timed kernel is ``single_gen`` on a
large random tree (the paper's O(Δ·|T|) regime).
"""

from __future__ import annotations

from repro import Policy, single_gen
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable, measure_ratios
from repro.instances import random_tree

from conftest import emit


def _instances(arity, dmax, n=15):
    # Binary skeletons need more internal nodes to host 8 clients
    # (each internal node spends one slot on its subtree child).
    n_internal = 8 if arity == 2 else 4
    return [
        random_tree(
            n_internal, 8, capacity=12, dmax=dmax, policy=Policy.SINGLE,
            seed=100 * arity + s, max_arity=arity, request_range=(1, 12),
        )
        for s in range(n)
    ]


def test_e7_random_ratio_sweep():
    table = ExperimentTable(
        "E7 (Thm 3, random)",
        "single-gen ratio <= Δ+1 always (Δ without distance constraint); "
        "near-optimal on average",
    )
    for arity in (2, 3, 4):
        for regime, dmax in (("dmax", 6.0), ("NoD", None)):
            insts = _instances(arity, dmax)
            rep = measure_ratios(
                insts, single_gen, lambda i: exact_single(i).n_replicas
            )
            bound = arity + (1 if dmax is not None else 0)
            ok = rep.all_valid and rep.max_ratio <= bound + 1e-9
            table.add(
                f"Δ={arity} {regime}",
                f"max ratio <= {bound}",
                f"max {rep.max_ratio:.3f}, mean {rep.mean_ratio:.3f}, "
                f"optimal {rep.optimal_fraction * 100:.0f}%",
                ok,
            )
    emit(table)


def test_e7_single_gen_large_benchmark(benchmark):
    inst = random_tree(
        300, 600, capacity=40, dmax=8.0, policy=Policy.SINGLE,
        seed=0, max_arity=4, request_range=(1, 40),
    )
    p = benchmark(single_gen, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    benchmark.extra_info["nodes"] = len(inst.tree)
