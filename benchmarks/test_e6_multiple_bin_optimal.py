"""E6 — Theorem 6: multiple-bin vs the exact optimum on random binary trees.

Paper claim: Algorithm 3 solves Multiple-Bin optimally in polynomial
time when every client fits a server.

Regenerated here over random binary instances across distance regimes
(none / tight / intermediate / loose).  **Reproduction finding F1** (see
EXPERIMENTS.md): the literal algorithm is optimal in the NoD, tight and
loose regimes, but in the intermediate regime it occasionally opens one
extra replica — the proof's cross-branch monotonicity claim fails there.
The bench reports the optimality rate per regime and asserts the
documented reproduction envelope (100% for NoD, ≥ 90% overall, gap ≤ 1).

Ablation: ``multiple_greedy`` (same absorb rule, no ``extra-server``)
is measured alongside, quantifying what the extra-server reassignment
buys.
"""

from __future__ import annotations

from repro import Policy, is_valid
from repro.algorithms import exact_multiple, multiple_bin, multiple_greedy
from repro.analysis import ExperimentTable
from repro.instances import random_binary_tree

from conftest import emit

REGIMES = [("NoD", None), ("tight", 3.0), ("mid", 6.0), ("loose", 12.0)]
SEEDS = range(40)


def _sweep(dmax):
    opt_hits, greedy_hits, total, worst_gap = 0, 0, 0, 0
    for seed in SEEDS:
        inst = random_binary_tree(
            6, 7, capacity=8, dmax=dmax, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 8),
        )
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        g = multiple_greedy(inst)
        assert is_valid(inst, g)
        e = exact_multiple(inst).n_replicas
        total += 1
        opt_hits += p.n_replicas == e
        greedy_hits += g.n_replicas == e
        worst_gap = max(worst_gap, p.n_replicas - e)
    return opt_hits, greedy_hits, total, worst_gap


def test_e6_optimality_by_regime():
    table = ExperimentTable(
        "E6 (Thm 6)",
        "multiple-bin == exact optimum on Multiple-Bin instances "
        "(finding F1: near-miss regime exists, gap <= 1)",
    )
    for name, dmax in REGIMES:
        opt_hits, greedy_hits, total, worst_gap = _sweep(dmax)
        if name == "NoD":
            ok = opt_hits == total
            claim = "optimal 100%"
        else:
            ok = opt_hits >= 0.9 * total and worst_gap <= 1
            claim = "optimal (F1: >=90%, gap<=1)"
        table.add(
            f"{name} dmax={dmax}",
            claim,
            f"{opt_hits}/{total} optimal, max gap {worst_gap} "
            f"(ablation multiple_greedy: {greedy_hits}/{total})",
            ok,
        )
    emit(table)


def test_e6_counterexample_is_stable():
    """Finding F1's pinned 13-node instance: algorithm 6, optimum 5."""
    from repro import ProblemInstance, TreeBuilder

    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=2.0)
    n3 = b.add(n1, delta=2.3)
    b.add(n3, delta=2.5, requests=4)
    b.add(n3, delta=1.8, requests=6)
    n4 = b.add(n1, delta=1.1)
    n5 = b.add(n4, delta=2.7)
    b.add(n5, delta=2.3, requests=7)
    b.add(n5, delta=1.8, requests=4)
    b.add(n4, delta=1.4, requests=6)
    n2 = b.add(n0, delta=2.4)
    b.add(n2, delta=1.1, requests=6)
    b.add(n2, delta=1.8, requests=4)
    inst = ProblemInstance(b.build(), 8, 6.0, Policy.MULTIPLE)
    assert multiple_bin(inst).n_replicas == 6
    assert exact_multiple(inst).n_replicas == 5


def test_e6_multiple_bin_benchmark(benchmark):
    inst = random_binary_tree(
        50, 51, capacity=20, dmax=8.0, policy=Policy.MULTIPLE,
        seed=1, request_range=(1, 20),
    )
    p = benchmark(multiple_bin, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    assert is_valid(inst, p)
