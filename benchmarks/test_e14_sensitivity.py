"""E14 — provisioning curves: replicas vs dmax and vs W.

Not a paper table (the paper fixes W and dmax); this regenerates the
*qualitative* statement implicit throughout Sections 1–2: tightening
the QoS bound or shrinking the servers can only cost replicas.  For the
exact solver both curves are provably non-increasing; the bench asserts
that and reports where the heuristic curve deviates (greedy
non-monotonicity is possible and worth quantifying).
"""

from __future__ import annotations

from repro import Policy, single_gen
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable, capacity_sweep, dmax_sweep, knee
from repro.instances import random_tree

from conftest import emit

DMAX_GRID = [2.0, 3.0, 4.5, 6.0, 9.0, None]
W_GRID = [8, 10, 14, 20, 30, 50]


def _inst(seed=7):
    return random_tree(
        4, 7, capacity=10, dmax=6.0, policy=Policy.SINGLE,
        seed=seed, max_arity=3, request_range=(1, 8),
    )


def test_e14_exact_monotone_curves():
    table = ExperimentTable(
        "E14 (provisioning curves)",
        "exact replica count is non-increasing in dmax and in W",
    )
    for seed in (7, 8, 9):
        inst = _inst(seed)
        dpts = dmax_sweep(inst, exact_single, DMAX_GRID)
        dcounts = [p.replicas for p in dpts]
        wpts = capacity_sweep(inst, exact_single, W_GRID)
        wcounts = [p.replicas for p in wpts]
        ok = (
            dcounts == sorted(dcounts, reverse=True)
            and wcounts == sorted(wcounts, reverse=True)
            and all(p.valid for p in dpts + wpts)
        )
        k = knee(dpts)
        table.add(
            f"seed={seed}",
            "both curves monotone",
            f"dmax curve {dcounts}, W curve {wcounts}, "
            f"knee at dmax={'NoD' if k.value == float('inf') else k.value}",
            ok,
        )
    emit(table)


def test_e14_heuristic_deviation_quantified():
    table = ExperimentTable(
        "E14b (heuristic curve)",
        "single-gen curves are near-monotone; deviations quantified "
        "(greedy algorithms carry no monotonicity guarantee)",
    )
    bumps = 0
    total = 0
    for seed in range(10):
        pts = dmax_sweep(_inst(seed), single_gen, DMAX_GRID)
        counts = [p.replicas for p in pts]
        total += len(counts) - 1
        bumps += sum(
            1 for a, b in zip(counts, counts[1:]) if b > a
        )
        assert all(p.valid for p in pts)
    table.add(
        "10 instances x 6 dmax values",
        "few monotonicity violations",
        f"{bumps}/{total} increasing steps",
        bumps <= total * 0.2,
    )
    emit(table)


def test_e14_sweep_benchmark(benchmark):
    inst = _inst(7)
    pts = benchmark(dmax_sweep, inst, single_gen, DMAX_GRID)
    benchmark.extra_info["curve"] = [p.replicas for p in pts]
