"""E8 — Theorem 4 in practice: single-nod's ratio on random trees.

Paper claim: factor 2 is worst-case; ``single-nod`` refines
``single-gen`` when there is no distance constraint, so it should beat
or match it on NoD instances while never exceeding twice the optimum.

Regenerated here: ratio distributions of both algorithms against the
exact optimum on the same NoD instances; head-to-head win/loss counts;
local-search post-processing measured as a second ablation.
"""

from __future__ import annotations

from repro import Policy, improve_single, single_gen, single_nod
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable, measure_ratios
from repro.instances import random_tree

from conftest import emit


def _instances(n=20):
    return [
        random_tree(
            4, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=s, max_arity=3, request_range=(1, 12),
        )
        for s in range(n)
    ]


def test_e8_ratio_and_head_to_head():
    table = ExperimentTable(
        "E8 (Thm 4, random)",
        "single-nod ratio <= 2 always; refines single-gen on NoD inputs",
    )
    insts = _instances()
    ref = lambda i: exact_single(i).n_replicas  # noqa: E731
    nod = measure_ratios(insts, single_nod, ref)
    gen = measure_ratios(insts, single_gen, ref)
    improved = measure_ratios(
        insts, lambda i: improve_single(i, single_nod(i)), ref
    )
    table.add(
        "single-nod",
        "max ratio <= 2",
        f"max {nod.max_ratio:.3f}, mean {nod.mean_ratio:.3f}, "
        f"optimal {nod.optimal_fraction * 100:.0f}%",
        nod.all_valid and nod.max_ratio <= 2 + 1e-9,
    )
    table.add(
        "single-gen (same inputs)",
        "max ratio <= Δ = 3",
        f"max {gen.max_ratio:.3f}, mean {gen.mean_ratio:.3f}",
        gen.all_valid and gen.max_ratio <= 3 + 1e-9,
    )
    wins = sum(
        n.solver_value <= g.solver_value
        for n, g in zip(nod.samples, gen.samples)
    )
    table.add(
        "head-to-head",
        "single-nod <= single-gen typically",
        f"single-nod wins/ties {wins}/{len(insts)}",
        wins >= len(insts) // 2,
    )
    table.add(
        "ablation: + local search",
        "mean ratio improves or ties",
        f"mean {improved.mean_ratio:.3f} (from {nod.mean_ratio:.3f})",
        improved.all_valid and improved.mean_ratio <= nod.mean_ratio + 1e-9,
    )
    emit(table)


def test_e8_single_nod_large_benchmark(benchmark):
    inst = random_tree(
        300, 600, capacity=40, dmax=None, policy=Policy.SINGLE,
        seed=0, max_arity=4, request_range=(1, 40),
    )
    p = benchmark(single_nod, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    benchmark.extra_info["nodes"] = len(inst.tree)
