"""E2 — Theorem 2 / Fig. 2: the 2-Partition gap reduction (instance I4).

Paper claim: unless P=NP there is no (3/2 − ε)-approximation for
Single-NoD-Bin, because on instance *I4* the optimum is 2 iff the
2-Partition input is a *yes*-instance, and any ratio-<3/2 algorithm
must then return exactly 2.

Regenerated here: exact optimum == 2 ⟺ partition exists, the
*yes*-direction placement is validated, and the gap-decision wrapper
recovers the partition answer from the exact solver's output.
"""

from __future__ import annotations

from repro import is_valid
from repro.algorithms import exact_single
from repro.analysis import ExperimentTable
from repro.reductions import (
    build_i4,
    i4_gap_decision,
    placement_from_two_partition,
    solve_two_partition,
)

from conftest import emit

INSTANCES = [
    [3, 1, 2, 2],        # yes: {3,1} vs {2,2}
    [2, 2, 2, 2],        # yes
    [5, 4, 2, 1],        # yes: {5,1} vs {4,2}
    [7, 3, 3, 3],        # no: nothing sums to 8
    [6, 5, 2, 3],        # yes: {6,2} vs {5,3}
    [9, 5, 3, 3, 3, 3],  # no: S=26, target 13: 9+3=12, 9+3+3=15, 5+3+3=11, 5+3+3+3=14... 9+... -> 13 = 9+3+... no 1; 5+3+3+3=14; no
]


def test_e2_gap_equivalence():
    table = ExperimentTable(
        "E2 (Thm 2, Fig. 2)",
        "opt(I4) == 2 iff 2-Partition is a yes-instance "
        "(the engine of the 3/2-inapproximability)",
    )
    for a in INSTANCES:
        subset = solve_two_partition(a)
        yes = subset is not None
        inst, clients = build_i4(a)
        opt = exact_single(inst).n_replicas
        ok = (opt == 2) == yes and i4_gap_decision(opt) == yes
        if yes:
            p = placement_from_two_partition(inst, clients, subset)
            ok = ok and is_valid(inst, p) and p.n_replicas == 2
        table.add(
            f"a={a}",
            "opt = 2" if yes else "opt >= 3",
            f"opt = {opt}",
            ok,
        )
    emit(table)


def test_e2_reduction_pipeline_benchmark(benchmark):
    a = [6, 5, 2, 3, 4, 4, 5, 3]

    def pipeline():
        inst, _clients = build_i4(a)
        return exact_single(inst).n_replicas

    opt = benchmark(pipeline)
    benchmark.extra_info["optimum"] = opt
    assert (opt == 2) == (solve_two_partition(a) is not None)
