"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_eN_*.py`` regenerates one experiment from
DESIGN.md's experiment index: it prints a paper-vs-measured table
(visible with ``pytest benchmarks/ --benchmark-only -s``), asserts the
qualitative claim, and times the central computation with
pytest-benchmark.  Measured values are also attached to
``benchmark.extra_info`` so they appear in ``--benchmark-json`` output.

Solver enumeration goes through :mod:`repro.runner` — benchmarks that
want "every Single heuristic" or "all exact solvers" ask the registry
(:func:`solver_specs` / the ``solver_registry`` fixture) instead of
hard-coding import lists, so newly registered solvers are picked up by
the harness automatically.
"""

from __future__ import annotations

import pytest


def solver_specs(policy=None, *, exact=None):
    """Registered solver specs, optionally filtered by policy/exactness.

    ``policy`` accepts a :class:`repro.core.policies.Policy`, the
    strings ``"single"``/``"multiple"``, or ``None`` for all.
    """
    from repro.core.policies import Policy
    from repro.runner import available_solvers

    if isinstance(policy, str):
        policy = Policy(policy)
    specs = available_solvers()
    if policy is not None:
        specs = [s for s in specs if s.policy in (None, policy)]
    if exact is not None:
        specs = [s for s in specs if s.exact is exact]
    return specs


@pytest.fixture(scope="session")
def solver_registry():
    """The solver registry module, with built-in solvers registered."""
    from repro.runner import registry

    registry.ensure_builtin_solvers()
    return registry


def emit(table) -> None:
    """Print an ExperimentTable and fail the test if any row mismatches."""
    print()
    print(table.render())
    assert table.all_ok, f"{table.experiment}: reproduction mismatch"


@pytest.fixture
def record_rows():
    """Collects (setting, paper, measured, ok) rows, prints on teardown."""
    from repro.analysis import ExperimentTable

    tables = []

    def make(experiment: str, claim: str):
        t = ExperimentTable(experiment, claim)
        tables.append(t)
        return t

    yield make
    for t in tables:
        print()
        print(t.render())
