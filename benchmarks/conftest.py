"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_eN_*.py`` regenerates one experiment from
DESIGN.md's experiment index: it prints a paper-vs-measured table
(visible with ``pytest benchmarks/ --benchmark-only -s``), asserts the
qualitative claim, and times the central computation with
pytest-benchmark.  Measured values are also attached to
``benchmark.extra_info`` so they appear in ``--benchmark-json`` output.
"""

from __future__ import annotations

import pytest


def emit(table) -> None:
    """Print an ExperimentTable and fail the test if any row mismatches."""
    print()
    print(table.render())
    assert table.all_ok, f"{table.experiment}: reproduction mismatch"


@pytest.fixture
def record_rows():
    """Collects (setting, paper, measured, ok) rows, prints on teardown."""
    from repro.analysis import ExperimentTable

    tables = []

    def make(experiment: str, claim: str):
        t = ExperimentTable(experiment, claim)
        tables.append(t)
        return t

    yield make
    for t in tables:
        print()
        print(t.render())
