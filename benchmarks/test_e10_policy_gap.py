"""E10 — Single vs Multiple: the value of splitting requests.

Paper motivation (Sections 1–2): the Multiple policy "distributes the
processing of requests over the platform"; its optimum can never exceed
the Single optimum, and the complexity landscape differs sharply.

Regenerated here: exact optima under both policies on identical binary
trees — gap distribution (must be ≥ 0), plus the heuristic-level gap
(multiple-bin vs single-gen) on larger trees where exact search is out
of reach.  The timed kernel is the paired heuristic solve.
"""

from __future__ import annotations

from repro import Policy, multiple_bin, single_gen
from repro.algorithms import exact_multiple, exact_single
from repro.analysis import ExperimentTable, policy_gap
from repro.instances import random_binary_tree

from conftest import emit


def test_e10_exact_policy_gap():
    table = ExperimentTable(
        "E10 (policy gap)",
        "opt_Multiple <= opt_Single on every instance; splitting helps "
        "when demands straddle the capacity",
    )
    insts = [
        random_binary_tree(
            5, 6, capacity=7, dmax=4.0 if s % 2 else None,
            policy=Policy.SINGLE, seed=s, request_range=(1, 7),
        )
        for s in range(16)
    ]
    rows = policy_gap(insts, exact_single, exact_multiple)
    gaps = [r["gap"] for r in rows]
    table.add(
        "16 random binary instances",
        "gap >= 0 everywhere",
        f"gaps min {min(gaps)}, max {max(gaps)}, "
        f"mean {sum(gaps) / len(gaps):.2f}",
        all(g >= 0 for g in gaps),
    )
    table.add(
        "splitting strictly helps somewhere",
        "max gap >= 1 on demand-straddling mixes",
        f"instances with gap>0: {sum(g > 0 for g in gaps)}/{len(gaps)}",
        max(gaps) >= 1,
    )
    emit(table)


def test_e10_heuristic_gap_large_trees():
    table = ExperimentTable(
        "E10b (heuristic gap, large)",
        "multiple-bin uses no more replicas than single-gen's Single "
        "solution needs (large-tree regime, heuristic level)",
    )
    wins = 0
    n = 10
    for s in range(n):
        inst = random_binary_tree(
            40, 41, capacity=15, dmax=10.0, policy=Policy.SINGLE,
            seed=s, request_range=(1, 15),
        )
        single = single_gen(inst).n_replicas
        multi = multiple_bin(inst.with_policy(Policy.MULTIPLE)).n_replicas
        wins += multi <= single
    table.add(
        f"{n} trees, |T|≈81",
        "multiple <= single typically",
        f"multiple wins/ties {wins}/{n}",
        wins >= n - 1,
    )
    emit(table)


def test_e10_paired_solve_benchmark(benchmark):
    inst = random_binary_tree(
        40, 41, capacity=15, dmax=10.0, policy=Policy.SINGLE,
        seed=3, request_range=(1, 15),
    )

    def paired():
        s = single_gen(inst).n_replicas
        m = multiple_bin(inst.with_policy(Policy.MULTIPLE)).n_replicas
        return s, m

    s, m = benchmark(paired)
    benchmark.extra_info["single"] = s
    benchmark.extra_info["multiple"] = m
