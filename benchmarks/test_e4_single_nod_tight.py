"""E4 — Theorem 4 / Fig. 4: single-nod's tight factor 2.

Paper claim: ``single-nod`` is a 2-approximation for Single-NoD, and on
the Fig. 4 family (W = K, K subtrees of a full-server client plus a
unit client) it opens ``2K`` replicas against an optimum of ``K+1``:
the factor 2 cannot be improved.

Regenerated here for K = 2..40; the timed kernel is ``single_nod`` on
the largest family member.
"""

from __future__ import annotations

from repro import is_valid, single_nod
from repro.analysis import ExperimentTable
from repro.instances import single_nod_tight_instance

from conftest import emit


def test_e4_ratio_series():
    table = ExperimentTable(
        "E4 (Thm 4, Fig. 4)",
        "single-nod opens 2K replicas vs opt K+1: ratio 2K/(K+1) → 2",
    )
    prev = 0.0
    for K in (2, 3, 5, 8, 12, 20, 40):
        inst, opt = single_nod_tight_instance(K)
        p = single_nod(inst)
        ratio = p.n_replicas / opt.n_replicas
        ok = (
            is_valid(inst, p)
            and is_valid(inst, opt)
            and p.n_replicas == 2 * K
            and opt.n_replicas == K + 1
            and ratio >= prev
        )
        prev = ratio
        table.add(
            f"K={K}",
            f"{2 * K} vs {K + 1} (ratio {2 * K / (K + 1):.3f})",
            f"{p.n_replicas} vs {opt.n_replicas} (ratio {ratio:.3f})",
            ok,
        )
    assert prev > 1.95  # K=40 -> 80/41 ≈ 1.951
    emit(table)


def test_e4_single_nod_benchmark(benchmark):
    inst, _opt = single_nod_tight_instance(40)
    p = benchmark(single_nod, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    assert p.n_replicas == 80
