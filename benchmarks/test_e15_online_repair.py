"""E15 — online re-placement: incremental repair vs full re-solve.

Not a paper experiment but a ROADMAP one: the dynamic layer claims that
after a single-subtree event, re-folding only the dirty root path (a)
returns exactly the from-scratch answer and (b) is measurably faster
than re-solving.  This bench drives a 200+-node tree through randomized
event traces with both incremental backends and records cost parity,
repair success and the repair-vs-resolve speedup; pytest-benchmark
times the warm repair path of the exact Multiple-NoD DP.
"""

from __future__ import annotations

from repro import Policy
from repro.analysis import ExperimentTable
from repro.dynamic import DynamicPlacement, random_event_trace
from repro.instances import random_tree
from repro.simulate import run_online

from conftest import emit


def _instance(policy):
    return random_tree(70, 150, capacity=6, dmax=None, seed=11).with_policy(
        policy
    )


def test_e15_parity_and_speedup():
    table = ExperimentTable(
        "E15 (online repair)",
        "incremental repair matches cold re-solve cost on 50 randomized "
        "single-subtree events; the DP backend repairs faster than it "
        "re-solves",
    )
    for policy, label in [
        (Policy.MULTIPLE, "multiple-nod-dp"),
        (Policy.SINGLE, "single-nod"),
    ]:
        inst = _instance(policy)
        assert len(inst.tree) >= 200
        _engine, result = run_online(inst, steps=50, seed=5, p_fail=0.05)
        table.add(
            f"{label}: cost parity over {result.n_steps} events",
            "100%",
            f"{result.cost_match_rate * 100:.0f}%",
            result.cost_match_rate == 1.0,
        )
        table.add(
            f"{label}: repair success rate",
            "100%",
            f"{result.success_rate * 100:.0f}%",
            result.success_rate == 1.0,
        )
        speedup_ok = (
            result.mean_speedup > 1.0
            if policy is Policy.MULTIPLE
            else result.mean_speedup > 0.0
        )
        table.add(
            f"{label}: repair-vs-resolve mean speedup",
            ">1x" if policy is Policy.MULTIPLE else "measured",
            f"{result.mean_speedup:.2f}x",
            speedup_ok,
        )
    emit(table)


def test_e15_warm_repair_timing(benchmark):
    inst = _instance(Policy.MULTIPLE)
    engine = DynamicPlacement(inst)
    trace = random_event_trace(inst, steps=200, seed=7)
    state = {"k": 0}

    def warm_apply():
        batch = trace[state["k"] % len(trace)]
        state["k"] += 1
        outcome = engine.apply(batch)
        assert outcome.ok
        return outcome

    outcome = benchmark(warm_apply)
    cold, cold_s = engine.resolve_full()
    assert cold.n_replicas == outcome.cost
    benchmark.extra_info["cold_resolve_ms"] = cold_s * 1e3
    benchmark.extra_info["reuse_fraction"] = outcome.stats.reuse_fraction
