"""E13 — background result [3]: Multiple-NoD is polynomial.

The paper builds on Benoit, Rehn-Sonigo & Robert (2008): Multiple
without distance constraints is solvable in polynomial time, and
Algorithm 3 degenerates to it on binary trees.  This bench
cross-validates the library's three independent Multiple-NoD solvers —
the pseudo-polynomial DP (``multiple_nod_dp``), the branch-and-bound
exact solver, and Algorithm 3 (binary only) — and times the polynomial
ones against each other (the B&B is exponential and excluded from the
large-size timing).
"""

from __future__ import annotations

import pytest

from repro import Policy, is_valid, multiple_bin, multiple_nod_dp
from repro.algorithms import exact_multiple
from repro.analysis import ExperimentTable
from repro.instances import random_binary_tree, random_tree

from conftest import emit


def test_e13_three_way_agreement():
    table = ExperimentTable(
        "E13 (ref. [3], Multiple-NoD)",
        "DP, branch-and-bound and Algorithm 3 (binary) agree on the "
        "Multiple-NoD optimum",
    )
    agree3 = total3 = 0
    for seed in range(25):
        inst = random_binary_tree(
            5, 6, capacity=8, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 8),
        )
        dp = multiple_nod_dp(inst)
        assert is_valid(inst, dp)
        total3 += 1
        agree3 += (
            dp.n_replicas
            == exact_multiple(inst).n_replicas
            == multiple_bin(inst).n_replicas
        )
    table.add(
        "binary, 25 instances",
        "3-way agreement 100%",
        f"{agree3}/{total3}",
        agree3 == total3,
    )
    agree2 = total2 = 0
    for seed in range(15):
        inst = random_tree(
            4, 8, capacity=10, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, max_arity=4, request_range=(1, 10),
        )
        dp = multiple_nod_dp(inst)
        assert is_valid(inst, dp)
        total2 += 1
        agree2 += dp.n_replicas == exact_multiple(inst).n_replicas
    table.add(
        "arity 4, 15 instances",
        "DP == B&B 100%",
        f"{agree2}/{total2}",
        agree2 == total2,
    )
    emit(table)


def test_e13_oversized_clients_polynomial_without_distance():
    """Theorem 5's hardness needs *both* r_i > W and distances: the DP
    handles oversized clients effortlessly under NoD."""
    from repro import ProblemInstance, TreeBuilder

    b = TreeBuilder()
    r = b.add_root()
    n = b.add(r, delta=1.0)
    b.add(n, delta=1.0, requests=23)  # needs ceil(23/5) = 5 hosts... path has 3
    inst_bad = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
    with pytest.raises(Exception):
        multiple_nod_dp(inst_bad)

    b = TreeBuilder()
    r = b.add_root()
    n = b.add(r, delta=1.0)
    b.add(n, delta=1.0, requests=13)  # 3 path hosts x W=5 >= 13
    inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
    p = multiple_nod_dp(inst)
    assert is_valid(inst, p)
    assert p.n_replicas == 3


@pytest.mark.parametrize(
    "name,solver",
    [("dp", multiple_nod_dp), ("multiple-bin", multiple_bin)],
)
def test_e13_polynomial_solver_benchmarks(benchmark, name, solver):
    inst = random_binary_tree(
        60, 61, capacity=12, dmax=None, policy=Policy.MULTIPLE,
        seed=4, request_range=(1, 12),
    )
    p = benchmark(solver, inst)
    benchmark.extra_info["replicas"] = p.n_replicas
    assert is_valid(inst, p)
