#!/usr/bin/env python
"""ISP scenario: from a general network mesh to a replica placement.

The paper's model assumes a tree, and notes (Section 1) that general
graphs are handled by first extracting a good spanning tree.  This
example walks that full pipeline on a synthetic ISP topology:

1. generate a random geometric-ish mesh of POPs (points of presence)
   with latency-weighted links and per-POP subscriber demand
   (``repro.instances.build_isp_mesh`` — also available to sweeps as
   the registered ``isp_mesh`` generator);
2. extract the shortest-path tree from the datacenter POP
   (``repro.graphs``) — tree distances equal mesh distances;
3. place replicas under a latency SLA with ``single_gen``;
4. project the placement back onto mesh vertices and report which POPs
   host replicas.

Run: ``python examples/isp_mesh_to_tree.py [n_pops] [seed]``
(defaults: 24 POPs, seed 3; deterministic per seed).
"""

import sys

from repro import Policy, check_placement, single_gen
from repro.core import lower_bound
from repro.graphs import extract_spanning_instance
from repro.instances import build_isp_mesh, render_tree


def main(n_pops: int = 24, seed: int = 3) -> None:
    g, demands = build_isp_mesh(n_pops, seed)
    capacity, sla = 300, 7.0
    print(f"mesh: {g.n} POPs, {g.n_edges} links, "
          f"total demand {sum(demands.values())} req/unit")
    print(f"SLA: serve within latency {sla}; replica capacity W = {capacity}\n")

    inst, client_of = extract_spanning_instance(
        g, root=0, demands=demands, capacity=capacity, dmax=sla,
        policy=Policy.SINGLE, name="isp",
    )
    print(f"extracted shortest-path tree: {len(inst.tree)} tree nodes "
          f"(stub leaves added for demanding transit POPs)")
    print(f"lower bound: {lower_bound(inst)} replicas\n")

    placement = single_gen(inst)
    check_placement(inst, placement)
    if len(inst.tree) <= 80:
        print(render_tree(inst, placement))

    # Project replica nodes back to mesh POPs.
    tree_to_pop = {}
    for pop, client in client_of.items():
        tree_to_pop[client] = pop
        # stubs hang at distance 0 under the POP's tree node
        parent = inst.tree.parent(client)
        if parent >= 0 and inst.tree.delta(client) == 0.0:
            tree_to_pop[parent] = pop
    pops = sorted(
        {tree_to_pop.get(r, f"transit#{r}") for r in placement.replicas},
        key=str,
    )
    print(f"\n{placement.n_replicas} replicas; host POPs / transit nodes: {pops}")
    worst = max(
        inst.tree.distance_to_ancestor(a.client, a.server)
        for a in placement.iter_assignments()
    )
    print(f"worst client→replica latency: {worst:.2f} (SLA {sla})")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 24,
        int(sys.argv[2]) if len(sys.argv) > 2 else 3,
    )
