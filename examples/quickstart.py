#!/usr/bin/env python
"""Quickstart: build a tree, place replicas, validate, inspect.

Covers the 90-second tour of the public API:

1. build a distribution tree with :class:`TreeBuilder`;
2. wrap it in a :class:`ProblemInstance` (capacity, dmax, policy);
3. run the paper's algorithms (`single_gen`, `single_nod`,
   `multiple_bin`) plus the exact solver;
4. validate every placement with the independent checker;
5. render the result.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Policy,
    ProblemInstance,
    TreeBuilder,
    check_placement,
    exact_optimal,
    lower_bound,
    multiple_bin,
    single_gen,
    single_nod,
)
from repro.instances import render_placement_summary, render_tree


def build_instance() -> ProblemInstance:
    """A small content-distribution tree.

    The root holds the master copy; two regional nodes fan out to four
    access nodes serving six clients.
    """
    b = TreeBuilder()
    root = b.add_root()
    west = b.add(root, delta=2.0)
    east = b.add(root, delta=3.0)
    w1 = b.add(west, delta=1.0)
    w2 = b.add(west, delta=2.0)
    e1 = b.add(east, delta=1.0)
    b.add(w1, delta=1.0, requests=30)
    b.add(w1, delta=2.0, requests=25)
    b.add(w2, delta=1.0, requests=40)
    b.add(e1, delta=1.0, requests=35)
    b.add(e1, delta=1.5, requests=20)
    b.add(east, delta=2.0, requests=15)
    return ProblemInstance(
        b.build(), capacity=80, dmax=6.0, policy=Policy.SINGLE,
        name="quickstart",
    )


def main() -> None:
    inst = build_instance()
    print(f"instance: {inst.variant}, |T| = {len(inst.tree)}, "
          f"W = {inst.capacity}, dmax = {inst.dmax}")
    print(f"combinatorial lower bound: {lower_bound(inst)} replicas\n")
    print(render_tree(inst))
    print()

    # --- Algorithm 1: works with distance constraints, any arity.
    p1 = single_gen(inst)
    check_placement(inst, p1)
    print(f"single-gen   (Δ+1-approx): {p1.n_replicas} replicas")

    # --- Algorithm 2: requires NoD — drop the distance constraint.
    p2 = single_nod(inst.without_distance())
    check_placement(inst.without_distance(), p2)
    print(f"single-nod   (2-approx, NoD): {p2.n_replicas} replicas")

    # --- Algorithm 3: Multiple policy on a binary tree.
    minst = inst.with_policy(Policy.MULTIPLE)
    p3 = multiple_bin(minst)
    check_placement(minst, p3)
    print(f"multiple-bin (optimal, Multiple): {p3.n_replicas} replicas")

    # --- Exact optimum (exponential; fine at this size).
    opt = exact_optimal(inst)
    check_placement(inst, opt)
    print(f"exact Single optimum: {opt.n_replicas} replicas\n")

    print(render_tree(inst, opt))
    print()
    print(render_placement_summary(inst, opt))


if __name__ == "__main__":
    main()
