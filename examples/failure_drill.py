#!/usr/bin/env python
"""Failure drill: how robust is a replica placement to server crashes?

The paper motivates placement partly through fault tolerance
(Section 1).  This example quantifies it on a CDN hierarchy:

1. provision replicas under a latency SLA with ``single_gen``;
2. drill: crash each replica in turn (then random pairs) and repair by
   re-routing orphaned demand — measuring repair success rate, how many
   requests move, and how many emergency replicas open;
3. compare the tight placement against an over-provisioned one
   (capacity headroom) to show the classic resilience/cost trade-off.

Run: ``python examples/failure_drill.py``
"""

from repro import ProblemInstance, check_placement, single_gen
from repro.instances import cdn_hierarchy
from repro.simulate import failure_study, repair_placement


def drill(inst, placement, label):
    print(f"--- {label}: {placement.n_replicas} replicas, "
          f"load {sum(placement.loads().values())}/"
          f"{placement.n_replicas * inst.capacity}")

    # Exhaustive single-failure drill.
    repaired, moved, opened = 0, [], []
    for victim in sorted(placement.replicas):
        res = repair_placement(inst, placement, [victim])
        if res is not None:
            repaired += 1
            moved.append(res.moved_requests)
            opened.append(res.replica_overhead)
    n = placement.n_replicas
    print(f"  single failures: {repaired}/{n} repairable; "
          f"moved {sum(moved) / max(len(moved), 1):.0f} req avg; "
          f"emergency replicas {sum(opened) / max(len(opened), 1):.1f} avg")

    # Random double failures.
    if n >= 2:
        results = failure_study(inst, placement, n_failures=2, trials=15,
                                seed=11)
        ok = [r for r in results if r is not None]
        print(f"  double failures: {len(ok)}/15 repairable; worst overhead "
              f"{max((r.replica_overhead for r in ok), default=0)} replicas")


def main() -> None:
    base = cdn_hierarchy(capacity=300, dmax=9.0, seed=3)
    t = base.tree
    print(f"CDN tree: {len(t)} nodes, demand {t.total_requests}, "
          f"W = {base.capacity}, SLA dmax = {base.dmax}\n")

    tight = single_gen(base)
    check_placement(base, tight)
    drill(base, tight, "tight provisioning (W = 300)")

    print()
    roomy_inst = ProblemInstance(t, 450, base.dmax, base.policy)
    roomy = single_gen(roomy_inst)
    check_placement(roomy_inst, roomy)
    drill(roomy_inst, roomy, "over-provisioned (W = 450)")

    print("\nTrade-off: bigger servers mean fewer replicas, but each "
          "failure then orphans more demand (larger blast radius) and "
          "opens more emergency replicas — capacity headroom does not "
          "substitute for replica count when single nodes fail.")


if __name__ == "__main__":
    main()
