#!/usr/bin/env python
"""Video-on-Demand replica provisioning with QoS latency bounds.

The paper's motivating scenario (Section 1): a VoD provider deploys a
distribution tree; each edge has a latency, and a request must be
served within ``dmax`` total latency (the QoS contract).  This example:

1. generates a realistic three-tier hierarchy (core / metro / access)
   with Zipf-skewed demand — a few hot neighbourhoods dominate;
2. compares provisioning (replica counts) across QoS tiers (strict,
   standard, relaxed, none) and both access policies;
3. replays a Poisson request trace against the chosen placement with
   the discrete-event simulator, reporting latency percentiles and
   capacity headroom.

Run: ``python examples/vod_provisioning.py``
"""

import numpy as np

from repro import Policy, ProblemInstance, TreeBuilder, check_placement, single_gen
from repro.algorithms import multiple_greedy
from repro.core import lower_bound
from repro.simulate import poisson_trace, simulate


def build_vod_tree(seed: int = 7, capacity: int = 400) -> ProblemInstance:
    """Core → 3 metro → 4 access each → 5 neighbourhoods each."""
    rng = np.random.default_rng(seed)
    b = TreeBuilder()
    core = b.add_root()
    n_clients = 3 * 4 * 5
    # Zipf-skewed demand, capped at the server capacity.
    raw = rng.zipf(1.5, size=n_clients).astype(float)
    demand = np.minimum(np.ceil(raw / raw.max() * capacity), capacity)
    k = 0
    for _metro in range(3):
        m = b.add(core, delta=float(rng.uniform(3, 5)))
        for _access in range(4):
            a = b.add(m, delta=float(rng.uniform(1, 3)))
            for _hood in range(5):
                b.add(a, delta=float(rng.uniform(0.5, 1.5)),
                      requests=int(demand[k]))
                k += 1
    return ProblemInstance(b.build(), capacity, None, Policy.SINGLE,
                           name="vod")


def provisioning_study(inst: ProblemInstance) -> None:
    print(f"{'QoS tier':<12} {'dmax':>6} {'Single':>8} {'Multiple':>9} "
          f"{'lower bound':>12}")
    for tier, dmax in [
        ("strict", 3.0), ("standard", 6.0), ("relaxed", 10.0), ("none", None)
    ]:
        s_inst = ProblemInstance(inst.tree, inst.capacity, dmax, Policy.SINGLE)
        m_inst = s_inst.with_policy(Policy.MULTIPLE)
        s = single_gen(s_inst)
        check_placement(s_inst, s)
        m = multiple_greedy(m_inst)
        check_placement(m_inst, m)
        print(f"{tier:<12} {str(dmax):>6} {s.n_replicas:>8} "
              f"{m.n_replicas:>9} {lower_bound(m_inst):>12}")


def replay_study(inst: ProblemInstance) -> None:
    s_inst = ProblemInstance(inst.tree, inst.capacity, 6.0, Policy.SINGLE)
    placement = single_gen(s_inst)
    check_placement(s_inst, placement)
    horizon = 50
    trace = poisson_trace(inst.tree, float(horizon), seed=1)
    res = simulate(s_inst, placement, trace, horizon)
    lat = np.array(res.latencies)
    print(f"\nreplaying {len(trace)} Poisson requests over {horizon} units "
          f"against the 'standard' placement ({placement.n_replicas} replicas):")
    print(f"  latency p50/p95/max : {np.percentile(lat, 50):.2f} / "
          f"{np.percentile(lat, 95):.2f} / {lat.max():.2f}  (dmax = 6.0)")
    print(f"  overloaded windows  : {len(res.overloads)} "
          f"({res.overload_fraction * 100:.2f}% — Poisson bursts above the "
          "static per-unit capacity)")
    peak = max(res.peak_load(s) for s in placement.replicas)
    print(f"  peak window load    : {peak} / W = {s_inst.capacity}")


def main() -> None:
    inst = build_vod_tree()
    t = inst.tree
    print(f"VoD tree: {len(t)} nodes, {len(t.clients)} neighbourhoods, "
          f"total demand {t.total_requests} req/unit, W = {inst.capacity}\n")
    provisioning_study(inst)
    replay_study(inst)


if __name__ == "__main__":
    main()
