#!/usr/bin/env python
"""A tour of the paper's theory: tight instances, reductions, policies.

Walks through every theorem with executable artifacts:

* Theorem 1/2 — build the NP-hardness instances *I2*/*I4* from
  partition problems and watch the optimum flip with the partition
  answer;
* Theorem 3/4 — the tight families where single-gen and single-nod hit
  their worst cases, versus the hand-crafted optima;
* Theorem 5 — instance *I6*, where one oversized client makes
  Multiple-Bin NP-hard (and Algorithm 3 refuses to run);
* Theorem 6 — multiple-bin matching the exact optimum, and the one
  regime where the literal algorithm is off by one (finding F1).

Run: ``python examples/policy_and_hardness_tour.py``
"""

from repro import (
    InvalidInstanceError,
    Policy,
    check_placement,
    multiple_bin,
    single_gen,
    single_nod,
)
from repro.algorithms import exact_multiple, exact_single
from repro.instances import (
    random_binary_tree,
    single_gen_tight_instance,
    single_nod_tight_instance,
)
from repro.reductions import (
    build_i2,
    build_i4,
    build_i6,
    i6_decision,
    solve_three_partition,
    solve_two_partition,
    solve_two_partition_equal,
)


def theorem_1_2() -> None:
    print("== Theorems 1 & 2: Single-NoD-Bin is NP-hard and 3/2-inapprox ==")
    a3, B = [30, 30, 30, 23, 31, 36], 90
    inst, _ = build_i2(a3, B)
    yes = solve_three_partition(a3, B) is not None
    opt = exact_single(inst).n_replicas
    print(f"I2 from 3-Partition {a3}: partition {'exists' if yes else 'absent'}"
          f" -> optimum {opt} (threshold m = {len(a3) // 3})")

    a2 = [7, 3, 3, 3]
    inst4, _ = build_i4(a2)
    yes2 = solve_two_partition(a2) is not None
    opt2 = exact_single(inst4).n_replicas
    print(f"I4 from 2-Partition {a2}: partition {'exists' if yes2 else 'absent'}"
          f" -> optimum {opt2} (2 iff yes; a <3/2-approx would decide this)\n")


def theorems_3_4() -> None:
    print("== Theorems 3 & 4: tight approximation families ==")
    for m, arity in [(4, 3)]:
        inst, opt = single_gen_tight_instance(m, arity)
        p = single_gen(inst)
        check_placement(inst, p)
        print(f"I_m (m={m}, Δ={arity}): single-gen {p.n_replicas} vs "
              f"optimal {opt.n_replicas} — ratio "
              f"{p.n_replicas / opt.n_replicas:.2f} → Δ+1 = {arity + 1}")
    inst, opt = single_nod_tight_instance(10)
    p = single_nod(inst)
    check_placement(inst, p)
    print(f"Fig.4 (K=10): single-nod {p.n_replicas} vs optimal "
          f"{opt.n_replicas} — ratio {p.n_replicas / opt.n_replicas:.2f} → 2\n")


def theorem_5() -> None:
    print("== Theorem 5: one oversized client makes Multiple-Bin NP-hard ==")
    a = [3, 5, 4, 6, 2, 4]
    inst, lay = build_i6(a)
    big = inst.tree.requests(lay.client_big)
    print(f"I6 from 2-Partition-Equal {a}: client with {big} requests "
          f"> W = {inst.capacity}")
    try:
        multiple_bin(inst)
    except InvalidInstanceError as e:
        print(f"multiple-bin correctly refuses: {e}")
    yes = solve_two_partition_equal(a) is not None
    decided, _ = i6_decision(inst, lay)
    print(f"4m-replica decision: {decided} (partition answer: {yes})\n")


def theorem_6() -> None:
    print("== Theorem 6: multiple-bin vs exact optimum ==")
    hits, total = 0, 12
    for seed in range(total):
        inst = random_binary_tree(
            5, 6, capacity=9, dmax=5.0, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 9),
        )
        p = multiple_bin(inst)
        check_placement(inst, p)
        hits += p.n_replicas == exact_multiple(inst).n_replicas
    print(f"random Multiple-Bin instances: optimal on {hits}/{total}")
    print("(see EXPERIMENTS.md finding F1: in one intermediate-dmax regime "
          "the literal algorithm can open one extra replica)\n")


def policy_gap() -> None:
    print("== Single vs Multiple on the same tree ==")
    inst = random_binary_tree(
        5, 6, capacity=7, dmax=None, policy=Policy.SINGLE,
        seed=2, request_range=(4, 7),
    )
    s = exact_single(inst).n_replicas
    m = exact_multiple(inst.with_policy(Policy.MULTIPLE)).n_replicas
    print(f"demands straddling W: Single optimum {s}, Multiple optimum {m} "
          f"(splitting saves {s - m})")


def main() -> None:
    theorem_1_2()
    theorems_3_4()
    theorem_5()
    theorem_6()
    policy_gap()


if __name__ == "__main__":
    main()
