"""Conformance harness: invariants, grid coverage, report round-trip."""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import SolveResult, registry
from repro.scenarios import (
    REFERENCE_PAIRS,
    REGIMES,
    StressReport,
    Violation,
    build_scenario,
    check_demand_monotonicity,
    check_exact_dominance,
    check_feasibility,
    check_flat_reference_identity,
    check_incremental_parity,
    failure_storm_trace,
    quick_config,
    run_stress,
)
from repro.scenarios.harness import StressConfig


def _res(solver, status="ok", n_replicas=5, replicas=(), **kw) -> SolveResult:
    return SolveResult(
        solver=solver, instance="cell", status=status,
        n_replicas=n_replicas, replicas=list(replicas), **kw,
    )


class TestFeasibilityInvariant:
    def test_ok_rows_pass(self):
        assert check_feasibility("c", [_res("local"), _res("exact")]) == []

    def test_invalid_and_error_flagged(self):
        results = [
            _res("local", status="invalid", error="InvalidPlacement: x"),
            _res("exact", status="error", error="ZeroDivisionError: y"),
            _res("single-gen", status="budget", error="SolverError: z"),
        ]
        violations = check_feasibility("c", results)
        assert {v.solver for v in violations} == {"local", "exact"}
        assert all(v.invariant == "feasibility" for v in violations)


class TestExactDominanceInvariant:
    def test_heuristic_below_optimum_flagged(self):
        results = [_res("exact", n_replicas=5), _res("local", n_replicas=4)]
        violations = check_exact_dominance("c", results)
        assert len(violations) == 1
        assert violations[0].solver == "local"
        assert "heuristic beat the exact optimum" in violations[0].detail

    def test_exact_disagreement_flagged(self):
        results = [
            _res("exact", n_replicas=5),
            _res("exact-single", n_replicas=6),
        ]
        violations = check_exact_dominance("c", results)
        assert len(violations) == 1
        assert violations[0].solver == "exact-single"

    def test_consistent_results_pass(self):
        results = [
            _res("exact", n_replicas=5),
            _res("exact-single", n_replicas=5),
            _res("local", n_replicas=9),
            _res("single-gen", status="budget", n_replicas=None),
        ]
        assert check_exact_dominance("c", results) == []

    def test_no_exact_rows_is_vacuous(self):
        assert check_exact_dominance("c", [_res("local", n_replicas=1)]) == []


class TestMonotonicityInvariant:
    def test_holds_on_real_instance(self):
        inst = build_scenario("broom/zipf", size=10, capacity=8, dmax=4.0, seed=0)
        results = [registry.solve("exact-single", inst)]
        assert results[0].status == "ok"
        assert check_demand_monotonicity("c", inst, results) == []

    def test_skipped_without_exact_results(self):
        inst = build_scenario("broom/zipf", size=10, capacity=8, seed=0)
        assert check_demand_monotonicity("c", inst, [_res("local")]) == []


class TestFlatReferenceInvariant:
    def test_identity_holds_on_real_instance(self):
        from repro import Policy

        inst = build_scenario(
            "random_attachment/uniform", size=14, capacity=9,
            policy=Policy.MULTIPLE, seed=1,
        )
        results = [
            registry.solve(name, inst) for name in REFERENCE_PAIRS
            if registry.get_solver(name).applicable(inst)
        ]
        assert any(r.status == "ok" for r in results)
        assert check_flat_reference_identity("c", inst, results) == []

    def test_divergence_flagged(self):
        from repro import Policy

        inst = build_scenario(
            "star/uniform", size=8, capacity=9,
            policy=Policy.MULTIPLE, seed=1,
        )
        real = registry.solve("multiple-nod-dp", inst)
        assert real.status == "ok"
        forged = dataclasses.replace(real, replicas=[999] + real.replicas[1:])
        violations = check_flat_reference_identity("c", inst, [forged])
        assert len(violations) == 1
        assert violations[0].invariant == "flat-reference-identity"


class TestIncrementalParityInvariant:
    def test_holds_over_failure_storm(self):
        from repro import Policy

        inst = build_scenario(
            "random_attachment/zipf", size=18, capacity=10,
            policy=Policy.MULTIPLE, seed=2,
        )
        trace = failure_storm_trace(inst, storms=2, storm_size=2, seed=3)
        assert check_incremental_parity("c", inst, trace) == []


class TestQuickGrid:
    """The pinned CI gate, exercised on a slice plus one full pass."""

    def test_quick_grid_zero_violations_full_coverage(self):
        # The acceptance bar: every family, every registered solver,
        # zero invariant violations on the pinned seeds.
        report = run_stress(quick_config())
        assert report.n_families >= 12
        assert report.ok, [str(v) for v in report.violations]
        assert report.uncovered == []
        registered = {s.name for s in registry.available_solvers()}
        assert set(report.solver_runs) == registered

    def test_family_subset_and_progress_callback(self):
        seen = []
        report = run_stress(
            quick_config(families=["star/uniform"]),
            on_cell=seen.append,
        )
        assert report.n_cells == 2  # one family × two regimes × one seed
        assert [r.cell for r in seen] == [r.cell for r in report.cells]
        assert all(r.family == "star/uniform" for r in report.cells)

    def test_solver_subset_filters_runs(self):
        report = run_stress(
            quick_config(families=["broom/uniform"], solvers=["local"])
        )
        assert set(report.solver_runs) == {"local"}
        assert report.uncovered == []

    def test_unknown_regime_rejected(self):
        config = dataclasses.replace(
            quick_config(families=["star/uniform"]), regimes=["warp"]
        )
        with pytest.raises(KeyError, match="unknown regime"):
            run_stress(config)

    def test_regime_size_caps_apply(self):
        config = StressConfig(
            families=["star/uniform"], seeds=[0],
            regimes=["multiple"], regimes_per_family=1, size=50,
        )
        cells = config.cells()
        assert len(cells) == 1
        assert cells[0].size == REGIMES["multiple"].size_cap


class TestStressReport:
    def test_round_trip(self):
        report = run_stress(quick_config(families=["star/zipf"]))
        data = report.to_dict()
        back = StressReport.from_dict(data)
        assert back.to_dict() == data
        assert back.ok == report.ok
        assert back.n_cells == report.n_cells

    def test_violation_round_trip(self):
        v = Violation("feasibility", "cell", "local", "boom")
        assert Violation.from_dict(v.to_dict()) == v

    def test_rendering_mentions_verdict_and_families(self):
        from repro.analysis import stress_report

        report = run_stress(quick_config(families=["star/zipf"]))
        text = stress_report(report)
        assert "Scenario conformance — PASS" in text
        assert "star/zipf" in text
        assert "Solver coverage" in text

    def test_rendering_lists_violations_on_failure(self):
        from repro.analysis import stress_report

        report = StressReport(
            violations=[Violation("feasibility", "c", "local", "boom")]
        )
        text = stress_report(report)
        assert "FAIL (1 violations)" in text
        assert "boom" in text
