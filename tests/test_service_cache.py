"""LRU cache and fingerprinting tests (repro.service.cache/fingerprint)."""

from __future__ import annotations

import threading

from repro.instances import instance_from_dict, instance_to_dict, random_tree
from repro.service import (
    ResultCache,
    instance_fingerprint,
    request_fingerprint,
)


class TestResultCache:
    def test_miss_then_hit(self):
        c = ResultCache(max_entries=2)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        s = c.stats()
        assert (s.hits, s.misses, s.size) == (1, 1, 1)

    def test_lru_eviction_order(self):
        c = ResultCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # promote a; b is now LRU
        c.put("c", 3)       # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1
        assert c.get("c") == 3
        assert c.stats().evictions == 1

    def test_put_refreshes_recency(self):
        c = ResultCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)      # refresh value and recency
        c.put("c", 3)       # evicts b, not a
        assert c.get("a") == 10
        assert c.get("b") is None

    def test_zero_size_disables_caching(self):
        c = ResultCache(max_entries=0)
        c.put("a", 1)
        assert c.get("a") is None
        assert len(c) == 0

    def test_clear_keeps_lifetime_counters(self):
        c = ResultCache(max_entries=4)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0
        assert c.stats().hits == 1

    def test_hit_rate(self):
        c = ResultCache(max_entries=4)
        assert c.stats().hit_rate == 0.0
        c.put("a", 1)
        c.get("a")
        c.get("nope")
        assert c.stats().hit_rate == 0.5

    def test_thread_safety_under_contention(self):
        c = ResultCache(max_entries=16)
        errors = []

        def worker(i: int) -> None:
            try:
                for k in range(200):
                    key = f"k{(i + k) % 32}"
                    c.put(key, i)
                    c.get(key)
            except Exception as exc:  # noqa: BLE001 — collecting for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 16


class TestFingerprints:
    def test_stable_across_equal_instances(self):
        a = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        b = instance_from_dict(instance_to_dict(a))  # round-tripped copy
        assert a == b
        assert instance_fingerprint(a) == instance_fingerprint(b)

    def test_name_does_not_participate(self):
        from repro import ProblemInstance

        a = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        renamed = ProblemInstance(
            a.tree, a.capacity, a.dmax, a.policy, name="renamed"
        )
        assert instance_fingerprint(a) == instance_fingerprint(renamed)

    def test_numeric_type_does_not_participate(self):
        # dmax=5 and dmax=5.0 compare equal; content addressing must
        # not split them into two cache slots.
        from repro import ProblemInstance

        a = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        b = ProblemInstance(a.tree, int(a.capacity), 5, a.policy)
        assert a == b
        assert instance_fingerprint(a) == instance_fingerprint(b)

    def test_content_changes_change_fingerprint(self):
        a = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        assert instance_fingerprint(a) != instance_fingerprint(
            a.without_distance()
        )
        assert instance_fingerprint(a) != instance_fingerprint(
            random_tree(6, 12, capacity=15, dmax=5.0, seed=10)
        )

    def test_request_fingerprint_mixes_solver_and_budget(self):
        a = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        base = request_fingerprint(a)
        assert request_fingerprint(a) == base
        assert request_fingerprint(a, solver="single-gen") != base
        assert request_fingerprint(a, budget=100) != base
        assert request_fingerprint(a, solver="single-gen") != request_fingerprint(
            a, solver="local"
        )
