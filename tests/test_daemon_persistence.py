"""Process-level durability: `repro serve --data-dir` survives kill -9.

These tests run the daemon as a real subprocess — the same shape as the
CI ``persistence`` smoke job — so the whole stack is exercised: CLI
argument plumbing, socket bind, WAL writes from worker threads, SIGKILL
with no chance to flush, and recovery replay on the next start.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.instances import random_tree
from repro.instances.io import instance_to_dict
from repro.service import SolveRequest, SolveResponse
from repro.storage import list_snapshots

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

INSTANCE = random_tree(4, 8, capacity=8, dmax=5.0, seed=17)
OTHER = random_tree(3, 6, capacity=9, dmax=4.0, seed=29)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


class _Daemon:
    """A `repro serve` subprocess bound to an ephemeral port."""

    def __init__(self, data_dir: str, snapshot_interval: int = 64):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve", "--port", "0", "--data-dir", data_dir,
                "--snapshot-interval", str(snapshot_interval),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines: list[str] = []
        self.base_url = self._await_listening()
        # Drain the rest of stderr in the background so the pipe never
        # fills up and blocks the daemon.
        self._drain = threading.Thread(target=self._pump, daemon=True)
        self._drain.start()

    def _await_listening(self) -> str:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise AssertionError(
                    "serve exited before listening: "
                    + "".join(self.stderr_lines)
                )
            self.stderr_lines.append(line)
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                return match.group(1)
        raise AssertionError("serve never reported a listening address")

    def _pump(self) -> None:
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def sigterm(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=30)

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


@pytest.fixture
def data_dir(tmp_path):
    return str(tmp_path / "state")


class TestKillDashNine:
    def test_sessions_and_cache_survive_sigkill(self, data_dir):
        daemon = _Daemon(data_dir)
        try:
            solved = _post(
                daemon.base_url + "/v1/solve",
                SolveRequest(instance=INSTANCE).to_wire(),
            )
            assert SolveResponse.from_wire(solved).ok

            started = _post(
                daemon.base_url + "/v1/dynamic/start",
                {"schema": 1, "instance": instance_to_dict(OTHER)},
            )
            sid = started["session_id"]
            applied = _post(
                daemon.base_url + "/v1/dynamic/apply",
                {
                    "schema": 1,
                    "session_id": sid,
                    "events": [{"kind": "capacity", "capacity": 12}],
                },
            )
            assert applied["ok"]
            live_fp = applied["fingerprint"]
            daemon.kill9()
        finally:
            daemon.cleanup()

        # Restart over the same directory: everything must be back.
        daemon = _Daemon(data_dir)
        try:
            sessions = _get(daemon.base_url + "/v1/dynamic")["sessions"]
            assert [s["session_id"] for s in sessions] == [sid]
            assert sessions[0]["fingerprint"] == live_fp

            hit = SolveResponse.from_wire(
                _post(
                    daemon.base_url + "/v1/solve",
                    SolveRequest(instance=INSTANCE).to_wire(),
                )
            )
            assert hit.diagnostics.cache_hit

            # The recovered session keeps accepting events.
            more = _post(
                daemon.base_url + "/v1/dynamic/apply",
                {
                    "schema": 1,
                    "session_id": sid,
                    "events": [{"kind": "capacity", "capacity": 14}],
                },
            )
            assert more["ok"]

            health = _get(daemon.base_url + "/v1/healthz")
            durability = health["stats"]["durability"]
            assert durability["data_dir"] == data_dir
            assert durability["records_replayed"] >= 3
        finally:
            daemon.cleanup()


class TestGracefulShutdown:
    def test_sigterm_snapshots_before_exit(self, data_dir):
        daemon = _Daemon(data_dir)
        try:
            _post(
                daemon.base_url + "/v1/solve",
                SolveRequest(instance=INSTANCE).to_wire(),
            )
            started = _post(
                daemon.base_url + "/v1/dynamic/start",
                {"schema": 1, "instance": instance_to_dict(OTHER)},
            )
            assert daemon.sigterm() == 0
        finally:
            daemon.cleanup()
        stderr = "".join(daemon.stderr_lines)
        assert "SIGTERM received" in stderr
        assert "state snapshotted at seq 2" in stderr
        # The snapshot is on disk at the final sequence number …
        assert [seq for seq, _ in list_snapshots(data_dir)] == [2]

        # … so the next start replays nothing.
        daemon = _Daemon(data_dir)
        try:
            health = _get(daemon.base_url + "/v1/healthz")
            durability = health["stats"]["durability"]
            assert durability["records_replayed"] == 0
            assert durability["last_seq"] == 2
            sessions = _get(daemon.base_url + "/v1/dynamic")["sessions"]
            assert [s["session_id"] for s in sessions] == [
                started["session_id"]
            ]
        finally:
            daemon.cleanup()


class TestRecoverCli:
    def test_recover_inspects_a_killed_data_dir(self, data_dir, capsys):
        daemon = _Daemon(data_dir)
        try:
            _post(
                daemon.base_url + "/v1/solve",
                SolveRequest(instance=INSTANCE).to_wire(),
            )
            _post(
                daemon.base_url + "/v1/dynamic/start",
                {"schema": 1, "instance": instance_to_dict(OTHER)},
            )
            daemon.kill9()
        finally:
            daemon.cleanup()

        from repro.cli import main

        assert main(["recover", "--data-dir", data_dir, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["durability"]["last_seq"] == 2
        assert report["record_kinds"] == {
            "cache-put": 1, "session-start": 1,
        }
        assert len(report["sessions"]) == 1
        fingerprint = report["state_fingerprint"]

        # --compact rewrites the dir into snapshot-only form; the state
        # it recovers to must be bit-identical.
        assert main(["recover", "--data-dir", data_dir, "--compact"]) == 0
        capsys.readouterr()
        assert [seq for seq, _ in list_snapshots(data_dir)] == [2]
        assert main(["recover", "--data-dir", data_dir, "--json"]) == 0
        compacted = json.loads(capsys.readouterr().out)
        assert compacted["state_fingerprint"] == fingerprint
        assert compacted["durability"]["records_replayed"] == 0
