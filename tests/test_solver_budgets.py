"""Budget and failure-mode behaviour of the exponential solvers."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, SolverError, TreeBuilder
from repro.algorithms import exact_multiple, exact_single, single_assignment
from repro.instances import random_tree, star


class TestExactSingleBudget:
    def test_tiny_budget_raises(self):
        # A star of many equal items forces heavy branching.
        inst = star(12, capacity=10, request_range=(3, 7), seed=1)
        with pytest.raises(SolverError):
            exact_single(inst, node_budget=3)

    def test_budget_not_triggered_when_lb_met(self):
        # If the greedy incumbent already matches the lower bound the
        # search exits immediately and cannot exhaust any budget.
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=5)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        p = exact_single(inst, node_budget=1)
        assert p.n_replicas == 1

    def test_default_budget_solves_moderate(self):
        inst = random_tree(
            5, 10, capacity=14, dmax=None, policy=Policy.SINGLE,
            seed=3, max_arity=3,
        )
        p = exact_single(inst)
        assert p.n_replicas >= 1


class TestExactMultipleBudget:
    def test_subset_budget_raises(self):
        inst = random_tree(
            6, 12, capacity=6, dmax=4.0, policy=Policy.MULTIPLE,
            seed=5, max_arity=4, request_range=(1, 6),
        )
        with pytest.raises(SolverError):
            exact_multiple(inst, subset_budget=1)


class TestSingleAssignmentBudget:
    def test_node_budget_returns_none_not_hang(self):
        inst = star(14, capacity=10, request_range=(3, 7), seed=2)
        # With an absurd budget the backtracking gives up (None) rather
        # than looping; with one replica the answer may genuinely be
        # None anyway — the point is termination and type.
        out = single_assignment(inst, [0], node_budget=2)
        assert out is None or isinstance(out, dict)

    def test_feasible_found_within_budget(self):
        inst = star(4, capacity=50, request_range=(5, 10), seed=0)
        out = single_assignment(inst, [0])
        assert out is not None
        assert sum(out.values()) == inst.tree.total_requests
