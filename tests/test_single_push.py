"""Tests for the future-work heuristics (repro.algorithms.single_push)."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleInstanceError,
    Policy,
    PolicyError,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    single_nod,
    single_nod_bestfit,
    single_push,
)
from repro.algorithms import exact_single
from repro.instances import random_tree, single_nod_tight_instance


class TestBestFitVariant:
    def test_requires_nod(self, paper_example):
        with pytest.raises(PolicyError):
            single_nod_bestfit(paper_example)

    def test_oversized_client(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=11)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        with pytest.raises(InfeasibleInstanceError):
            single_nod_bestfit(inst)

    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid(self, seed):
        inst = random_tree(
            5, 10, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=4,
        )
        assert is_valid(inst, single_nod_bestfit(inst))

    def test_beats_smallest_first_on_fig4(self):
        """On the paper's own tight family, best-fit packing fixes the
        pathology: it packs the K-demand client at n_i and lets the
        1-demand clients consolidate upward."""
        inst, opt = single_nod_tight_instance(6)
        sf = single_nod(inst)
        bf = single_nod_bestfit(inst)
        assert is_valid(inst, bf)
        assert sf.n_replicas == 12
        assert bf.n_replicas < sf.n_replicas
        assert bf.n_replicas == opt.n_replicas  # K+1 here

    def test_not_uniformly_better(self):
        """Best-fit has no ratio proof; on some instances it ties or
        loses — both are recorded, neither may be invalid."""
        wins = losses = 0
        for seed in range(12):
            inst = random_tree(
                4, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
                seed=seed, max_arity=3, request_range=(1, 12),
            )
            sf = single_nod(inst).n_replicas
            bf = single_nod_bestfit(inst).n_replicas
            wins += bf < sf
            losses += bf > sf
        assert wins + losses >= 0  # bookkeeping only; no crash is the test


class TestSinglePush:
    def test_requires_nod(self, paper_example):
        with pytest.raises(PolicyError):
            single_push(paper_example)

    @pytest.mark.parametrize("seed", range(10))
    def test_never_worse_than_single_nod(self, seed):
        inst = random_tree(
            5, 10, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=3,
        )
        p = single_push(inst)
        assert is_valid(inst, p)
        assert p.n_replicas <= single_nod(inst).n_replicas

    @pytest.mark.parametrize("seed", range(10))
    def test_observed_ratio_within_three_halves(self, seed):
        """The paper conjectures a 3/2-approximation exists for
        Single-NoD-Bin; single_push is the sketched direction and stays
        within 3/2 on this sweep (measured, not proven)."""
        inst = random_tree(
            8, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=2, request_range=(1, 12),
        )
        p = single_push(inst)
        opt = exact_single(inst).n_replicas
        assert p.n_replicas <= 1.5 * opt + 1e-9

    def test_improves_fig4_family(self):
        inst, opt = single_nod_tight_instance(8)
        p = single_push(inst)
        assert is_valid(inst, p)
        # Local search merges the 1-demand clients at the root.
        assert p.n_replicas < single_nod(inst).n_replicas
