"""Tests for the analysis harness (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Policy, lower_bound
from repro.algorithms import exact_single, multiple_bin, single_gen
from repro.analysis import (
    ExperimentTable,
    RatioSample,
    fit_power_law,
    measure_ratios,
    measure_scaling,
    policy_gap,
)
from repro.instances import caterpillar, random_tree, single_nod_tight_instance


class TestRatioSample:
    def test_ratio(self):
        s = RatioSample("x", 4, 2, True)
        assert s.ratio == 2.0

    def test_zero_reference(self):
        assert RatioSample("x", 0, 0, True).ratio == 1.0
        assert RatioSample("x", 3, 0, True).ratio == float("inf")


class TestMeasureRatios:
    def test_against_exact(self):
        instances = [
            random_tree(
                3, 6, capacity=10, dmax=None, policy=Policy.SINGLE,
                seed=s, max_arity=3,
            )
            for s in range(4)
        ]
        rep = measure_ratios(
            instances, single_gen, lambda i: exact_single(i).n_replicas
        )
        assert len(rep.samples) == 4
        assert rep.all_valid
        assert 1.0 <= rep.mean_ratio <= rep.max_ratio
        assert 0.0 <= rep.optimal_fraction <= 1.0

    def test_table_renders(self):
        inst, opt = single_nod_tight_instance(3)
        rep = measure_ratios([inst], single_gen, lambda i: opt.n_replicas)
        out = rep.table()
        assert "ratio" in out and "mean" in out

    def test_names_override(self):
        inst, _ = single_nod_tight_instance(2)
        rep = measure_ratios(
            [inst], single_gen, lambda i: 1, names=["custom"]
        )
        assert rep.samples[0].name == "custom"


class TestPolicyGap:
    def test_gap_non_negative_with_exact_references(self):
        from repro.algorithms import exact_multiple

        instances = [
            random_tree(
                4, 5, capacity=8, dmax=4.0, policy=Policy.SINGLE,
                seed=s, max_arity=2, request_range=(1, 8),
            )
            for s in range(3)
        ]
        rows = policy_gap(instances, exact_single, exact_multiple)
        assert all(r["gap"] >= 0 for r in rows)
        assert all(r["single"] >= r["multiple"] for r in rows)


class TestScaling:
    def test_fit_power_law_recovers_exponent(self):
        sizes = [100, 200, 400, 800, 1600]
        secs = [1e-6 * n**1.5 for n in sizes]
        alpha, c = fit_power_law(sizes, secs)
        assert alpha == pytest.approx(1.5, abs=0.01)
        assert c == pytest.approx(1e-6, rel=0.05)

    def test_measure_scaling_runs(self):
        def make(n):
            return caterpillar(n, capacity=10, dmax=None, seed=0)

        res = measure_scaling(make, single_gen, [50, 100, 200], repeats=1)
        assert len(res.points) == 3
        sizes = [p.size for p in res.points]
        assert sizes == sorted(sizes) and sizes[0] == len(make(50).tree)
        assert "fitted" in res.table()


class TestExperimentTable:
    def test_render_and_verdict(self):
        tab = ExperimentTable("E0", "demo claim")
        tab.add("setting-a", "2", "2", True)
        tab.add("setting-b", "3", "4", False)
        out = tab.render()
        assert "MISMATCH" in out
        assert not tab.all_ok
        tab2 = ExperimentTable("E1", "demo")
        tab2.add("s", "1", "1", True)
        assert "REPRODUCED" in tab2.render()
