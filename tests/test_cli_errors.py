"""CLI error paths: missing/corrupt inputs, bad budgets, bad names.

Every user-input failure must exit with code 2 and one clean stderr
line (argparse's own contract), never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.instances import dump_instance


@pytest.fixture
def inst_file(tmp_path, paper_example):
    path = str(tmp_path / "inst.json")
    dump_instance(paper_example, path)
    return path


class TestMissingFiles:
    @pytest.mark.parametrize("verb", ["solve", "info", "render", "simulate"])
    def test_missing_instance_file(self, verb, capsys):
        rc = main([verb, "/no/such/instance.json"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro: error: instance file not found" in err
        assert "/no/such/instance.json" in err

    def test_missing_placement_file(self, inst_file, capsys):
        rc = main(["check", inst_file, "/no/such/placement.json"])
        assert rc == 2
        assert "placement file not found" in capsys.readouterr().err

    def test_instance_path_is_directory(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path)])
        assert rc == 2
        assert "directory" in capsys.readouterr().err


class TestCorruptFiles:
    def test_unparseable_json(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        rc = main(["info", path])
        assert rc == 2
        assert "corrupt instance file" in capsys.readouterr().err

    def test_valid_json_wrong_shape(self, tmp_path, capsys):
        path = str(tmp_path / "shape.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "parents": [-1]}, fh)
        rc = main(["info", path])
        assert rc == 2
        assert "invalid instance file" in capsys.readouterr().err

    def test_wrong_schema_version(self, tmp_path, capsys):
        path = str(tmp_path / "schema.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": 99}, fh)
        rc = main(["info", path])
        assert rc == 2
        assert "invalid instance file" in capsys.readouterr().err

    def test_corrupt_placement(self, tmp_path, inst_file, capsys):
        path = str(tmp_path / "p.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[[[[")
        rc = main(["check", inst_file, path])
        assert rc == 2
        assert "corrupt placement file" in capsys.readouterr().err


class TestUnknownSolver:
    def test_solve_rejects_unknown_algorithm(self, inst_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["solve", inst_file, "--algorithm", "quantum-annealer"])
        assert exc.value.code == 2
        assert "invalid choice: 'quantum-annealer'" in capsys.readouterr().err

    def test_sweep_rejects_unknown_solver(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--solvers", "quantum-annealer"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_stress_rejects_unknown_family(self, capsys):
        rc = main(["stress", "--family", "klein-bottle/uniform"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario families: klein-bottle/uniform" in err
        assert "--list" in err


class TestInvalidBudget:
    @pytest.mark.parametrize("bad", ["-5", "0", "many"])
    def test_solve_budget_must_be_positive_int(self, inst_file, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["solve", inst_file, "--budget", bad])
        assert exc.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["sweep", "stress", "serve"])
    def test_other_verbs_validate_budget_too(self, verb, capsys):
        with pytest.raises(SystemExit) as exc:
            main([verb, "--budget", "-1"])
        assert exc.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err


class TestInvalidStressKnobs:
    @pytest.mark.parametrize("flag,bad", [("--size", "0"), ("--seeds", "-2")])
    def test_size_and_seeds_must_be_positive(self, flag, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stress", "--quick", flag, bad])
        assert exc.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    def test_seed_must_be_non_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stress", "--quick", "--seed", "-3"])
        assert exc.value.code == 2
        assert "must be a non-negative integer" in capsys.readouterr().err


class TestNoTraceback:
    def test_error_output_is_one_line_no_traceback(self, capsys):
        rc = main(["solve", "/no/such/file.json"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1
