"""Unit tests for the max-flow substrate (repro.flow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import FlowNetwork, max_flow


class TestFlowNetwork:
    def test_add_edge_returns_even_ids(self):
        g = FlowNetwork(3)
        assert g.add_edge(0, 1, 5) == 0
        assert g.add_edge(1, 2, 3) == 2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            FlowNetwork(0)
        g = FlowNetwork(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1)

    def test_reset(self):
        g = FlowNetwork(2)
        e = g.add_edge(0, 1, 4)
        assert max_flow(g, 0, 1) == 4
        assert g.flow_on(e) == 4
        g.reset()
        assert g.flow_on(e) == 0
        assert max_flow(g, 0, 1) == 4


class TestMaxFlow:
    def test_single_edge(self):
        g = FlowNetwork(2)
        g.add_edge(0, 1, 7)
        assert max_flow(g, 0, 1) == 7

    def test_series_bottleneck(self):
        g = FlowNetwork(3)
        g.add_edge(0, 1, 7)
        g.add_edge(1, 2, 3)
        assert max_flow(g, 0, 2) == 3

    def test_parallel_paths(self):
        g = FlowNetwork(4)
        g.add_edge(0, 1, 2)
        g.add_edge(0, 2, 3)
        g.add_edge(1, 3, 2)
        g.add_edge(2, 3, 3)
        assert max_flow(g, 0, 3) == 5

    def test_classic_augmenting_cross_edge(self):
        # The textbook example where a naive greedy needs the residual
        # back edge through the middle.
        g = FlowNetwork(4)
        g.add_edge(0, 1, 1)
        g.add_edge(0, 2, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(1, 3, 1)
        g.add_edge(2, 3, 1)
        assert max_flow(g, 0, 3) == 2

    def test_disconnected(self):
        g = FlowNetwork(4)
        g.add_edge(0, 1, 5)
        g.add_edge(2, 3, 5)
        assert max_flow(g, 0, 3) == 0

    def test_source_equals_sink_rejected(self):
        g = FlowNetwork(2)
        with pytest.raises(ValueError):
            max_flow(g, 0, 0)

    def test_zero_capacity_edges(self):
        g = FlowNetwork(3)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 5)
        assert max_flow(g, 0, 2) == 0

    def test_flow_conservation(self):
        rng = np.random.default_rng(7)
        n = 10
        g = FlowNetwork(n)
        arcs = []
        for _ in range(40):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                cap = int(rng.integers(1, 10))
                arcs.append((g.add_edge(int(u), int(v), cap), int(u), int(v), cap))
        total = max_flow(g, 0, n - 1)
        net = [0] * n
        for eid, u, v, cap in arcs:
            f = g.flow_on(eid)
            assert 0 <= f <= cap
            net[u] -= f
            net[v] += f
        assert net[0] == -total
        assert net[n - 1] == total
        for v in range(1, n - 1):
            assert net[v] == 0


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_networks_match_scipy(self, seed):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        from scipy.sparse.csgraph import maximum_flow

        rng = np.random.default_rng(seed)
        n = 12
        dense = np.zeros((n, n), dtype=np.int32)
        for _ in range(50):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                dense[u, v] += int(rng.integers(1, 12))
        g = FlowNetwork(n)
        for u in range(n):
            for v in range(n):
                if dense[u, v]:
                    g.add_edge(u, v, int(dense[u, v]))
        ours = max_flow(g, 0, n - 1)
        theirs = maximum_flow(
            scipy_sparse.csr_matrix(dense), 0, n - 1
        ).flow_value
        assert ours == theirs
