"""PlacementService façade tests (repro.service.facade/selection)."""

from __future__ import annotations

import pytest

from dataclasses import replace as dc_replace

from repro import Placement, Policy, check_placement
from repro.instances import random_binary_tree, random_tree
from repro.storage import StateStore
from repro.runner import register_solver, unregister_solver
from repro.service import (
    AUTO_CHAIN,
    ErrorCode,
    NoApplicableSolverError,
    PlacementService,
    SolveRequest,
    select_solver,
    selection_candidates,
)


@pytest.fixture
def single_d():
    return random_tree(6, 12, capacity=15, dmax=5.0, seed=2)


@pytest.fixture
def svc():
    with PlacementService(cache_size=8) as service:
        yield service


class TestAutoSelection:
    def test_single_with_distance_picks_single_gen(self, single_d):
        spec, reason = select_solver(single_d)
        assert spec.name == "single-gen"
        assert "auto-selected" in reason

    def test_single_nod_picks_single_nod(self, single_d):
        spec, _ = select_solver(single_d.without_distance())
        assert spec.name == "single-nod"

    def test_multiple_binary_picks_multiple_bin(self):
        inst = random_binary_tree(
            7, 8, capacity=10, dmax=None, seed=4, policy=Policy.MULTIPLE
        )
        spec, _ = select_solver(inst)
        assert spec.name == "multiple-bin"

    def test_multiple_nod_general_picks_dp(self, single_d):
        inst = single_d.without_distance().with_policy(Policy.MULTIPLE)
        spec, _ = select_solver(inst)
        # single_d's tree is arity-4: multiple-bin is out, DP is next.
        assert not inst.is_binary
        assert spec.name == "multiple-nod-dp"

    def test_multiple_with_distance_picks_greedy(self, single_d):
        inst = single_d.with_policy(Policy.MULTIPLE)
        spec, _ = select_solver(inst)
        assert spec.name == "multiple-greedy"

    def test_candidates_follow_chain_order(self, single_d):
        candidates = selection_candidates(single_d)
        chain_positions = [
            AUTO_CHAIN.index(c) for c in candidates if c in AUTO_CHAIN
        ]
        assert chain_positions == sorted(chain_positions)
        # Exponential exact solvers never lead auto-selection.
        assert candidates[0] not in ("exact", "exact-single", "exact-multiple")

    def test_explicit_name_honoured_verbatim(self, single_d):
        spec, reason = select_solver(single_d, "local")
        assert spec.name == "local"
        assert "requested" in reason

    def test_empty_registry_raises(self, single_d, monkeypatch):
        from repro.service import selection

        monkeypatch.setattr(
            selection.registry, "available_solvers", lambda: []
        )
        with pytest.raises(NoApplicableSolverError):
            select_solver(single_d)


class TestSolve:
    def test_ok_response_passes_checker(self, svc, single_d):
        resp = svc.solve(SolveRequest(instance=single_d))
        assert resp.ok
        assert resp.solver == "single-gen"
        check_placement(single_d, resp.placement)
        assert resp.n_replicas == resp.placement.n_replicas
        assert resp.diagnostics.fingerprint
        assert resp.diagnostics.selection == "auto"

    def test_explicit_solver(self, svc, single_d):
        resp = svc.solve_instance(single_d, "exact")
        assert resp.ok and resp.solver == "exact"
        assert resp.diagnostics.selection == "explicit"

    def test_unknown_solver_is_typed_error(self, svc, single_d):
        resp = svc.solve_instance(single_d, "definitely-not-registered")
        assert resp.status == "error"
        assert resp.error.code == ErrorCode.UNKNOWN_SOLVER

    def test_inapplicable_is_typed(self, svc, single_d):
        resp = svc.solve_instance(
            single_d.with_policy(Policy.MULTIPLE), "single-gen"
        )
        assert resp.status == "inapplicable"
        assert resp.error.code == ErrorCode.INAPPLICABLE

    def test_infeasible_is_typed(self, svc):
        # Clients demanding more than W: Single-infeasible.
        inst = random_tree(3, 4, capacity=2, dmax=None, request_range=(5, 9), seed=1)
        assert inst.tree.max_request > inst.capacity
        resp = svc.solve_instance(inst)
        assert resp.status == "infeasible"
        assert resp.error.code == ErrorCode.INFEASIBLE
        assert resp.placement is None

    def test_request_id_echoed(self, svc, single_d):
        resp = svc.solve(SolveRequest(instance=single_d, request_id="abc"))
        assert resp.request_id == "abc"

    def test_include_assignments_false_strips_placement(self, svc, single_d):
        resp = svc.solve(
            SolveRequest(instance=single_d, include_assignments=False)
        )
        assert resp.ok
        assert resp.placement is None
        assert resp.n_replicas is not None


class TestCacheBehaviour:
    def test_second_identical_request_hits(self, svc, single_d):
        first = svc.solve(SolveRequest(instance=single_d))
        second = svc.solve(SolveRequest(instance=single_d))
        assert not first.diagnostics.cache_hit
        assert second.diagnostics.cache_hit
        assert second.placement == first.placement
        assert second.diagnostics.fingerprint == first.diagnostics.fingerprint
        assert svc.stats().cache.hits == 1

    def test_equal_instances_share_cache_entry(self, svc, single_d):
        from repro.instances import instance_from_dict, instance_to_dict

        svc.solve(SolveRequest(instance=single_d))
        copy = instance_from_dict(instance_to_dict(single_d))
        resp = svc.solve(SolveRequest(instance=copy))
        assert resp.diagnostics.cache_hit

    def test_different_solver_is_a_miss(self, svc, single_d):
        svc.solve_instance(single_d, "single-gen")
        resp = svc.solve_instance(single_d, "local")
        assert not resp.diagnostics.cache_hit

    def test_eviction_under_capacity_one(self, single_d):
        other = random_tree(6, 12, capacity=15, dmax=5.0, seed=99)
        with PlacementService(cache_size=1) as svc:
            svc.solve_instance(single_d)
            svc.solve_instance(other)      # evicts single_d's entry
            resp = svc.solve_instance(single_d)
            assert not resp.diagnostics.cache_hit
            assert svc.stats().cache.evictions >= 1

    def test_hit_after_stripped_response_still_has_assignments(
        self, svc, single_d
    ):
        # A request that asked for no assignments must not poison the
        # cache for later callers that want them.
        svc.solve(SolveRequest(instance=single_d, include_assignments=False))
        resp = svc.solve(SolveRequest(instance=single_d))
        assert resp.diagnostics.cache_hit
        assert resp.placement is not None
        check_placement(single_d, resp.placement)

    def test_invalid_results_are_not_cached(self, single_d):
        calls = {"n": 0}

        def bogus(instance):
            calls["n"] += 1
            return Placement([], {})  # serves nobody: checker-invalid

        register_solver("test-bogus")(bogus)
        try:
            with PlacementService(cache_size=8) as svc:
                a = svc.solve_instance(single_d, "test-bogus")
                b = svc.solve_instance(single_d, "test-bogus")
            assert a.status == "invalid" == b.status
            assert a.error.code == ErrorCode.INVALID_PLACEMENT
            assert calls["n"] == 2  # recomputed, not served from cache
        finally:
            unregister_solver("test-bogus")

    def test_caller_mutation_cannot_poison_cached_counters(self, svc, single_d):
        first = svc.solve_instance(single_d, "exact")
        first.diagnostics.counters["poison"] = 999
        hit = svc.solve_instance(single_d, "exact")
        assert hit.diagnostics.cache_hit
        assert "poison" not in hit.diagnostics.counters
        hit.diagnostics.counters["poison2"] = 1
        again = svc.solve_instance(single_d, "exact")
        assert "poison2" not in again.diagnostics.counters

    def test_infeasible_results_are_cached(self, svc):
        inst = random_tree(3, 4, capacity=2, dmax=None, request_range=(5, 9), seed=1)
        svc.solve_instance(inst)
        resp = svc.solve_instance(inst)
        assert resp.status == "infeasible"
        assert resp.diagnostics.cache_hit


class TestConcurrency:
    def test_solve_many_preserves_order_and_validates(self, single_d):
        instances = [
            random_tree(5, 10, capacity=15, dmax=5.0, seed=s)
            for s in range(8)
        ]
        reqs = [
            SolveRequest(instance=i, request_id=f"r{n}")
            for n, i in enumerate(instances)
        ]
        with PlacementService(cache_size=32, workers=4) as svc:
            responses = svc.solve_many(reqs)
        assert [r.request_id for r in responses] == [f"r{n}" for n in range(8)]
        for inst, resp in zip(instances, responses):
            assert resp.ok
            check_placement(inst, resp.placement)

    def test_concurrent_identical_requests_agree(self, single_d):
        with PlacementService(cache_size=32, workers=8) as svc:
            responses = svc.solve_many(
                [SolveRequest(instance=single_d) for _ in range(16)]
            )
            placements = {r.placement for r in responses}
            assert len(placements) == 1
            assert all(r.ok for r in responses)
            stats = svc.stats()
            assert stats.requests == 16
            # At least some of the 16 must have been cache hits.
            assert stats.cache.hits > 0

    def test_threaded_stats_are_consistent(self):
        instances = [
            random_tree(4, 8, capacity=12, dmax=4.0, seed=s) for s in range(6)
        ]
        with PlacementService(cache_size=4, workers=4) as svc:
            svc.solve_many([SolveRequest(instance=i) for i in instances] * 3)
            stats = svc.stats()
        assert stats.requests == 18
        assert sum(stats.by_status.values()) == 18
        assert stats.latency_ms_max >= stats.latency_ms_p50 >= 0.0


def _dp_variants(k: int, seed: int = 7) -> list:
    """Same-shape Multiple-NoD instances differing only in requests —
    exactly what :meth:`solve_many` stacks into one array program."""
    base = random_tree(
        5, 10, capacity=12, dmax=None, policy=Policy.MULTIPLE, seed=seed
    )
    tree = base.tree
    out = []
    for j in range(k):
        reqs = [
            (tree.requests(v) + j * (v + 1)) % (base.capacity + 1)
            if tree.is_leaf(v)
            else 0
            for v in range(len(tree))
        ]
        out.append(dc_replace(base, tree=tree.with_requests(reqs)))
    return out


class TestSolveManyBatchedDP:
    """The vectorised DP fast path behind :meth:`solve_many`."""

    def test_batched_responses_equal_a_sequential_loop(self):
        reqs = [
            SolveRequest(instance=i, request_id=f"b{n}")
            for n, i in enumerate(_dp_variants(5))
        ]
        with PlacementService(cache_size=0) as seq_svc:
            expected = [seq_svc.solve(r) for r in reqs]
        with PlacementService(cache_size=0) as bat_svc:
            got = bat_svc.solve_many(reqs)
        assert [r.request_id for r in got] == [f"b{n}" for n in range(5)]
        for exp, resp in zip(expected, got):
            assert resp.status == exp.status == "ok"
            assert resp.solver == exp.solver == "multiple-nod-dp"
            assert resp.n_replicas == exp.n_replicas
            assert resp.placement == exp.placement
            assert not resp.diagnostics.cache_hit

    def test_cache_hits_never_reach_the_batch(self):
        variants = _dp_variants(4)
        reqs = [SolveRequest(instance=i) for i in variants]
        with PlacementService(cache_size=32) as svc:
            warm = svc.solve(reqs[0])
            responses = svc.solve_many(reqs)
            assert responses[0].diagnostics.cache_hit
            assert responses[0].placement == warm.placement
            assert not any(r.diagnostics.cache_hit for r in responses[1:])
            # A second pass finds every result cached by the first.
            again = svc.solve_many(reqs)
            assert all(r.diagnostics.cache_hit for r in again)
            assert [r.placement for r in again] == [
                r.placement for r in responses
            ]

    def test_mixed_batch_matches_sequential_loop(self, single_d):
        infeasible = random_tree(
            3, 4, capacity=2, dmax=None, request_range=(5, 9), seed=1
        )
        reqs = [
            SolveRequest(instance=i) for i in _dp_variants(3)
        ] + [
            SolveRequest(instance=single_d),               # pool path
            SolveRequest(instance=infeasible),             # typed failure
            SolveRequest(instance=single_d, solver="nope"),  # unknown
        ]
        with PlacementService(cache_size=0) as seq_svc:
            expected = [seq_svc.solve(r) for r in reqs]
        with PlacementService(cache_size=0) as bat_svc:
            got = bat_svc.solve_many(reqs)
        for exp, resp in zip(expected, got):
            assert resp.status == exp.status
            assert resp.solver == exp.solver
            assert resp.n_replicas == exp.n_replicas
            assert resp.placement == exp.placement
            if exp.error is not None:
                assert resp.error is not None
                assert resp.error.code == exp.error.code

    def test_batched_results_hit_the_wal_like_sequential_ones(self, tmp_path):
        """Durable state after a batched solve_many equals (a) the state
        a sequential service builds from the same requests and (b) its
        own state recovered from the WAL."""
        reqs = [SolveRequest(instance=i) for i in _dp_variants(4)]
        bat_dir, seq_dir = tmp_path / "bat", tmp_path / "seq"
        service = PlacementService(store=StateStore(str(bat_dir), fsync=False))
        service.solve_many(reqs)
        fp = service.state_fingerprint()
        service.close()

        sequential = PlacementService(
            store=StateStore(str(seq_dir), fsync=False)
        )
        for r in reqs:
            sequential.solve(r)
        assert sequential.state_fingerprint() == fp
        sequential.close()

        recovered = PlacementService(
            store=StateStore(str(bat_dir), fsync=False)
        )
        try:
            assert recovered.state_fingerprint() == fp
            assert all(
                r.diagnostics.cache_hit for r in recovered.solve_many(reqs)
            )
        finally:
            recovered.close()


class TestStats:
    def test_status_breakdown(self, svc, single_d):
        svc.solve_instance(single_d)
        svc.solve_instance(single_d, "definitely-not-registered")
        stats = svc.stats()
        assert stats.requests == 2
        assert stats.by_status.get("ok") == 1
        assert stats.by_status.get("error") == 1
        wire = stats.to_wire()
        assert wire["requests"] == 2
        assert 0.0 <= wire["cache"]["hit_rate"] <= 1.0

    def test_solver_info_lists_registry(self, svc):
        info = svc.solver_info()
        names = {s["name"] for s in info}
        assert "single-gen" in names and "exact" in names
        sg = next(s for s in info if s["name"] == "single-gen")
        assert sg["in_auto_chain"] is True
        ex = next(s for s in info if s["name"] == "exact")
        assert ex["in_auto_chain"] is False and ex["exact"] is True
