"""Tests for the baseline heuristics (repro.algorithms.greedy)."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleInstanceError,
    Policy,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    local_placement,
    multiple_greedy,
    single_greedy_packing,
)
from repro.algorithms import exact_multiple, multiple_bin
from repro.instances import random_binary_tree, random_tree


class TestLocalPlacement:
    def test_every_client_self_serves(self, paper_example):
        p = local_placement(paper_example)
        assert is_valid(paper_example, p)
        t = paper_example.tree
        demanding = [c for c in t.clients if t.requests(c) > 0]
        assert p.replicas == frozenset(demanding)
        for c in demanding:
            assert p.servers_of(c) == [c]

    def test_zero_demand_clients_skipped(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        b.add(r, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 5, 1.0, Policy.SINGLE)
        assert local_placement(inst).n_replicas == 1

    def test_oversized_client_raises(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=9)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        with pytest.raises(InfeasibleInstanceError):
            local_placement(inst)

    def test_valid_under_any_dmax(self):
        # Self-serving is distance 0, valid even with dmax = 0.
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=7.0, requests=3)
        inst = ProblemInstance(b.build(), 5, 0.0, Policy.SINGLE)
        assert is_valid(inst, local_placement(inst))


class TestSingleGreedyPacking:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid(self, seed):
        inst = random_tree(
            5, 10, capacity=12, dmax=5.0 if seed % 2 else None,
            policy=Policy.SINGLE, seed=seed, max_arity=4,
        )
        assert is_valid(inst, single_greedy_packing(inst))

    def test_consolidates_trivial_case(self):
        b = TreeBuilder()
        r = b.add_root()
        for req in (2, 3):
            b.add(r, delta=1.0, requests=req)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        p = single_greedy_packing(inst)
        assert p.n_replicas == 1
        assert p.replicas == frozenset({r})

    def test_never_better_than_exact(self):
        from repro.algorithms import exact_single

        for seed in range(5):
            inst = random_tree(
                4, 7, capacity=10, dmax=None, policy=Policy.SINGLE,
                seed=seed, max_arity=3,
            )
            assert (
                single_greedy_packing(inst).n_replicas
                >= exact_single(inst).n_replicas
            )


class TestMultipleGreedy:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid_any_arity(self, seed):
        inst = random_tree(
            5, 10, capacity=12, dmax=5.0 if seed % 2 else None,
            policy=Policy.MULTIPLE, seed=seed, max_arity=4,
        )
        assert is_valid(inst, multiple_greedy(inst))

    def test_oversized_client_rejected(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=9)
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        with pytest.raises(InfeasibleInstanceError):
            multiple_greedy(inst)

    @pytest.mark.parametrize("seed", range(8))
    def test_ablation_never_better_than_multiple_bin_exact(self, seed):
        # multiple_greedy lacks extra-server; it can only match or lose
        # against the exact optimum (measured in bench E6-ablation).
        inst = random_binary_tree(
            4, 5, capacity=8, dmax=4.0, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 8),
        )
        g = multiple_greedy(inst)
        assert is_valid(inst, g)
        assert g.n_replicas >= exact_multiple(inst).n_replicas

    def test_matches_multiple_bin_on_easy_binary(self):
        inst = random_binary_tree(
            5, 6, capacity=10, dmax=None, policy=Policy.MULTIPLE,
            seed=3, request_range=(1, 10),
        )
        assert multiple_greedy(inst).n_replicas >= multiple_bin(inst).n_replicas
