"""Wire-schema round-trips for the service layer (repro.service.schema)."""

from __future__ import annotations

import json

import pytest

from repro import Placement
from repro.instances import random_tree
from repro.service import (
    WIRE_SCHEMA_VERSION,
    Diagnostics,
    ErrorCode,
    ErrorInfo,
    SolveRequest,
    SolveResponse,
    WireFormatError,
)


@pytest.fixture
def inst():
    return random_tree(6, 12, capacity=15, dmax=5.0, seed=3)


def _through_json(payload: dict) -> dict:
    """Simulate the network: encode to bytes and parse back."""
    return json.loads(json.dumps(payload))


class TestRequestRoundTrip:
    def test_full_round_trip(self, inst):
        req = SolveRequest(
            instance=inst, solver="single-gen", budget=500,
            include_assignments=False, request_id="r-1",
        )
        back = SolveRequest.from_wire(_through_json(req.to_wire()))
        assert back.instance == inst
        assert back.solver == "single-gen"
        assert back.budget == 500
        assert back.include_assignments is False
        assert back.request_id == "r-1"

    def test_defaults_round_trip(self, inst):
        back = SolveRequest.from_wire(_through_json(SolveRequest(inst).to_wire()))
        assert back.solver is None
        assert back.budget is None
        assert back.include_assignments is True

    def test_wire_carries_schema_version(self, inst):
        assert SolveRequest(inst).to_wire()["schema"] == WIRE_SCHEMA_VERSION

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.pop("instance"),
            lambda w: w.update(schema=99),
            lambda w: w.pop("schema"),
            lambda w: w.update(solver=42),
            lambda w: w.update(budget="lots"),
            lambda w: w.update(budget=True),  # bool is not a budget
            lambda w: w.update(instance={"schema": 1}),
        ],
    )
    def test_malformed_requests_raise(self, inst, mutate):
        wire = SolveRequest(inst).to_wire()
        mutate(wire)
        with pytest.raises(WireFormatError):
            SolveRequest.from_wire(wire)

    def test_non_object_raises(self):
        with pytest.raises(WireFormatError):
            SolveRequest.from_wire([1, 2, 3])


class TestResponseRoundTrip:
    def test_ok_response_round_trip(self):
        placement = Placement([0, 2], {(3, 0): 4, (5, 2): 1})
        resp = SolveResponse(
            status="ok", solver="single-gen", n_replicas=2, lower_bound=1,
            placement=placement,
            diagnostics=Diagnostics(
                cache_hit=True, fingerprint="abc", selection="auto",
                selection_reason="because", solve_ms=1.5, service_ms=2.0,
                counters={"nodes": 7},
            ),
            request_id="r-2",
        )
        back = SolveResponse.from_wire(_through_json(resp.to_wire()))
        assert back.ok
        assert back.placement == placement
        assert back.n_replicas == 2
        assert back.diagnostics.cache_hit is True
        assert back.diagnostics.fingerprint == "abc"
        assert back.diagnostics.counters == {"nodes": 7}
        assert back.request_id == "r-2"
        assert back.error is None

    def test_error_response_round_trip(self):
        resp = SolveResponse(
            status="error",
            error=ErrorInfo(ErrorCode.UNKNOWN_SOLVER, "unknown solver 'x'"),
        )
        back = SolveResponse.from_wire(_through_json(resp.to_wire()))
        assert not back.ok
        assert back.placement is None
        assert back.error is not None
        assert back.error.code == ErrorCode.UNKNOWN_SOLVER
        assert "unknown solver" in back.error.message

    def test_wrong_schema_raises(self):
        wire = SolveResponse(status="ok").to_wire()
        wire["schema"] = 0
        with pytest.raises(WireFormatError):
            SolveResponse.from_wire(wire)

    def test_missing_status_raises(self):
        wire = SolveResponse(status="ok").to_wire()
        del wire["status"]
        with pytest.raises(WireFormatError):
            SolveResponse.from_wire(wire)

    def test_bad_placement_payload_raises(self):
        wire = SolveResponse(status="ok").to_wire()
        wire["placement"] = {"replicas": [1], "assignments": [[0, 1, -5]]}
        with pytest.raises(WireFormatError):
            SolveResponse.from_wire(wire)

    def test_unknown_diagnostic_keys_tolerated(self):
        # Forward compatibility: a newer server may add diagnostics.
        wire = SolveResponse(status="ok").to_wire()
        wire["diagnostics"]["shiny_new_field"] = 1
        back = SolveResponse.from_wire(wire)
        assert back.status == "ok"
