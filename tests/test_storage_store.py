"""StateStore: the WAL + snapshot + compaction discipline end to end."""

from __future__ import annotations

import os

import pytest

from repro.storage import (
    CachePut,
    CacheRemove,
    RecoveryError,
    SessionClose,
    StateStore,
    encode_record,
    list_snapshots,
    scan_wal,
    snapshot_path,
    write_snapshot,
    WriteAheadLog,
)


def _put(n: int) -> CachePut:
    return CachePut(key=f"k{n}", instance_fp=f"fp{n}", response={"n": n})


class TestLifecycle:
    def test_append_before_recover_raises(self, tmp_path):
        store = StateStore(str(tmp_path / "d"))
        with pytest.raises(RuntimeError, match="before recover"):
            store.append(_put(1))

    def test_recover_twice_raises(self, tmp_path):
        store = StateStore(str(tmp_path / "d"))
        store.recover()
        with pytest.raises(RuntimeError, match="twice"):
            store.recover()

    def test_fresh_directory_recovers_empty(self, tmp_path):
        store = StateStore(str(tmp_path / "d"))
        recovered = store.recover()
        assert recovered.snapshot is None
        assert recovered.records == [] and not recovered.torn_tail

    def test_append_assigns_contiguous_seqs(self, tmp_path):
        store = StateStore(str(tmp_path / "d"))
        store.recover()
        assert [store.append(_put(n)) for n in range(4)] == [1, 2, 3, 4]
        store.close()


class TestRecovery:
    def test_log_only_replay(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d)
        store.recover()
        for n in range(3):
            store.append(_put(n))
        store.close()

        again = StateStore(d)
        recovered = again.recover()
        assert [seq for seq, _ in recovered.records] == [1, 2, 3]
        assert [r.key for _, r in recovered.records] == ["k0", "k1", "k2"]
        # Appends continue past the recovered tail.
        assert again.append(_put(9)) == 4
        again.close()

    def test_snapshot_plus_tail_replay(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        for n in range(3):
            seq = store.append(_put(n))
            store.note_applied(seq)
        store.snapshot_now(lambda: {"upto": 3})
        store.append(_put(3))
        store.close()

        again = StateStore(d)
        recovered = again.recover()
        assert recovered.snapshot == {"upto": 3}
        assert recovered.snapshot_seq == 3
        assert [seq for seq, _ in recovered.records] == [4]
        again.close()

    def test_stale_wal_frames_skipped_not_replayed(self, tmp_path):
        """Snapshot newer than log: crash between snapshot and compact."""
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        for n in range(3):
            seq = store.append(_put(n))
            store.note_applied(seq)
        store.close()
        # Write the snapshot by hand *without* compacting the WAL —
        # exactly the state a crash between the two leaves behind.
        write_snapshot(d, 2, {"upto": 2})

        again = StateStore(d)
        recovered = again.recover()
        assert recovered.snapshot_seq == 2
        assert [seq for seq, _ in recovered.records] == [3]
        assert again.status().records_skipped == 2
        again.close()

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d)
        store.recover()
        store.append(_put(1))
        store.close()
        wal_path = os.path.join(d, StateStore.WAL_FILENAME)
        with open(wal_path, "ab") as fh:
            fh.write(b"torn-frame-resid")
        size_with_residue = os.path.getsize(wal_path)

        again = StateStore(d)
        recovered = again.recover()
        assert recovered.torn_tail
        assert [seq for seq, _ in recovered.records] == [1]
        assert again.status().torn_tail_recovered
        assert os.path.getsize(wal_path) < size_with_residue
        again.close()

    def test_seq_gap_between_snapshot_and_log_raises(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        for n in range(4):
            seq = store.append(_put(n))
            store.note_applied(seq)
        store.close()
        # Snapshot claims seq 1; log frames 3-4 survive a hand-compact
        # that dropped too much: record 2 is unrecoverable.
        write_snapshot(d, 1, {"upto": 1})
        wal = WriteAheadLog(os.path.join(d, StateStore.WAL_FILENAME))
        wal.compact(2)
        wal.close()

        with pytest.raises(RecoveryError, match="missing"):
            StateStore(d).recover()

    def test_log_starting_past_one_without_snapshot_raises(self, tmp_path):
        d = str(tmp_path / "d")
        os.makedirs(d)
        wal = WriteAheadLog(os.path.join(d, StateStore.WAL_FILENAME))
        wal.append(5, encode_record(_put(5)))
        wal.close()
        with pytest.raises(RecoveryError, match="no .*snapshot covering"):
            StateStore(d).recover()

    def test_undecodable_record_payload_raises(self, tmp_path):
        d = str(tmp_path / "d")
        os.makedirs(d)
        wal = WriteAheadLog(os.path.join(d, StateStore.WAL_FILENAME))
        wal.append(1, b"not json at all")
        wal.append(2, encode_record(_put(2)))  # more data follows
        wal.close()
        with pytest.raises(RecoveryError, match="not JSON"):
            StateStore(d).recover()

    def test_unknown_record_kind_raises(self, tmp_path):
        d = str(tmp_path / "d")
        os.makedirs(d)
        wal = WriteAheadLog(os.path.join(d, StateStore.WAL_FILENAME))
        wal.append(1, b'{"kind": "from-the-future"}')
        wal.close()
        with pytest.raises(RecoveryError, match="unknown record kind"):
            StateStore(d).recover()

    def test_corrupt_newest_snapshot_never_silently_falls_back(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        seq = store.append(_put(1))
        store.note_applied(seq)
        store.snapshot_now(lambda: {"upto": 1})
        store.close()
        with open(snapshot_path(d, 9), "w", encoding="utf-8") as fh:
            fh.write("{half a snapsh")
        with pytest.raises(RecoveryError, match="unreadable snapshot"):
            StateStore(d).recover()


class TestSnapshotDiscipline:
    def test_auto_snapshot_every_interval_and_compacts(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=2)
        store.recover()
        states = []
        for n in range(5):
            seq = store.append(_put(n))
            store.note_applied(seq, lambda: states.append("snap") or {"n": n})
        status = store.status()
        assert status.snapshots_written == 2  # at seq 2 and seq 4
        assert status.last_snapshot_seq == 4
        # The WAL only holds the tail past the snapshot.
        assert [s for s, _ in scan_wal(os.path.join(d, StateStore.WAL_FILENAME)).records] == [5]
        store.close()

    def test_watermark_waits_for_contiguous_applies(self, tmp_path):
        store = StateStore(str(tmp_path / "d"), snapshot_interval=0)
        store.recover()
        s1 = store.append(_put(1))
        s2 = store.append(_put(2))
        store.note_applied(s2)  # out of order: 1 still outstanding
        assert store.snapshot_now(lambda: {}) == 0
        store.note_applied(s1)
        assert store.snapshot_now(lambda: {}) == s2
        store.close()

    def test_snapshot_now_prunes_wal_and_survives_restart(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        for n in range(3):
            store.note_applied(store.append(_put(n)))
        assert store.snapshot_now(lambda: {"upto": 3}) == 3
        store.close()
        assert [seq for seq, _ in list_snapshots(d)] == [3]

        again = StateStore(d)
        recovered = again.recover()
        assert recovered.snapshot == {"upto": 3} and recovered.records == []
        again.close()

    def test_status_counters(self, tmp_path):
        d = str(tmp_path / "d")
        store = StateStore(d, snapshot_interval=0)
        store.recover()
        store.note_applied(store.append(_put(1)))
        store.note_applied(store.append(CacheRemove(keys=["k1"])))
        store.note_applied(store.append(SessionClose(session_id="dyn-1-x")))
        status = store.status()
        assert status.records_appended == 3
        assert status.last_seq == 3
        assert status.wal_bytes > 12
        wire = status.to_wire()
        assert wire["last_seq"] == 3 and wire["data_dir"] == d
        store.close()
