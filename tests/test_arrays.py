"""FlatTree invariants and flat-path ↔ object-path solver equivalence.

Two layers of guarantees:

* **Round-trip** — ``FlatTree`` is a lossless recompilation of
  ``Tree``: every per-node field survives the renumbering, subtree
  spans are exact, and ``to_tree()`` rebuilds the original tree.
* **Bit-identity** — the solvers rewritten onto the flat substrate
  (``multiple-nod-dp``, ``single-nod``, ``multiple-greedy``) return
  *exactly* the placements of their preserved object-graph references
  (:mod:`repro.algorithms.reference`) over the randomized
  ``tree_instances`` strategy — same replica sets, same assignments,
  tie-breaking included.  The monotone DP kernels are additionally
  checked against the general quadratic kernel on monotone inputs.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Policy, Tree, TreeBuilder
from repro.algorithms.greedy import multiple_greedy
from repro.algorithms.multiple_nod_dp import (
    _absorb_step,
    _min_plus,
    _min_plus_mono,
    multiple_nod_dp,
)
from repro.algorithms.reference import (
    multiple_greedy_reference,
    multiple_nod_dp_reference,
    single_nod_reference,
)
from repro.algorithms.single_nod import single_nod
from repro.core.arrays import flat_cache_stats, flat_tree
from tests.conftest import tree_instances

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)

_INF = float("inf")


# ----------------------------------------------------------------------
# FlatTree round-trip and layout invariants
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(tree_instances())
def test_flat_tree_round_trips(inst):
    tree = inst.tree
    ft = flat_tree(tree)
    assert ft.to_tree() == tree


@settings(**COMMON)
@given(tree_instances())
def test_flat_tree_fields_match_tree(inst):
    tree = inst.tree
    ft = flat_tree(tree)
    n = len(tree)
    assert ft.n == n and len(ft) == n
    assert sorted(ft.post_to_orig) == list(range(n))
    for p in range(n):
        v = ft.post_to_orig[p]
        assert ft.orig_to_post[v] == p
        assert ft.demand[p] == tree.requests(v)
        assert ft.delta[p] == tree.delta(v)
        assert ft.is_leaf(p) == tree.is_leaf(v)
        # Children order is the tree's child order.
        kids = [ft.post_to_orig[c] for c in ft.children(p)]
        assert kids == list(tree.children(v))
        # Parent pointers agree, and post-order puts parents after
        # children.
        if v == tree.root:
            assert ft.parent[p] == -1 and p == ft.root
        else:
            assert ft.post_to_orig[ft.parent[p]] == tree.parent(v)
            assert ft.parent[p] > p
        # Ancestor-count depth.
        assert ft.depth[p] == len(tree.path_to_root(v)) - 1


@settings(**COMMON)
@given(tree_instances())
def test_flat_tree_subtree_spans(inst):
    tree = inst.tree
    ft = flat_tree(tree)
    for p in range(ft.n):
        v = ft.post_to_orig[p]
        span = {ft.post_to_orig[q] for q in ft.subtree_span(p)}
        assert span == set(tree.subtree(v))
        assert ft.subtree_demand[p] == sum(
            tree.requests(u) for u in tree.subtree(v)
        )


def test_flat_tree_is_cached_per_tree():
    b = TreeBuilder()
    r = b.add_root()
    b.add(r, delta=1.0, requests=3)
    tree = b.build()
    before = flat_cache_stats()
    ft1 = flat_tree(tree)
    ft2 = flat_tree(tree)
    after = flat_cache_stats()
    assert ft1 is ft2
    assert after["compiles"] == before["compiles"] + 1
    assert after["hits"] >= before["hits"] + 1
    # A structurally equal but distinct tree compiles its own layout.
    other = Tree([-1, 0], [0.0, 1.0], [0, 3])
    assert flat_tree(other) is not ft1


# ----------------------------------------------------------------------
# Monotone DP kernels vs the general quadratic kernel
# ----------------------------------------------------------------------
def _monotone_tables(draw_counts):
    """Build a non-increasing table with an optional infinite prefix."""
    inf_prefix, steps = draw_counts
    table = [_INF] * inf_prefix
    value = float(len(steps) + 1)
    for width in steps:
        value -= 1.0
        table.extend([value] * width)
    return table


_mono_tables = st.tuples(
    st.integers(0, 3),
    st.lists(st.integers(1, 4), min_size=1, max_size=5),
).map(_monotone_tables)


@settings(**COMMON)
@given(_mono_tables, _mono_tables, st.integers(1, 40))
def test_min_plus_mono_equals_general_kernel(a, b, cap):
    out_fast, arg_fast = _min_plus_mono(a, b, cap)
    out_ref, arg_ref = _min_plus(a, b, cap)
    assert out_fast == out_ref
    assert arg_fast == arg_ref


@settings(**COMMON)
@given(_mono_tables, st.integers(0, 30), st.integers(1, 8))
def test_absorb_step_equals_quadratic_scan(pool, u_cap, W):
    table, chose = _absorb_step(pool, u_cap, W)
    # The original object-graph absorb scan, verbatim.
    ref_table = [_INF] * (u_cap + 1)
    ref_chose = [-1] * (u_cap + 1)
    for u in range(u_cap + 1):
        if u < len(pool) and pool[u] < ref_table[u]:
            ref_table[u] = pool[u]
            ref_chose[u] = -1
        hi = min(u + W, len(pool) - 1)
        for U in range(u + 1, hi + 1):
            val = pool[U] + 1.0
            if val < ref_table[u]:
                ref_table[u] = val
                ref_chose[u] = U
    assert table == ref_table
    assert chose == ref_chose


def test_absorb_step_forbidden_host_truncates_pool():
    pool = [3.0, 2.0, 1.0]
    table, chose = _absorb_step(pool, 4, W=2, can_host=False)
    assert table == [3.0, 2.0, 1.0, _INF, _INF]
    assert chose == [-1] * 5


# ----------------------------------------------------------------------
# Flat-path solvers are bit-identical to the object-graph references
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_single_nod_matches_reference(inst):
    assert single_nod(inst) == single_nod_reference(inst)


@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_multiple_nod_dp_matches_reference(inst):
    multi = inst.with_policy(Policy.MULTIPLE)
    assert multiple_nod_dp(multi) == multiple_nod_dp_reference(multi)


@settings(**COMMON)
@given(tree_instances())
def test_multiple_greedy_matches_reference(inst):
    multi = inst.with_policy(Policy.MULTIPLE)
    assert multiple_greedy(multi) == multiple_greedy_reference(multi)


def test_flat_dp_on_single_node_tree():
    b = TreeBuilder()
    b.add_root()
    tree = b.build()
    from repro import ProblemInstance

    inst = ProblemInstance(tree, 5, None, Policy.MULTIPLE)
    assert multiple_nod_dp(inst) == multiple_nod_dp_reference(inst)
    single = inst.with_policy(Policy.SINGLE)
    assert single_nod(single) == single_nod_reference(single)


def test_flat_tree_compiles_once_per_solver_chain():
    """One tree solved by several flat solvers compiles exactly once."""
    from repro.instances import random_tree

    inst = random_tree(
        6, 12, capacity=10, dmax=None, policy=Policy.MULTIPLE, seed=5
    )
    before = flat_cache_stats()
    multiple_nod_dp(inst)
    multiple_greedy(inst)
    single_nod(inst.with_policy(Policy.SINGLE))
    after = flat_cache_stats()
    assert after["compiles"] == before["compiles"] + 1
    assert after["hits"] >= before["hits"] + 2
