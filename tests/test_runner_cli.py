"""CLI verbs for the experiment runner: repro sweep / repro compare --store."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner import ResultStore


@pytest.fixture
def sweep_store(tmp_path):
    """A small persisted sweep to compare against."""
    path = str(tmp_path / "sweep.jsonl")
    rc = main([
        "sweep", "--limit", "3",
        "--solvers", "single-gen", "greedy-packing", "local",
        "--out", path, "--timeout", "30",
    ])
    assert rc == 0
    return path


class TestSweepCommand:
    def test_sweep_writes_store_and_prints_table(self, tmp_path, capsys):
        path = str(tmp_path / "s.jsonl")
        rc = main([
            "sweep", "--limit", "2",
            "--solvers", "single-gen", "local",
            "--out", path, "--timeout", "30",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "single-gen" in out and "ratio" in out
        lines = [json.loads(ln) for ln in open(path)]
        # Line 1 is the provenance row; result rows follow.
        assert "_meta" in lines[0]
        rows = [ln for ln in lines if "_meta" not in ln]
        assert {r["solver"] for r in rows} == {"single-gen", "local"}
        assert all(r["status"] == "ok" for r in rows)

    def test_sweep_resumes_from_store(self, sweep_store, capsys):
        before = len(ResultStore(sweep_store).load())
        rc = main([
            "sweep", "--limit", "3",
            "--solvers", "single-gen", "greedy-packing", "local",
            "--out", sweep_store, "--timeout", "30",
        ])
        assert rc == 0
        assert f"{before} resumed from store" in capsys.readouterr().err
        assert len(ResultStore(sweep_store).load()) == before

    def test_sweep_workers_flag(self, tmp_path, capsys):
        rc = main([
            "sweep", "--limit", "2", "--workers", "2",
            "--solvers", "single-gen", "local",
            "--out", str(tmp_path / "p.jsonl"), "--timeout", "30",
        ])
        assert rc == 0
        assert "single-gen" in capsys.readouterr().out

    def test_sweep_workers_default_is_cpu_count_capped_at_tasks(self):
        import os

        from repro.cli import _default_sweep_workers, build_parser

        ncpu = os.cpu_count() or 1
        assert _default_sweep_workers(1000) == ncpu
        assert _default_sweep_workers(1) == 1
        assert _default_sweep_workers(0) == 1
        # The flag itself defaults to "decide from the machine".
        args = build_parser().parse_args(["sweep"])
        assert args.workers is None


class TestCompareStore:
    def test_compare_renders_solver_vs_solver_table(self, sweep_store, capsys):
        rc = main(["compare", "--store", sweep_store])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("single-gen", "greedy-packing", "local"):
            assert name in out
        assert "ratio" in out and "wins" in out

    def test_compare_empty_store_fails(self, tmp_path, capsys):
        rc = main(["compare", "--store", str(tmp_path / "none.jsonl")])
        assert rc == 1

    def test_compare_without_args_fails(self, capsys):
        rc = main(["compare"])
        assert rc == 2

    def test_report_can_append_sweep_section(self, sweep_store, tmp_path):
        out_path = str(tmp_path / "report.md")
        rc = main(["report", "--sweep", sweep_store, "--out", out_path])
        assert rc == 0
        text = open(out_path).read()
        assert "## Solver sweep" in text
        assert "| single-gen |" in text
