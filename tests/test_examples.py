"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
