"""White-box tests for Algorithm 3's list machinery.

The paper's ``merge`` and ``add-dist`` procedures carry the key
invariant — triples sorted by non-increasing distance, one triple per
client per list — that the optimality argument leans on.  These tests
pin the helpers directly, plus the observable invariants of full runs.
"""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder, multiple_bin
from repro.algorithms.multiple_bin import _add_dist, _merge


class TestMerge:
    def test_keeps_non_increasing_order(self):
        a = [(5.0, 2, 1), (3.0, 1, 2)]
        b = [(4.0, 4, 3), (1.0, 2, 4)]
        out = _merge(a, b)
        assert [d for d, _w, _i in out] == [5.0, 4.0, 3.0, 1.0]

    def test_empty_sides(self):
        a = [(2.0, 1, 1)]
        assert _merge(a, []) == a
        assert _merge([], a) == a
        assert _merge([], []) == []

    def test_ties_stable_left_first(self):
        a = [(3.0, 1, 1)]
        b = [(3.0, 2, 2)]
        out = _merge(a, b)
        assert out[0][2] == 1 and out[1][2] == 2

    def test_preserves_all_triples(self):
        a = [(9.0, 1, 1), (7.0, 2, 2), (2.0, 3, 3)]
        b = [(8.0, 4, 4), (2.5, 5, 5)]
        out = _merge(a, b)
        assert sorted(out) == sorted(a + b)


class TestAddDist:
    def test_shifts_all(self):
        lst = [(5.0, 2, 1), (3.0, 1, 2)]
        out = _add_dist(lst, 2.5)
        assert out == [(7.5, 2, 1), (5.5, 1, 2)]

    def test_zero_shift_copies(self):
        lst = [(5.0, 2, 1)]
        out = _add_dist(lst, 0.0)
        assert out == lst and out is not lst


class TestRunInvariants:
    def make(self, W=8, dmax=6.0):
        b = TreeBuilder()
        r = b.add_root()
        n1 = b.add(r, delta=1.0)
        n2 = b.add(n1, delta=2.0)
        b.add(n2, delta=1.0, requests=5)
        b.add(n2, delta=2.0, requests=6)
        b.add(n1, delta=1.5, requests=7)
        return ProblemInstance(b.build(), W, dmax, Policy.MULTIPLE)

    def test_one_assignment_pair_per_client_server(self):
        inst = self.make()
        p = multiple_bin(inst)
        # assignments dict keys are unique by construction; amounts sum
        # to the demand.
        for c in inst.tree.clients:
            assert p.served_amount(c) == inst.tree.requests(c)

    def test_most_constrained_absorbed_first(self):
        # Two clients, the farther one must be absorbed when the server
        # opens on capacity.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        far = b.add(n, delta=4.0, requests=6)
        near = b.add(n, delta=1.0, requests=6)
        inst = ProblemInstance(b.build(), 8, 10.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        # n absorbs far entirely (most constrained) + 2 of near.
        assert p.assignments.get((far, n)) == 6
        assert p.assignments.get((near, n)) == 2
        assert p.assignments.get((near, r)) == 4

    def test_no_replica_serves_above_capacity(self):
        for dmax in (None, 3.0, 8.0):
            inst = self.make(dmax=dmax)
            p = multiple_bin(inst)
            assert all(l <= inst.capacity for l in p.loads().values())

    def test_equal_distance_boundary_travels(self):
        # d + delta == dmax exactly: the paper's strict '>' lets it pass.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=2.0)
        b.add(n, delta=2.0, requests=3)
        inst = ProblemInstance(b.build(), 10, 4.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert p.replicas == frozenset({r})
