"""Tests for the structured instance families (repro.instances.families)."""

from __future__ import annotations

import pytest

from repro import Policy, is_valid
from repro.algorithms import single_gen
from repro.instances import binomial, cdn_hierarchy, full_kary, zipf_demands


class TestZipfDemands:
    def test_bounds_and_determinism(self):
        d = zipf_demands(100, 50, seed=4)
        assert d.min() >= 1 and d.max() <= 50
        assert (d == zipf_demands(100, 50, seed=4)).all()

    def test_skewed(self):
        d = zipf_demands(500, 1000, alpha=1.3, seed=1)
        # Zipf: the median should sit far below the max.
        import numpy as np

        assert np.median(d) < d.max() / 4

    def test_errors(self):
        with pytest.raises(ValueError):
            zipf_demands(0, 10)
        with pytest.raises(ValueError):
            zipf_demands(5, 10, alpha=1.0)


class TestFullKary:
    def test_counts(self):
        inst = full_kary(3, 2, capacity=10, seed=0)
        t = inst.tree
        # internal: 1 + 3 = 4; clients: 9.
        assert len(t.internal_nodes) == 4
        assert len(t.clients) == 9
        assert t.arity == 3

    def test_depth_one_is_star(self):
        inst = full_kary(4, 1, capacity=10, seed=0)
        assert len(inst.tree.internal_nodes) == 1
        assert len(inst.tree.clients) == 4

    def test_solvable(self):
        inst = full_kary(2, 4, capacity=20, dmax=5.0, seed=1)
        assert is_valid(inst, single_gen(inst))

    def test_errors(self):
        with pytest.raises(ValueError):
            full_kary(1, 2, capacity=5)
        with pytest.raises(ValueError):
            full_kary(2, 0, capacity=5)


class TestBinomial:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_skeleton_size(self, order):
        inst = binomial(order, capacity=10, seed=0)
        t = inst.tree
        # B_k skeleton has 2^k nodes; each childless one got a client.
        assert len(t.internal_nodes) + len(t.clients) == len(t)
        skeleton = len(t) - len(t.clients)
        assert skeleton == 2 ** order

    def test_root_degree(self):
        inst = binomial(4, capacity=10, seed=0)
        t = inst.tree
        assert len(t.children(t.root)) == 4

    def test_large_order_no_recursion(self):
        inst = binomial(12, capacity=10, seed=0)  # 4096 skeleton nodes
        assert is_valid(inst, single_gen(inst))

    def test_errors(self):
        with pytest.raises(ValueError):
            binomial(0, capacity=5)


class TestCdnHierarchy:
    def test_structure(self):
        inst = cdn_hierarchy(2, 3, 4, capacity=100, seed=5)
        t = inst.tree
        assert len(t.clients) == 2 * 3 * 4
        assert len(t.internal_nodes) == 1 + 2 + 6

    def test_demand_capped(self):
        inst = cdn_hierarchy(capacity=200, seed=2)
        assert inst.tree.max_request <= 200

    def test_policy_passthrough(self):
        inst = cdn_hierarchy(capacity=100, policy=Policy.MULTIPLE, dmax=8.0)
        assert inst.policy is Policy.MULTIPLE
        assert inst.dmax == 8.0

    def test_solvable_under_sla(self):
        inst = cdn_hierarchy(capacity=300, dmax=9.0, seed=3)
        p = single_gen(inst)
        assert is_valid(inst, p)

    def test_errors(self):
        with pytest.raises(ValueError):
            cdn_hierarchy(0, 1, 1, capacity=10)
