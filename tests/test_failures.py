"""Tests for failure injection and repair (repro.simulate.failures)."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder, is_valid
from repro.algorithms import multiple_bin, single_gen
from repro.instances import random_binary_tree, random_tree
from repro.simulate import failure_study, repair_placement


class TestRepairSingle:
    def test_repaired_placement_valid(self, paper_example):
        p = single_gen(paper_example)
        victim = sorted(p.replicas)[0]
        res = repair_placement(paper_example, p, [victim])
        assert res is not None
        assert is_valid(paper_example, res.placement)
        assert victim not in res.placement.replicas

    def test_moved_requests_accounted(self, paper_example):
        p = single_gen(paper_example)
        victim = max(p.loads(), key=lambda s: p.loads()[s])
        res = repair_placement(paper_example, p, [victim])
        assert res is not None
        assert res.moved_requests == p.loads()[victim]

    def test_unrepairable_pinned_client(self):
        # A client pinned to itself (dmax=0): failing its replica kills
        # the instance.
        b = TreeBuilder()
        r = b.add_root()
        c = b.add(r, delta=5.0, requests=3)
        inst = ProblemInstance(b.build(), 5, 0.0, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset({c})
        assert repair_placement(inst, p, [c]) is None

    def test_no_failure_is_identity_count(self, paper_example):
        p = single_gen(paper_example)
        res = repair_placement(paper_example, p, [])
        assert res is not None
        assert res.placement.n_replicas == p.n_replicas
        assert res.moved_requests == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_random_single_repairs(self, seed):
        inst = random_tree(
            5, 10, capacity=15, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=3,
        )
        p = single_gen(inst)
        for victim in sorted(p.replicas):
            res = repair_placement(inst, p, [victim])
            # NoD: a repair always exists (clients can self-serve).
            assert res is not None
            assert is_valid(inst, res.placement)


class TestRepairMultiple:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_multiple_repairs(self, seed):
        # Under Multiple a repair may legitimately be impossible: a
        # client's root path holds one replica per node, and killing
        # one can leave less residual path capacity than the orphaned
        # demand.  The contract: either a checker-valid repair or None.
        inst = random_binary_tree(
            5, 6, capacity=8, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 8),
        )
        p = multiple_bin(inst)
        outcomes = []
        for victim in sorted(p.replicas):
            res = repair_placement(inst, p, [victim])
            outcomes.append(res is not None)
            if res is not None:
                assert is_valid(inst, res.placement)
                assert victim not in res.placement.replicas
        assert outcomes  # at least one victim was tried

    def test_multiple_repair_with_headroom_succeeds(self):
        # Plenty of slack capacity on every path: repair must succeed.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=3)
        b.add(n, delta=1.0, requests=2)
        inst = ProblemInstance(b.build(), 20, None, Policy.MULTIPLE)
        p = multiple_bin(inst)
        victim = sorted(p.replicas)[0]
        res = repair_placement(inst, p, [victim])
        assert res is not None
        assert is_valid(inst, res.placement)

    def test_split_repair(self):
        # Two clients of 3 with W=4: one gets split across the mid
        # server and the root; kill the mid server and repair.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=3)
        b.add(n, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 4, None, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert p.n_replicas == 2
        victim = sorted(p.replicas - {r})[0]
        res = repair_placement(inst, p, [victim])
        assert res is not None
        assert is_valid(inst, res.placement)
        assert victim not in res.placement.replicas


class TestFailureStudy:
    def test_study_shapes(self, paper_example):
        p = single_gen(paper_example)
        results = failure_study(
            paper_example, p, n_failures=1, trials=10, seed=1
        )
        assert len(results) == 10
        for res in results:
            if res is not None:
                assert is_valid(paper_example, res.placement)
                assert res.replica_overhead >= 0

    def test_too_many_failures_rejected(self, paper_example):
        p = single_gen(paper_example)
        with pytest.raises(ValueError):
            failure_study(paper_example, p, n_failures=99)

    def test_deterministic(self, paper_example):
        p = single_gen(paper_example)
        a = failure_study(paper_example, p, n_failures=1, trials=5, seed=3)
        b = failure_study(paper_example, p, n_failures=1, trials=5, seed=3)
        assert [r.failed for r in a if r] == [r.failed for r in b if r]
