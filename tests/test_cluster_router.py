"""Router behaviour against in-thread workers.

Workers here are real :class:`~repro.service.daemon.PlacementServer`
instances running in daemon threads — full wire protocol, no subprocess
overhead — so routing, failover, session affinity and the healthz
observability contract are tested deterministically.  The prober is
driven *manually* (``server.prober.probe(...)``) instead of started, so
nothing in this file depends on timing.

The subprocess/kill -9 half of the story lives in
``tests/test_cluster_faults.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import WORKER_HEADER, HashRing, make_router
from repro.instances import caterpillar, random_tree, star
from repro.service import SolveRequest, make_server
from repro.service.fingerprint import instance_fingerprint

N_WORKERS = 3


def _start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _url(server) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture()
def cluster():
    """Router + 3 in-thread workers; yields (router_server, workers)."""
    workers = {}
    servers = {}
    for i in range(N_WORKERS):
        srv = make_server("127.0.0.1", 0, cache_size=64)
        _start(srv)
        node = f"worker-{i}"
        servers[node] = srv
        workers[node] = _url(srv)
    router = make_router(
        "127.0.0.1",
        0,
        workers=workers,
        down_after=2,
        backoff_base=0.001,
        backoff_cap=0.002,
    )
    _start(router)
    try:
        yield router, servers
    finally:
        router.shutdown()
        router.server_close()
        for srv in servers.values():
            try:
                srv.shutdown()
                srv.server_close()
                srv.service.close()
            except OSError:
                pass


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post_raw(url: str, body: bytes):
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _post(url: str, payload: dict):
    return _post_raw(url, json.dumps(payload).encode("utf-8"))


def _instances():
    return [
        random_tree(6, 12, capacity=15, dmax=5.0, seed=s) for s in range(8)
    ] + [
        caterpillar(8, capacity=8, dmax=5.0),
        star(10, capacity=6),
    ]


class TestRouting:
    def test_solve_matches_ring_and_is_sticky(self, cluster):
        router, servers = cluster
        ring = HashRing(servers)  # an independently built ring agrees
        for inst in _instances():
            wire = SolveRequest(instance=inst).to_wire()
            expected = ring.route(instance_fingerprint(inst))
            for _ in range(2):  # repeat = same worker = cache affinity
                status, payload, headers = _post(
                    _url(router) + "/v1/solve", wire
                )
                assert status == 200 and payload["status"] == "ok"
                assert headers[WORKER_HEADER] == expected
        # Second identical solve was served from that worker's cache.
        status, payload, _ = _post(
            _url(router) + "/v1/solve",
            SolveRequest(instance=_instances()[0]).to_wire(),
        )
        assert payload["diagnostics"]["cache_hit"] is True

    def test_load_spreads_over_multiple_workers(self, cluster):
        router, _servers = cluster
        hit = set()
        for inst in _instances():
            _, _, headers = _post(
                _url(router) + "/v1/solve",
                SolveRequest(instance=inst).to_wire(),
            )
            hit.add(headers[WORKER_HEADER])
        assert len(hit) >= 2

    def test_solvers_forwarded(self, cluster):
        router, _ = cluster
        data = _get(_url(router) + "/v1/solvers")
        assert {s["name"] for s in data["solvers"]} >= {"exact", "single-gen"}

    def test_unknown_endpoint_404(self, cluster):
        router, _ = cluster
        status, payload, _ = _post(_url(router) + "/v1/nope", {})
        assert status == 404
        assert payload["error"]["code"] == "bad_request"

    def test_bad_json_400_without_forwarding(self, cluster):
        router, _ = cluster
        status, payload, _ = _post_raw(
            _url(router) + "/v1/solve", b"{not json"
        )
        assert status == 400
        assert "JSON" in payload["error"]["message"]


class TestHealthz:
    def test_reports_ring_shares_and_probe_latency(self, cluster):
        router, _servers = cluster
        for view in router.state.all_workers():
            router.prober.probe(view)
        data = _get(_url(router) + "/v1/healthz")
        assert data["status"] == "ok"
        assert data["role"] == "router"
        assert data["ring"]["workers_alive"] == N_WORKERS
        assert data["ring"]["vnodes"] == 16
        shares = [w["ring_share"] for w in data["workers"]]
        assert sum(shares) == pytest.approx(1.0)
        assert all(s > 0 for s in shares)
        for w in data["workers"]:
            assert w["alive"] is True
            assert w["last_probe_ok"] is True
            assert w["last_probe_ms"] is not None and w["last_probe_ms"] >= 0

    def test_degraded_when_worker_dies_and_ring_share_moves(self, cluster):
        router, servers = cluster
        victim = "worker-1"
        servers[victim].shutdown()
        servers[victim].server_close()
        view = next(
            w for w in router.state.all_workers() if w.node_id == victim
        )
        for _ in range(router.state.down_after):
            router.prober.probe(view)
        data = _get(_url(router) + "/v1/healthz")
        assert data["status"] == "degraded"
        assert data["ring"]["workers_alive"] == N_WORKERS - 1
        by_node = {w["node_id"]: w for w in data["workers"]}
        assert by_node[victim]["alive"] is False
        assert by_node[victim]["last_probe_ok"] is False
        assert by_node[victim]["ring_share"] == 0.0
        # The survivors absorb the whole hash space.
        assert sum(w["ring_share"] for w in data["workers"]) == pytest.approx(
            1.0
        )


class TestFailover:
    def test_solve_survives_dead_worker(self, cluster):
        router, servers = cluster
        # Kill whichever worker owns the first instance's fingerprint.
        inst = random_tree(7, 14, capacity=15, dmax=5.0, seed=42)
        ring = HashRing(servers)
        owner = ring.route(instance_fingerprint(inst))
        servers[owner].shutdown()
        servers[owner].server_close()
        status, payload, headers = _post(
            _url(router) + "/v1/solve", SolveRequest(instance=inst).to_wire()
        )
        assert status == 200 and payload["status"] == "ok"
        assert headers[WORKER_HEADER] != owner
        assert headers[WORKER_HEADER] == ring.successors(
            instance_fingerprint(inst), limit=2
        )[1]
        # The transport failures it took got accounted against the dead
        # worker and the serving worker recorded a retry.
        by_node = {w.node_id: w for w in router.state.all_workers()}
        assert by_node[owner].consecutive_failures >= 1
        assert by_node[headers[WORKER_HEADER]].retries >= 1

    def test_all_workers_down_is_503(self, cluster):
        router, servers = cluster
        for srv in servers.values():
            srv.shutdown()
            srv.server_close()
        status, payload, _ = _post(
            _url(router) + "/v1/solve",
            SolveRequest(
                instance=random_tree(5, 10, capacity=12, dmax=5.0, seed=1)
            ).to_wire(),
        )
        assert status == 503
        assert payload["error"]["code"] == "solver_error"

    def test_4xx_relayed_verbatim_not_retried(self, cluster):
        router, _ = cluster
        wire = SolveRequest(
            instance=random_tree(5, 10, capacity=12, dmax=5.0, seed=2),
            solver="no-such-solver",
        ).to_wire()
        status, payload, _ = _post(_url(router) + "/v1/solve", wire)
        assert status == 400
        assert payload["error"]["code"] == "unknown_solver"
        assert all(w.retries == 0 for w in router.state.all_workers())


class TestSessions:
    def test_dynamic_session_pinned_to_opening_worker(self, cluster):
        router, _servers = cluster
        inst = random_tree(6, 12, capacity=15, dmax=5.0, seed=9)
        status, payload, headers = _post(
            _url(router) + "/v1/dynamic/start",
            {"schema": 1, "instance": json.loads(
                json.dumps(SolveRequest(instance=inst).to_wire()["instance"])
            )},
        )
        assert status == 200, payload
        sid = payload["session_id"]
        opener = headers[WORKER_HEADER]
        # The merged session listing names the worker holding it.
        listing = _get(_url(router) + "/v1/dynamic")
        assert [s["worker"] for s in listing["sessions"]] == [opener]
        for _ in range(3):
            status, payload, headers = _post(
                _url(router) + "/v1/dynamic/apply",
                {"schema": 1, "session_id": sid,
                 "events": [{"kind": "capacity", "capacity": 15}]},
            )
            assert status == 200, payload
            assert headers[WORKER_HEADER] == opener
        status, _, headers = _post(
            _url(router) + "/v1/dynamic/close",
            {"schema": 1, "session_id": sid},
        )
        assert status == 200
        assert headers[WORKER_HEADER] == opener
        # Close released the binding: the session is gone.
        status, payload, _ = _post(
            _url(router) + "/v1/dynamic/apply",
            {"schema": 1, "session_id": sid,
             "events": [{"kind": "capacity", "capacity": 15}]},
        )
        assert status == 404

    def test_unknown_session_404(self, cluster):
        router, _ = cluster
        status, payload, _ = _post(
            _url(router) + "/v1/dynamic/apply",
            {"schema": 1, "session_id": "nope",
             "events": [{"kind": "capacity", "capacity": 15}]},
        )
        assert status == 404
        assert "no such session" in payload["error"]["message"]

    def test_session_id_must_be_string(self, cluster):
        router, _ = cluster
        status, _, _ = _post(
            _url(router) + "/v1/dynamic/apply", {"schema": 1, "session_id": 7}
        )
        assert status == 400


class TestCacheWarm:
    def test_warm_endpoint_seeds_worker_cache(self, cluster):
        router, servers = cluster
        # Solve on worker A, replay the response into worker B's cache
        # through /v1/cache/warm, then ask B directly: cache hit.
        inst = random_tree(6, 12, capacity=15, dmax=5.0, seed=77)
        wire = SolveRequest(instance=inst).to_wire()
        a, b = _url(servers["worker-0"]), _url(servers["worker-1"])
        status, response, _ = _post(a + "/v1/solve", wire)
        assert status == 200 and response["status"] == "ok"
        fp = instance_fingerprint(inst)
        entry = {
            "key": f"test:{fp}",
            "instance_fp": fp,
            "response": response,
        }
        status, payload, _ = _post(
            b + "/v1/cache/warm", {"schema": 1, "entries": [entry]}
        )
        assert status == 200
        assert payload["warmed"] == 1 and payload["skipped"] == 0
        # Re-warming the same key is a skip, not a duplicate.
        status, payload, _ = _post(
            b + "/v1/cache/warm", {"schema": 1, "entries": [entry]}
        )
        assert payload["warmed"] == 0 and payload["skipped"] == 1

    def test_warm_rejects_malformed_entries(self, cluster):
        _, servers = cluster
        b = _url(servers["worker-1"])
        status, payload, _ = _post(
            b + "/v1/cache/warm", {"schema": 1, "entries": "nope"}
        )
        assert status == 400
        status, payload, _ = _post(
            b + "/v1/cache/warm",
            {"schema": 1, "entries": [{"key": "k"}]},  # missing response
        )
        assert status == 400
