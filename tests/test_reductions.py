"""Tests for the hardness-proof reductions (Theorems 1, 2, 5)."""

from __future__ import annotations

import pytest

from repro import Policy, is_valid
from repro.algorithms import exact_single
from repro.reductions import (
    build_i2,
    build_i4,
    build_i6,
    i2_target_replicas,
    i4_gap_decision,
    i6_decision,
    i6_target_replicas,
    placement_from_partition_equal,
    placement_from_three_partition,
    placement_from_two_partition,
    solve_three_partition,
    solve_two_partition,
    solve_two_partition_equal,
)


class TestTwoPartitionSolver:
    def test_yes_instance(self):
        sol = solve_two_partition([3, 1, 1, 2, 2, 1])
        assert sol is not None
        assert sum([3, 1, 1, 2, 2, 1][i] for i in sol) == 5

    def test_no_instance_odd(self):
        assert solve_two_partition([3, 2]) is None

    def test_no_instance_even_total(self):
        assert solve_two_partition([6, 2]) is None

    def test_empty(self):
        assert solve_two_partition([]) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            solve_two_partition([-1, 1])

    @pytest.mark.parametrize("a", [[1, 1], [2, 3, 5], [4, 4, 4, 4], [7, 3, 2, 2]])
    def test_against_brute_force(self, a):
        from itertools import combinations

        S = sum(a)
        brute = any(
            sum(c) * 2 == S
            for k in range(len(a) + 1)
            for c in combinations(a, k)
        )
        assert (solve_two_partition(a) is not None) == brute


class TestTwoPartitionEqualSolver:
    def test_yes_instance(self):
        a = [1, 5, 2, 4]
        sol = solve_two_partition_equal(a)
        assert sol is not None
        assert len(sol) == 2
        assert sum(a[i] for i in sol) == 6

    def test_no_when_only_unequal_cardinality_split(self):
        # 6 = 1+2+3 vs 6: equal sums exist only as 3-vs-1 items.
        assert solve_two_partition_equal([1, 2, 3, 6]) is None

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            solve_two_partition_equal([1, 2, 3])

    @pytest.mark.parametrize(
        "a", [[1, 1, 1, 1], [5, 3, 4, 2, 7, 1], [2, 2, 9, 9], [1, 2, 4, 8]]
    )
    def test_against_brute_force(self, a):
        from itertools import combinations

        S = sum(a)
        m = len(a) // 2
        brute = any(
            sum(a[i] for i in c) * 2 == S
            for c in combinations(range(len(a)), m)
        )
        assert (solve_two_partition_equal(a) is not None) == brute


class TestThreePartitionSolver:
    def test_yes_instance(self):
        a = [30, 30, 30, 23, 31, 36, 25, 27, 38]  # B = 90
        sol = solve_three_partition(a, 90)
        assert sol is not None
        for t in sol:
            assert sum(a[i] for i in t) == 90
        used = sorted(i for t in sol for i in t)
        assert used == list(range(9))

    def test_no_instance(self):
        # Sums to 3B but no triple partition: 30,30,30 / 31,29,31...
        a = [31, 31, 31, 29, 29, 29, 30, 30, 30]
        sol = solve_three_partition(a, 90)
        assert sol is not None  # 31+29+30 x3 works
        a2 = [32, 32, 32, 28, 28, 28, 31, 29, 30]
        # total 270; need each triple = 90: 32+28+30, 32+28+29?=89 no...
        out = solve_three_partition(a2, 90)
        if out is not None:
            for t in out:
                assert sum(a2[i] for i in t) == 90

    def test_wrong_total(self):
        assert solve_three_partition([1, 2, 3], 100) is None

    def test_not_multiple_of_three(self):
        with pytest.raises(ValueError):
            solve_three_partition([1, 2, 3, 4], 5)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            solve_three_partition([0, 1, 2], 1)


class TestI2:
    YES = ([30, 30, 30, 23, 31, 36, 25, 27, 38], 90)  # m=3, promise holds

    def test_build_structure(self):
        inst, clients = build_i2(*self.YES)
        assert inst.variant == "Single-NoD-Bin"
        assert inst.capacity == 90
        assert len(clients) == 9
        for k, c in enumerate(clients):
            assert inst.tree.requests(c) == self.YES[0][k]

    def test_promise_violation_rejected(self):
        with pytest.raises(ValueError):
            build_i2([1, 1, 88, 30, 30, 30], 90)

    def test_yes_maps_to_m_replicas(self):
        inst, clients = build_i2(*self.YES)
        triples = solve_three_partition(*self.YES)
        assert triples is not None
        p = placement_from_three_partition(inst, clients, triples)
        assert is_valid(inst, p)
        assert p.n_replicas == i2_target_replicas(self.YES[0]) == 3

    def test_yes_exact_equals_m(self):
        # Small yes-instance (m=2): exact optimum is exactly m.
        a = [30, 40, 35, 33, 42, 36]  # B = 108: 30+42+36, 40+35+33
        inst, clients = build_i2(a, 108)
        assert solve_three_partition(a, 108) is not None
        assert exact_single(inst).n_replicas == 2

    def test_no_exact_exceeds_m(self):
        # m=2, B=100, promise 25 < a_i < 50 holds, and no triple sums
        # to 100: the triples containing 45 or 47 would need 55 or 53
        # from two of the 27s (54), so no partition exists.
        a = [27, 27, 27, 27, 45, 47]
        assert sum(a) == 200
        assert solve_three_partition(a, 100) is None
        inst, _clients = build_i2(a, 100)
        assert exact_single(inst).n_replicas > 2

    def test_reduction_equivalence_sweep(self):
        """opt <= m  <=>  3-Partition yes, over several instances."""
        import numpy as np

        rng = np.random.default_rng(5)
        for _ in range(6):
            B = 100
            # Draw 6 values in (25, 50) summing to 200 (m=2).
            while True:
                vals = sorted(int(v) for v in rng.integers(26, 50, size=6))
                if sum(vals) == 2 * B and all(25 < v < 50 for v in vals):
                    break
            yes = solve_three_partition(vals, B) is not None
            inst, clients = build_i2(vals, B)
            opt = exact_single(inst).n_replicas
            assert (opt <= 2) == yes


class TestI4:
    def test_build(self):
        inst, clients = build_i4([3, 1, 2, 2])
        assert inst.variant == "Single-NoD-Bin"
        assert inst.capacity == 4

    def test_odd_total_rejected(self):
        with pytest.raises(ValueError):
            build_i4([3, 2])

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError):
            build_i4([10, 1, 1])  # odd -> also rejected; make even
        with pytest.raises(ValueError):
            build_i4([10, 1, 1, 2])

    def test_yes_gives_two_replicas(self):
        a = [3, 1, 2, 2]
        subset = solve_two_partition(a)
        assert subset is not None
        inst, clients = build_i4(a)
        p = placement_from_two_partition(inst, clients, subset)
        assert is_valid(inst, p)
        assert p.n_replicas == 2
        assert i4_gap_decision(p.n_replicas) is True

    def test_no_instance_needs_three(self):
        a = [5, 5, 1, 1]  # S=12, W=6; subsets: 5+1=6 ✓ yes actually.
        a = [5, 3, 3, 1]  # S=12, W=6: 5+1=6 ✓ yes again.
        a = [7, 3, 3, 3]  # S=16, W=8: 7+3=10, 3+3=6, 7+3+3=13... no 8.
        assert solve_two_partition(a) is None
        inst, clients = build_i4(a)
        opt = exact_single(inst).n_replicas
        assert opt >= 3
        assert i4_gap_decision(opt) is False

    def test_gap_argument_equivalence(self):
        """exact optimum == 2 <=> 2-Partition yes (Theorem 2's engine)."""
        for a in ([2, 2, 2, 2], [4, 2, 1, 1], [6, 3, 2, 1], [5, 4, 2, 1]):
            if sum(a) % 2 or max(a) > sum(a) // 2:
                continue
            yes = solve_two_partition(a) is not None
            inst, _clients = build_i4(a)
            assert (exact_single(inst).n_replicas == 2) == yes


class TestI6:
    YES = [3, 5, 4, 6, 2, 4]  # m=3, S=24, split {3,5,4}... sums 12.

    def test_build_structure(self):
        inst, lay = build_i6(self.YES)
        m = 3
        t = inst.tree
        assert inst.variant == "Multiple-Bin"
        assert inst.capacity == 13  # S/2 + 1
        assert inst.dmax == 9.0  # 3m
        assert len(t.clients) == 5 * m
        assert len(t.internal_nodes) == 5 * m - 1
        assert t.requests(lay.client_big) == (2 * m + 1) * 13
        assert t.is_binary

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_i6([1, 2, 3])  # odd count
        with pytest.raises(ValueError):
            build_i6([1, 2, 3, 5])  # odd sum
        with pytest.raises(ValueError):
            build_i6([10, 1, 1, 2, 2, 2])  # a_i > S/4 -> b_i < 0

    def test_yes_maps_to_4m_replicas(self):
        subset = solve_two_partition_equal(self.YES)
        assert subset is not None
        inst, lay = build_i6(self.YES)
        p = placement_from_partition_equal(inst, lay, subset)
        assert is_valid(inst, p)
        assert p.n_replicas == i6_target_replicas(3) == 12

    def test_decision_yes(self):
        inst, lay = build_i6(self.YES)
        ok, subset = i6_decision(inst, lay)
        assert ok and subset is not None
        a = self.YES
        assert sum(a[i] for i in subset) == sum(a) // 2

    def test_decision_no(self):
        # S=12, m=3: size-3 subsets sum to 5, 7, 3 or 9 — never 6.
        a = [1, 1, 1, 3, 3, 3]
        assert solve_two_partition_equal(a) is None
        inst, lay = build_i6(a)
        ok, _ = i6_decision(inst, lay)
        assert not ok

    def test_decision_matches_partition_solver(self):
        import numpy as np

        rng = np.random.default_rng(11)
        for _ in range(4):
            while True:
                a = [int(v) for v in rng.integers(2, 6, size=4)]  # m=2
                S = sum(a)
                if S % 2 == 0 and all(x <= S // 4 for x in a):
                    break
            inst, lay = build_i6(a)
            ok, _ = i6_decision(inst, lay)
            assert ok == (solve_two_partition_equal(a) is not None)
