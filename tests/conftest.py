"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder


def build_paper_example() -> ProblemInstance:
    """A small hand-checkable Single instance used across tests.

    Topology::

        n0
        ├── n1 (1)
        │   ├── c3 r=4 (1)
        │   └── c4 r=3 (2)
        └── n2 (2)
            ├── c5 r=5 (1)
            └── c6 r=2 (1)

    W = 8, dmax = 4.
    """
    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=1.0)
    n2 = b.add(n0, delta=2.0)
    b.add(n1, delta=1.0, requests=4)
    b.add(n1, delta=2.0, requests=3)
    b.add(n2, delta=1.0, requests=5)
    b.add(n2, delta=1.0, requests=2)
    return ProblemInstance(b.build(), 8, 4.0, Policy.SINGLE)


def build_theorem6_counterexample() -> ProblemInstance:
    """The 13-node instance on which the paper's Algorithm 3 opens 6
    replicas while 5 suffice (see EXPERIMENTS.md, finding F1)."""
    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=2.0)
    n3 = b.add(n1, delta=2.3)
    b.add(n3, delta=2.5, requests=4)
    b.add(n3, delta=1.8, requests=6)
    n4 = b.add(n1, delta=1.1)
    n5 = b.add(n4, delta=2.7)
    b.add(n5, delta=2.3, requests=7)
    b.add(n5, delta=1.8, requests=4)
    b.add(n4, delta=1.4, requests=6)
    n2 = b.add(n0, delta=2.4)
    b.add(n2, delta=1.1, requests=6)
    b.add(n2, delta=1.8, requests=4)
    return ProblemInstance(b.build(), 8, 6.0, Policy.MULTIPLE)


@pytest.fixture
def paper_example() -> ProblemInstance:
    return build_paper_example()


@pytest.fixture
def theorem6_counterexample() -> ProblemInstance:
    return build_theorem6_counterexample()
