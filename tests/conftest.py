"""Shared fixtures and helpers for the test suite.

Also hosts the shared hypothesis strategy :func:`tree_instances` so the
property suites can import it absolutely (``from tests.conftest import
tree_instances``) regardless of the pytest rootdir, and registers the
shared hypothesis profiles:

* ``ci`` — fast, deterministic and time-bounded: few examples, no
  deadline flake, derandomized so CI failures reproduce locally.
* ``nightly`` — thorough: an order of magnitude more examples for the
  scheduled deep run.
* ``dev`` — hypothesis defaults (the implicit local profile).

Select with ``HYPOTHESIS_PROFILE=ci pytest ...``; per-test
``@settings(...)`` decorators still override individual fields.
"""

from __future__ import annotations

import math
import os

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro import Policy, ProblemInstance, Tree, TreeBuilder
from repro.core.tree import NO_PARENT

settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("nightly", max_examples=500, deadline=None)
settings.register_profile("dev", settings.get_profile("default"))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def build_paper_example() -> ProblemInstance:
    """A small hand-checkable Single instance used across tests.

    Topology::

        n0
        ├── n1 (1)
        │   ├── c3 r=4 (1)
        │   └── c4 r=3 (2)
        └── n2 (2)
            ├── c5 r=5 (1)
            └── c6 r=2 (1)

    W = 8, dmax = 4.
    """
    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=1.0)
    n2 = b.add(n0, delta=2.0)
    b.add(n1, delta=1.0, requests=4)
    b.add(n1, delta=2.0, requests=3)
    b.add(n2, delta=1.0, requests=5)
    b.add(n2, delta=1.0, requests=2)
    return ProblemInstance(b.build(), 8, 4.0, Policy.SINGLE)


def build_theorem6_counterexample() -> ProblemInstance:
    """The 13-node instance on which the paper's Algorithm 3 opens 6
    replicas while 5 suffice (see EXPERIMENTS.md, finding F1)."""
    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=2.0)
    n3 = b.add(n1, delta=2.3)
    b.add(n3, delta=2.5, requests=4)
    b.add(n3, delta=1.8, requests=6)
    n4 = b.add(n1, delta=1.1)
    n5 = b.add(n4, delta=2.7)
    b.add(n5, delta=2.3, requests=7)
    b.add(n5, delta=1.8, requests=4)
    b.add(n4, delta=1.4, requests=6)
    n2 = b.add(n0, delta=2.4)
    b.add(n2, delta=1.1, requests=6)
    b.add(n2, delta=1.8, requests=4)
    return ProblemInstance(b.build(), 8, 6.0, Policy.MULTIPLE)


@st.composite
def tree_instances(draw, max_nodes=24, binary=False, with_dmax=True):
    """A random valid ProblemInstance (shared hypothesis strategy)."""
    n_internal = draw(st.integers(1, max_nodes // 2))
    arity_cap = 2 if binary else draw(st.integers(2, 4))
    # Build parent pointers for the internal skeleton.
    parents = [NO_PARENT]
    child_count = {0: 0}
    for v in range(1, n_internal):
        options = [u for u in range(v) if child_count[u] < arity_cap - 1]
        if not options:
            break
        p = draw(st.sampled_from(options))
        parents.append(p)
        child_count[p] = child_count[p] + 1
        child_count[v] = 0
    n_int = len(parents)
    # Attach clients: every childless internal node gets one, then a few
    # more wherever arity allows.
    W = draw(st.integers(3, 20))
    requests = [0] * n_int
    deltas = [math.inf] + [
        draw(st.floats(0.5, 3.0, allow_nan=False)) for _ in range(n_int - 1)
    ]
    client_hosts = [u for u in range(n_int) if child_count[u] == 0]
    for host in client_hosts:
        child_count[host] += 1
    extra = draw(st.integers(0, max_nodes // 2))
    for _ in range(extra):
        options = [u for u in range(n_int) if child_count[u] < arity_cap]
        if not options:
            break
        host = draw(st.sampled_from(options))
        child_count[host] += 1
        client_hosts.append(host)
    for host in client_hosts:
        parents.append(host)
        deltas.append(draw(st.floats(0.5, 3.0, allow_nan=False)))
        requests.append(draw(st.integers(0, W)))
    tree = Tree(parents, deltas, requests)
    dmax = (
        draw(st.one_of(st.none(), st.floats(1.0, 15.0, allow_nan=False)))
        if with_dmax
        else None
    )
    return ProblemInstance(tree, W, dmax, Policy.SINGLE)


@pytest.fixture
def paper_example() -> ProblemInstance:
    return build_paper_example()


@pytest.fixture
def theorem6_counterexample() -> ProblemInstance:
    return build_theorem6_counterexample()
