"""Tests for local-search improvement (repro.algorithms.local_search)."""

from __future__ import annotations

import pytest

from repro import (
    Policy,
    improve_single,
    is_valid,
    local_placement,
    single_gen,
)
from repro.algorithms import exact_single
from repro.instances import random_tree


class TestImproveSingle:
    def test_improves_all_local_baseline(self, paper_example):
        base = local_placement(paper_example)
        better = improve_single(paper_example, base)
        assert is_valid(paper_example, better)
        assert better.n_replicas <= base.n_replicas
        # 4 self-serving clients consolidate: at most 2 needed here.
        assert better.n_replicas <= 2

    @pytest.mark.parametrize("seed", range(10))
    def test_never_invalid_never_worse(self, seed):
        inst = random_tree(
            5, 10, capacity=15, dmax=6.0 if seed % 2 else None,
            policy=Policy.SINGLE, seed=seed, max_arity=4,
        )
        base = single_gen(inst)
        out = improve_single(inst, base)
        assert is_valid(inst, out)
        assert out.n_replicas <= base.n_replicas

    @pytest.mark.parametrize("seed", range(6))
    def test_never_beats_exact(self, seed):
        inst = random_tree(
            4, 7, capacity=10, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=3,
        )
        out = improve_single(inst, local_placement(inst))
        assert out.n_replicas >= exact_single(inst).n_replicas

    def test_fixed_point_stability(self, paper_example):
        once = improve_single(paper_example, local_placement(paper_example))
        twice = improve_single(paper_example, once)
        assert twice.n_replicas == once.n_replicas

    def test_max_rounds_zero_is_identity_count(self, paper_example):
        base = local_placement(paper_example)
        out = improve_single(paper_example, base, max_rounds=0)
        assert out.n_replicas == base.n_replicas
