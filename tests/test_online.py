"""Online simulation mode and the repair-vs-resolve report."""

from __future__ import annotations

from repro import Policy
from repro.analysis import online_report, render_online_table
from repro.instances import random_tree
from repro.simulate import run_online


class TestRunOnline:
    def test_multiple_backend_full_parity(self):
        inst = random_tree(10, 20, capacity=6, dmax=None, seed=3).with_policy(
            Policy.MULTIPLE
        )
        engine, result = run_online(
            inst, steps=12, seed=1, p_fail=0.1, p_capacity=0.05
        )
        assert result.n_steps == 12
        assert result.solver == "multiple-nod-dp"
        for step in result.steps:
            if step.ok and step.mode == "incremental":
                assert step.cost_matches is True
        assert result.cost_match_rate == 1.0
        assert engine.placement is not None or result.n_ok < result.n_steps

    def test_compare_full_off_skips_cold_solves(self):
        inst = random_tree(8, 16, capacity=8, dmax=None, seed=2)
        _engine, result = run_online(inst, steps=5, seed=0, compare_full=False)
        assert all(s.cost_full is None for s in result.steps)
        assert all(s.resolve_s == 0.0 for s in result.steps)
        assert result.cost_match_rate == 1.0  # vacuous, no comparisons

    def test_explicit_trace_is_honoured(self):
        from repro.dynamic import DemandEvent

        inst = random_tree(8, 16, capacity=8, dmax=None, seed=2)
        c = sorted(inst.tree.clients)[0]
        _engine, result = run_online(
            inst, trace=[[DemandEvent(c, 1)], [DemandEvent(c, 2)]]
        )
        assert result.n_steps == 2
        assert f"demand[{c}]=1" in result.steps[0].events

    def test_summary_mentions_success_and_speedup(self):
        inst = random_tree(8, 16, capacity=8, dmax=None, seed=4)
        _engine, result = run_online(inst, steps=4, seed=1)
        text = result.summary()
        assert "repairs ok" in text and "speedup" in text


class TestOnlineReport:
    def test_report_contains_headline_sections(self):
        inst = random_tree(10, 20, capacity=6, dmax=None, seed=5).with_policy(
            Policy.MULTIPLE
        )
        _engine, result = run_online(inst, steps=8, seed=2, p_fail=0.2)
        text = online_report(result)
        assert "Online repair vs full re-solve" in text
        assert "cost parity" in text
        assert "repair success rate" in text
        assert "speedup" in text

    def test_table_truncates_at_limit(self):
        inst = random_tree(8, 16, capacity=8, dmax=None, seed=6)
        _engine, result = run_online(inst, steps=10, seed=3)
        table = render_online_table(result.steps, limit=4)
        assert "... 6 more steps" in table

    def test_fallback_reason_surfaces_for_dmax(self):
        inst = random_tree(8, 16, capacity=8, dmax=6.0, seed=2)
        _engine, result = run_online(inst, steps=3, seed=1)
        text = online_report(result)
        assert "distance constraint" in text
