"""Trace-driven replay: traces, tenants, runner, report, CLI knobs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import render_replay_table, replay_report
from repro.cli import main
from repro.core.policies import Policy
from repro.dynamic import (
    CapacityEvent,
    DemandEvent,
    FailureEvent,
    apply_event,
    apply_events_batch,
    random_event_trace,
)
from repro.core.errors import InvalidInstanceError
from repro.instances import (
    build_isp_mesh,
    dump_instance,
    isp_mesh,
    make_instance,
    random_tree,
)
from repro.replay import (
    TRACES,
    make_trace,
    run_replay,
    tenant_instance,
    tenant_instances,
    trace_names,
)
from repro.scenarios import sampled_violations
from repro.service import PlacementService, SolveRequest
from repro.service.fingerprint import combine_fingerprint, request_fingerprint


@pytest.fixture
def small_mesh():
    return isp_mesh(60, capacity=300, dmax=None, seed=5)


class TestTraces:
    @pytest.mark.parametrize("name", sorted(TRACES))
    def test_each_trace_deterministic_per_seed(self, name):
        a = make_trace(name, n_clients=40, horizon=12, seed=7)
        b = make_trace(name, n_clients=40, horizon=12, seed=7)
        assert np.array_equal(a.modulation, b.modulation)
        c = make_trace(name, n_clients=40, horizon=12, seed=8)
        if name != "stationary":
            assert not np.array_equal(a.modulation, c.modulation)

    @pytest.mark.parametrize("name", sorted(TRACES))
    def test_modulation_nonnegative(self, name):
        t = make_trace(name, n_clients=50, horizon=30, seed=3)
        assert t.modulation.shape == (30, 50)
        assert (t.modulation >= 0).all()

    def test_composition_multiplies(self):
        d = make_trace("diurnal", n_clients=20, horizon=8, seed=1)
        s = make_trace("stationary", n_clients=20, horizon=8, seed=1)
        ds = make_trace("diurnal+stationary", n_clients=20, horizon=8, seed=1)
        # stationary is all-ones, so composing it on the right changes
        # nothing; diurnal is component 0 in both specs (same rng seq).
        assert np.array_equal(ds.modulation, d.modulation * s.modulation)

    def test_unknown_and_malformed_specs(self):
        with pytest.raises(ValueError, match="unknown trace"):
            make_trace("nope", n_clients=5, horizon=5)
        with pytest.raises(ValueError, match="malformed|unknown"):
            make_trace("diurnal++flash", n_clients=5, horizon=5)
        with pytest.raises(ValueError):
            make_trace("diurnal", n_clients=0, horizon=5)
        with pytest.raises(ValueError):
            make_trace("diurnal", n_clients=5, horizon=0)

    def test_bad_component_params(self):
        for params in (
            {"diurnal": {"amplitude": 2.0}},
            {"flash": {"hot_fraction": 0.0}},
            {"flash": {"magnitude": 0.5}},
            {"zipf": {"exponent": -1.0}},
        ):
            name = next(iter(params))
            with pytest.raises(ValueError):
                make_trace(name, n_clients=10, horizon=5, params=params)

    def test_levels_capped_at_capacity(self):
        t = make_trace("flash", n_clients=30, horizon=10, seed=2)
        base = np.full(30, 90, dtype=np.int64)
        levels = t.levels(base, capacity=100)
        assert levels.min() >= 0
        assert levels.max() <= 100

    def test_trace_names_sorted(self):
        assert trace_names() == sorted(TRACES)


class TestMeshGenerator:
    def test_deterministic_per_seed(self):
        g1, d1 = build_isp_mesh(40, 9)
        g2, d2 = build_isp_mesh(40, 9)
        assert d1 == d2
        assert g1.n == g2.n == 40
        inst1 = isp_mesh(40, capacity=200, seed=9)
        inst2 = isp_mesh(40, capacity=200, seed=9)
        assert inst1 == inst2

    def test_seed_changes_instance(self):
        assert isp_mesh(40, capacity=200, seed=1) != isp_mesh(
            40, capacity=200, seed=2
        )

    def test_registered_in_generators(self):
        inst = make_instance(
            {"kind": "isp_mesh", "n_pops": 30, "capacity": 150, "seed": 4}
        )
        assert len(inst.tree) > 30  # client stubs added
        assert inst.policy is Policy.SINGLE

    def test_validation(self):
        with pytest.raises(ValueError):
            build_isp_mesh(2, 0)
        with pytest.raises(ValueError):
            isp_mesh(30, capacity=0)
        with pytest.raises(ValueError):
            # demand range must fit under W
            isp_mesh(30, capacity=100, demand_range=(20, 120))


class TestBatchedEvents:
    @pytest.mark.parametrize("seed", range(3))
    def test_parity_with_sequential_fold(self, seed):
        inst = random_tree(
            8, 24, capacity=40, policy=Policy.MULTIPLE, seed=seed
        )
        for batch in random_event_trace(
            inst, steps=4, events_per_step=10, seed=seed,
            p_fail=0.2, p_capacity=0.1,
        ):
            seq_inst, seq_failed = inst, set()
            for e in batch:
                seq_inst, nf = apply_event(seq_inst, e)
                if nf is not None:
                    seq_failed.add(nf)
            bat_inst, bat_failed = apply_events_batch(inst, batch)
            assert seq_inst == bat_inst
            assert seq_failed == set(bat_failed)

    def test_rejects_whole_batch(self, small_mesh):
        client = next(iter(small_mesh.tree.clients))
        batch = [DemandEvent(client, 5), DemandEvent(client, -1)]
        with pytest.raises(InvalidInstanceError):
            apply_events_batch(small_mesh, batch)
        batch = [CapacityEvent(0)]
        with pytest.raises(InvalidInstanceError):
            apply_events_batch(small_mesh, batch)
        with pytest.raises(InvalidInstanceError):
            apply_events_batch(small_mesh, [FailureEvent(10**6)])

    def test_last_demand_wins(self, small_mesh):
        client = next(iter(small_mesh.tree.clients))
        out, _ = apply_events_batch(
            small_mesh, [DemandEvent(client, 3), DemandEvent(client, 9)]
        )
        assert out.tree.requests(client) == 9

    def test_noop_batch_returns_same_instance(self, small_mesh):
        out, failed = apply_events_batch(small_mesh, [])
        assert out is small_mesh
        assert failed == frozenset()


class TestTenants:
    def test_tenant_zero_is_base(self, small_mesh):
        assert tenant_instance(small_mesh, 0) is small_mesh

    def test_deterministic_and_distinct(self, small_mesh):
        a = tenant_instance(small_mesh, 2, seed=4)
        b = tenant_instance(small_mesh, 2, seed=4)
        assert a == b
        c = tenant_instance(small_mesh, 3, seed=4)
        assert a != c

    def test_levels_capped(self, small_mesh):
        for inst in tenant_instances(small_mesh, 4, seed=1):
            tree = inst.tree
            assert all(
                tree.requests(c) <= inst.capacity for c in tree.clients
            )

    def test_validation(self, small_mesh):
        with pytest.raises(ValueError):
            tenant_instance(small_mesh, -1)
        with pytest.raises(ValueError):
            tenant_instances(small_mesh, 0)


class TestTenantCacheIsolation:
    def test_tenant_partitions_fingerprint(self, small_mesh):
        base = request_fingerprint(small_mesh)
        assert request_fingerprint(small_mesh, tenant="a") != base
        assert request_fingerprint(small_mesh, tenant="a") != request_fingerprint(
            small_mesh, tenant="b"
        )
        # tenant=None keys exactly as before the field existed
        assert combine_fingerprint("fp", "s", 1, None) == combine_fingerprint(
            "fp", "s", 1
        )

    def test_cache_never_crosses_tenants(self, small_mesh):
        with PlacementService(cache_size=32) as svc:
            a1 = svc.solve_instance(small_mesh, tenant="tenant-a")
            a2 = svc.solve_instance(small_mesh, tenant="tenant-a")
            b1 = svc.solve_instance(small_mesh, tenant="tenant-b")
            assert not a1.diagnostics.cache_hit
            assert a2.diagnostics.cache_hit  # same tenant: hit
            assert not b1.diagnostics.cache_hit  # other tenant: never
            assert a1.n_replicas == b1.n_replicas

    def test_wire_roundtrip_and_compat(self, small_mesh):
        req = SolveRequest(instance=small_mesh, tenant="t-1")
        back = SolveRequest.from_wire(req.to_wire())
        assert back.tenant == "t-1"
        # Pre-tenant envelopes (no field at all) still decode.
        wire = SolveRequest(instance=small_mesh).to_wire()
        assert "tenant" not in wire
        assert SolveRequest.from_wire(wire).tenant is None
        wire["tenant"] = 7
        from repro.service.schema import WireFormatError

        with pytest.raises(WireFormatError):
            SolveRequest.from_wire(wire)


class TestSampledInvariants:
    def test_clean_placement_passes(self, small_mesh):
        from repro.algorithms import single_gen

        placement = single_gen(small_mesh)
        assert sampled_violations(small_mesh, placement, seed=1) == []

    def test_detects_overload_and_foreign_server(self, small_mesh):
        from repro.core.placement import Placement

        clients = list(small_mesh.tree.clients)
        c = clients[0]
        bad = Placement(
            replicas={0},
            assignments={(c, 0): small_mesh.capacity + 5},
        )
        out = sampled_violations(small_mesh, bad, seed=0, max_clients=4)
        kinds = {v.invariant for v in out}
        assert "capacity" in kinds
        # sampled or not, the overfull client is globally visible via
        # loads; completeness for unsampled clients may be missed — the
        # documented trade-off.

    def test_sampling_is_deterministic(self, small_mesh):
        from repro.algorithms import single_gen

        placement = single_gen(small_mesh)
        a = sampled_violations(small_mesh, placement, seed=3, max_clients=8)
        b = sampled_violations(small_mesh, placement, seed=3, max_clients=8)
        assert a == b

    def test_bad_max_clients(self, small_mesh):
        from repro.algorithms import single_gen

        with pytest.raises(ValueError):
            sampled_violations(
                small_mesh, single_gen(small_mesh), max_clients=0
            )


class TestRunReplay:
    def test_engine_mode_deterministic_fingerprint(self, small_mesh):
        a = run_replay(small_mesh, "diurnal+flash", horizon=10, seed=2,
                       check_every=3, sample=32)
        b = run_replay(small_mesh, "diurnal+flash", horizon=10, seed=2,
                       check_every=3, sample=32)
        assert a.fingerprint() == b.fingerprint()
        assert len(a.rows) == 10
        assert a.violations == []
        assert a.mode == "engine"

    def test_seed_changes_fingerprint(self, small_mesh):
        a = run_replay(small_mesh, "diurnal", horizon=8, seed=1, sample=32)
        b = run_replay(small_mesh, "diurnal", horizon=8, seed=2, sample=32)
        assert a.fingerprint() != b.fingerprint()

    def test_trace_changes_fingerprint(self, small_mesh):
        a = run_replay(small_mesh, "diurnal", horizon=8, seed=1, sample=32)
        b = run_replay(small_mesh, "zipf", horizon=8, seed=1, sample=32)
        assert a.fingerprint() != b.fingerprint()

    def test_stationary_trace_has_no_changes(self, small_mesh):
        res = run_replay(small_mesh, "stationary", horizon=6, seed=0,
                         sample=32)
        assert all(r.n_changes == 0 for r in res.rows)
        assert all(r.mode == "steady" for r in res.rows)
        costs = {r.cost for r in res.rows}
        assert len(costs) == 1

    def test_service_mode_multi_tenant(self, small_mesh):
        res = run_replay(small_mesh, "diurnal", horizon=26, seed=3,
                         tenants=2, check_every=13, sample=32)
        assert res.mode == "service"
        assert len(res.rows) == 26 * 2
        assert res.violations == []
        # diurnal has period 24: ticks 24-25 revisit ticks 0-1 levels,
        # so each tenant takes 2 cache hits at the tail.
        assert res.cache_hits == 4

    def test_validation_errors(self, small_mesh):
        with pytest.raises(ValueError):
            run_replay(small_mesh, "bogus", horizon=5)
        with pytest.raises(ValueError):
            run_replay(small_mesh, "diurnal", horizon=0)
        with pytest.raises(ValueError):
            run_replay(small_mesh, "diurnal", horizon=5, rate_scale=0.0)
        with pytest.raises(ValueError):
            run_replay(small_mesh, "diurnal", horizon=5, tenants=0)
        with pytest.raises(ValueError):
            run_replay(small_mesh, "diurnal", horizon=5, check_every=-1)
        with pytest.raises(ValueError):
            run_replay(small_mesh, "diurnal", horizon=5, sample=0)

    def test_report_shape(self, small_mesh):
        res = run_replay(small_mesh, "diurnal+flash", horizon=8, seed=5,
                         sample=32)
        rep = replay_report(res)
        assert rep["schema"] == 1
        assert rep["run"]["fingerprint"] == res.fingerprint()
        assert rep["summary"]["ticks"] == 8
        assert rep["summary"]["invariant_violations"] == 0
        assert len(rep["series"]) == 8
        json.dumps(rep)  # must be JSON-able
        table = render_replay_table(res, limit=4)
        assert "more ticks" in table
        assert table.count("\n") == 5  # header + 4 rows + truncation


class TestReplayCli:
    @pytest.fixture
    def mesh_file(self, tmp_path):
        path = str(tmp_path / "mesh.json")
        dump_instance(isp_mesh(60, capacity=300, seed=5), path)
        return path

    def test_replay_smoke_and_json(self, mesh_file, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        rc = main([
            "simulate", mesh_file, "--replay", "--quick", "--json", out,
        ])
        assert rc == 0
        with open(out, encoding="utf-8") as fh:
            rep = json.load(fh)
        assert rep["summary"]["invariant_violations"] == 0
        assert rep["run"]["trace"] == "diurnal+flash"
        assert capsys.readouterr().err.count("fingerprint") == 1

    def test_unknown_trace_rc2(self, mesh_file, capsys):
        rc = main(["simulate", mesh_file, "--replay", "--trace", "wat"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "unknown trace" in err
        assert err.count("\n") == 1

    def test_replay_with_placement_rc2(self, mesh_file, capsys):
        rc = main(["simulate", mesh_file, mesh_file, "--replay"])
        assert rc == 2
        assert "drop the placement" in capsys.readouterr().err

    def test_replay_and_online_conflict(self, mesh_file, capsys):
        rc = main(["simulate", mesh_file, "--replay", "--online"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["--tenants", "0"],
        ["--tenants", "-3"],
        ["--rate-scale", "0"],
        ["--rate-scale", "-1.5"],
        ["--rate-scale", "x"],
        ["--check-every", "-1"],
        ["--sample", "0"],
    ])
    def test_bad_knobs_rc2(self, mesh_file, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", mesh_file, "--replay"] + argv)
        assert exc.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_generate_mesh_kind(self, tmp_path, capsys):
        out = str(tmp_path / "m.json")
        rc = main([
            "generate", "--kind", "mesh", "--pops", "40",
            "--capacity", "200", "--seed", "2", "--out", out,
        ])
        assert rc == 0
        from repro.instances import load_instance

        inst = load_instance(out)
        assert inst == isp_mesh(40, capacity=200, seed=2)

    def test_generate_mesh_capacity_too_small_rc2(self, capsys):
        rc = main(["generate", "--kind", "mesh", "--capacity", "50"])
        assert rc == 2
        assert "exceeds capacity" in capsys.readouterr().err