"""Tests for the exact solvers and feasibility oracles."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleInstanceError,
    Placement,
    Policy,
    ProblemInstance,
    TreeBuilder,
    is_valid,
)
from repro.algorithms import (
    exact_multiple,
    exact_optimal,
    exact_single,
    multiple_assignment,
    single_assignment,
)
from repro.algorithms.feasibility import eligible_map
from repro.instances import random_binary_tree, random_tree


def fan(requests, W, dmax=None, policy=Policy.SINGLE):
    b = TreeBuilder()
    r = b.add_root()
    for req in requests:
        b.add(r, delta=1.0, requests=req)
    return ProblemInstance(b.build(), W, dmax, policy)


class TestEligibleMap:
    def test_basic(self, paper_example):
        elig = eligible_map(paper_example, [0, 1])
        assert elig is not None
        assert elig[3] == [1, 0]

    def test_none_when_client_uncovered(self, paper_example):
        # Client 5 hangs under n2; replica set {1} cannot reach it.
        assert eligible_map(paper_example, [1]) is None

    def test_distance_filters(self, paper_example):
        # c4 is at distance 3 from root; with dmax=4 root is eligible.
        elig = eligible_map(paper_example, [0])
        assert elig is not None and 0 in elig[4]


class TestSingleAssignment:
    def test_feasible_fan(self):
        inst = fan([4, 3, 2], 9)
        a = single_assignment(inst, [0])
        assert a == {(1, 0): 4, (2, 0): 3, (3, 0): 2}

    def test_infeasible_capacity(self):
        inst = fan([4, 3, 2], 8)
        assert single_assignment(inst, [0]) is None

    def test_needs_backtracking(self):
        # Items 3,3,2,2 with two servers of W=5: must pair 3+2 twice;
        # a greedy 3+... into one server still works, but 2+2 first
        # would strand the 3s — the search must find the pairing.
        inst = fan([3, 3, 2, 2], 5)
        a = single_assignment(inst, [0, 1])
        # server 1 is a client node: only eligible for itself -> the
        # fan layout makes node 1 a client; use two ancestors instead.
        # (Handled below with a proper two-server topology.)
        assert a is None or sum(a.values()) == 10

    def test_two_level_pairing(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        for req in (3, 3, 2, 2):
            b.add(n, delta=1.0, requests=req)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        a = single_assignment(inst, [r, n])
        assert a is not None
        loads = {}
        for (c, s), amt in a.items():
            loads[s] = loads.get(s, 0) + amt
        assert loads == {r: 5, n: 5}

    def test_oversized_item(self):
        inst = fan([7], 5)
        assert single_assignment(inst, [0]) is None


class TestMultipleAssignment:
    def test_split_enables_feasibility(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        for req in (3, 3):
            b.add(n, delta=1.0, requests=req)
        inst = ProblemInstance(b.build(), 4, None, Policy.MULTIPLE)
        # Single cannot pack 3+3 into two servers of 4 without splitting
        # ... actually it can (one each); shrink to a single demand of 6.
        a = multiple_assignment(inst, [r, n])
        assert a is not None

    def test_split_required(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        c = b.add(n, delta=1.0, requests=6)
        inst = ProblemInstance(b.build(), 4, None, Policy.MULTIPLE)
        assert single_assignment(inst, [r, n]) is None
        a = multiple_assignment(inst, [r, n])
        assert a is not None
        assert a[(c, r)] + a[(c, n)] == 6

    def test_infeasible_total(self):
        inst = fan([4, 4], 5, policy=Policy.MULTIPLE)
        assert multiple_assignment(inst, [0]) is None

    def test_empty_demand(self):
        inst = fan([0, 0], 5, policy=Policy.MULTIPLE)
        assert multiple_assignment(inst, [0]) == {}

    def test_respects_distance(self):
        b = TreeBuilder()
        r = b.add_root()
        c = b.add(r, delta=5.0, requests=3)
        inst = ProblemInstance(b.build(), 4, 2.0, Policy.MULTIPLE)
        assert multiple_assignment(inst, [r]) is None
        assert multiple_assignment(inst, [c]) is not None


class TestExactSingle:
    def test_star_bin_packing(self):
        # 3,3,3,3 with W=6 -> 2 servers... on a star only the root is a
        # shared ancestor; clients self-serve otherwise. Optimal: root
        # takes 6, two clients self-serve? That's 3 replicas; or root +
        # one client = 3+3 at root, 3 self, 3 self -> 3. Exact must find 3.
        inst = fan([3, 3, 3, 3], 6)
        assert exact_single(inst).n_replicas == 3

    def test_two_level_optimal(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        for req in (3, 3, 2, 2):
            b.add(n, delta=1.0, requests=req)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        p = exact_single(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2

    def test_infeasible_raises(self):
        inst = fan([9], 5)
        with pytest.raises(InfeasibleInstanceError):
            exact_single(inst)

    def test_empty_demand(self):
        inst = fan([0, 0], 5)
        assert exact_single(inst).n_replicas == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_never_worse_than_heuristics(self, seed):
        from repro import single_gen

        inst = random_tree(
            4, 7, capacity=10, dmax=5.0, policy=Policy.SINGLE,
            seed=seed, max_arity=3,
        )
        assert exact_single(inst).n_replicas <= single_gen(inst).n_replicas


class TestExactMultiple:
    def test_matches_volume_bound_on_star(self):
        inst = fan([3, 3, 3, 3], 6, policy=Policy.MULTIPLE)
        # Multiple can split: root 6 + client-splits... servers must be
        # ancestors; root takes 6, remaining 6 on two self-serving
        # clients? Splitting lets 3+3 go to root, the other two clients
        # self-serve: 3 replicas. But splitting a client across root and
        # itself lets... capacity total must be >= 12 -> >= 2 replicas;
        # only root is shared, so root + k clients gives 6 + 3k >= 12
        # -> k >= 2 -> 3 replicas.
        assert exact_multiple(inst).n_replicas == 3

    def test_multiple_never_exceeds_single(self):
        for seed in range(8):
            inst = random_binary_tree(
                4, 5, capacity=7, dmax=4.0, policy=Policy.MULTIPLE,
                seed=seed, request_range=(1, 7),
            )
            ms = exact_multiple(inst).n_replicas
            ss = exact_single(inst.with_policy(Policy.SINGLE)).n_replicas
            assert ms <= ss

    def test_infeasible_raises(self):
        # dmax=0 and a demand above W: nothing can serve it.
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=9)
        inst = ProblemInstance(b.build(), 5, 0.0, Policy.MULTIPLE)
        with pytest.raises(InfeasibleInstanceError):
            exact_multiple(inst)

    def test_empty_demand(self):
        inst = fan([0], 5, policy=Policy.MULTIPLE)
        assert exact_multiple(inst).n_replicas == 0


class TestDispatch:
    def test_exact_optimal_dispatches(self, paper_example):
        s = exact_optimal(paper_example)
        assert is_valid(paper_example, s)
        m = exact_optimal(paper_example.with_policy(Policy.MULTIPLE))
        assert m.n_replicas <= s.n_replicas
