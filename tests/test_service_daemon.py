"""End-to-end HTTP tests for the `repro serve` daemon."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import check_placement
from repro.instances import random_tree
from repro.service import SolveRequest, SolveResponse, make_server


@pytest.fixture(scope="module")
def server():
    srv = make_server("127.0.0.1", 0, cache_size=16)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        srv.service.close()
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


@pytest.fixture
def inst():
    return random_tree(6, 12, capacity=15, dmax=5.0, seed=7)


class TestHealthz:
    def test_ok_with_stats(self, base_url):
        data = _get(base_url + "/v1/healthz")
        assert data["status"] == "ok"
        assert "version" in data
        assert "requests" in data["stats"]
        assert "latency_ms" in data["stats"]


class TestSolvers:
    def test_lists_registry_with_metadata(self, base_url):
        data = _get(base_url + "/v1/solvers")
        names = {s["name"] for s in data["solvers"]}
        assert {"single-gen", "exact", "multiple-bin"} <= names
        for s in data["solvers"]:
            assert {"name", "exact", "policy", "in_auto_chain"} <= set(s)


class TestSolve:
    def test_solve_returns_checker_valid_placement(self, base_url, inst):
        wire = _post(
            base_url + "/v1/solve", SolveRequest(instance=inst).to_wire()
        )
        resp = SolveResponse.from_wire(wire)
        assert resp.ok
        check_placement(inst, resp.placement)
        assert wire["schema"] == 1

    def test_repeat_request_is_cache_hit(self, base_url):
        inst = random_tree(5, 10, capacity=15, dmax=5.0, seed=123)
        payload = SolveRequest(instance=inst).to_wire()
        first = SolveResponse.from_wire(_post(base_url + "/v1/solve", payload))
        second = SolveResponse.from_wire(_post(base_url + "/v1/solve", payload))
        assert not first.diagnostics.cache_hit
        assert second.diagnostics.cache_hit
        assert second.placement == first.placement

    def test_explicit_solver_and_request_id(self, base_url, inst):
        payload = SolveRequest(
            instance=inst, solver="local", request_id="req-42"
        ).to_wire()
        resp = SolveResponse.from_wire(_post(base_url + "/v1/solve", payload))
        assert resp.solver == "local"
        assert resp.request_id == "req-42"

    def test_unknown_solver_is_http_400(self, base_url, inst):
        payload = SolveRequest(instance=inst, solver="nope").to_wire()
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base_url + "/v1/solve", payload)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"]["code"] == "unknown_solver"

    def test_solver_level_failures_are_http_200(self, base_url):
        # Infeasible is a solve outcome, not a caller mistake.
        bad = random_tree(
            3, 4, capacity=2, dmax=None, request_range=(5, 9), seed=1
        )
        wire = _post(
            base_url + "/v1/solve", SolveRequest(instance=bad).to_wire()
        )
        resp = SolveResponse.from_wire(wire)
        assert resp.status == "infeasible"
        assert resp.error.code == "infeasible"

    def test_malformed_json_is_http_400(self, base_url):
        req = urllib.request.Request(
            base_url + "/v1/solve", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_request"

    def test_wrong_schema_version_is_http_400(self, base_url, inst):
        payload = SolveRequest(instance=inst).to_wire()
        payload["schema"] = 999
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base_url + "/v1/solve", payload)
        assert err.value.code == 400


class TestRouting:
    def test_unknown_path_is_json_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base_url + "/v2/frobnicate")
        assert err.value.code == 404
        assert "error" in json.loads(err.value.read())

    def test_post_to_get_endpoint_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base_url + "/v1/healthz", {})
        assert err.value.code == 404

    def test_post_404_does_not_desync_keep_alive(self, base_url, inst):
        # One persistent connection: a bodied POST to a bad path, then
        # a valid solve.  The unread body must not be parsed as the
        # next request line.
        import http.client
        from urllib.parse import urlparse

        u = urlparse(base_url)
        conn = http.client.HTTPConnection(u.hostname, u.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/nope", body=json.dumps({"x": 1}),
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().read() and True  # drain the 404
            conn.request(
                "POST", "/v1/solve",
                body=json.dumps(SolveRequest(instance=inst).to_wire()),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 200
            assert SolveResponse.from_wire(body).ok
        finally:
            conn.close()

    def test_healthz_reflects_traffic(self, base_url, inst):
        _post(base_url + "/v1/solve", SolveRequest(instance=inst).to_wire())
        stats = _get(base_url + "/v1/healthz")["stats"]
        assert stats["requests"] >= 1
        assert stats["by_status"].get("ok", 0) >= 1
