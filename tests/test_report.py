"""Tests for the reproduction-report generator (repro.analysis.report)."""

from __future__ import annotations

from repro.analysis import (
    full_report,
    optimality_report,
    reduction_report,
    service_report,
    tight_family_report,
)
from repro.cli import main


class TestSections:
    def test_tight_family_tables(self):
        out = tight_family_report(max_m=3, arity=2, max_k=4)
        assert "Theorems 3 & 4" in out
        # m=3, Δ=2: 9 vs 4.
        assert "| 3 | 9 | 4 |" in out
        # K=4: 8 vs 5.
        assert "| 4 | 8 | 5 |" in out

    def test_optimality_sweep(self):
        out = optimality_report(trials=4)
        assert "Theorem 6" in out
        assert out.count("/4 |") == 4  # four regimes

    def test_reductions_consistent(self):
        out = reduction_report()
        assert "MISMATCH" not in out
        assert out.count("consistent") == 3

    def test_full_report_assembles(self):
        out = full_report()
        for marker in ("Reproduction report", "Theorem 6", "I2", "I4", "I6"):
            assert marker in out

    def test_service_report_renders_live_stats(self):
        from repro.instances import random_tree
        from repro.service import PlacementService

        with PlacementService(cache_size=4) as svc:
            inst = random_tree(4, 8, capacity=12, dmax=4.0, seed=5)
            svc.solve_instance(inst)
            svc.solve_instance(inst)  # cache hit
            out = service_report(svc.stats())
        assert "Placement service" in out
        assert "2 requests" in out
        assert "1/2 hits (50%)" in out
        assert "latency p95" in out

    def test_service_report_empty(self):
        from repro.service import PlacementService

        with PlacementService() as svc:
            out = service_report(svc.stats())
        assert "no requests served" in out


class TestCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path):
        out = str(tmp_path / "report.md")
        assert main(["report", "--out", out]) == 0
        assert "Theorem 6" in open(out).read()
