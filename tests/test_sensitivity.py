"""Tests for parameter sweeps (repro.analysis.sensitivity)."""

from __future__ import annotations

import pytest

from repro import Policy
from repro.algorithms import exact_single, single_gen
from repro.analysis import (
    SweepPoint,
    capacity_sweep,
    dmax_sweep,
    knee,
    render_sweep,
)
from repro.instances import cdn_hierarchy, random_tree


@pytest.fixture(scope="module")
def inst():
    return random_tree(
        4, 7, capacity=10, dmax=6.0, policy=Policy.SINGLE,
        seed=7, max_arity=3, request_range=(1, 10),
    )


class TestDmaxSweep:
    def test_exact_curve_monotone(self, inst):
        points = dmax_sweep(
            inst, exact_single, [2.0, 4.0, 6.0, 9.0, None]
        )
        counts = [p.replicas for p in points]
        assert counts == sorted(counts, reverse=True)
        assert all(p.valid for p in points)

    def test_nod_encoded_as_inf(self, inst):
        points = dmax_sweep(inst, exact_single, [None])
        assert points[0].value == float("inf")

    def test_heuristic_points_valid(self, inst):
        points = dmax_sweep(inst, single_gen, [3.0, 6.0, None])
        assert all(p.valid for p in points)

    def test_tight_sla_costs_more(self, inst):
        points = dmax_sweep(inst, exact_single, [0.0, None])
        assert points[0].replicas >= points[-1].replicas


class TestCapacitySweep:
    def test_exact_curve_monotone(self, inst):
        points = capacity_sweep(inst, exact_single, [10, 15, 25, 60])
        counts = [p.replicas for p in points]
        assert counts == sorted(counts, reverse=True)

    def test_values_recorded(self, inst):
        points = capacity_sweep(inst, exact_single, [10, 20])
        assert [p.value for p in points] == [10.0, 20.0]


class TestKnee:
    def test_empty(self):
        assert knee([]) is None

    def test_finds_flattening_point(self):
        pts = [
            SweepPoint(1.0, 9, True),
            SweepPoint(2.0, 5, True),
            SweepPoint(3.0, 3, True),
            SweepPoint(4.0, 3, True),
        ]
        k = knee(pts)
        assert k is not None and k.value == 3.0

    def test_slack_moves_knee_earlier(self):
        pts = [
            SweepPoint(1.0, 9, True),
            SweepPoint(2.0, 4, True),
            SweepPoint(3.0, 3, True),
        ]
        assert knee(pts).value == 3.0
        assert knee(pts, slack=0.5).value == 2.0


class TestRender:
    def test_table_shape(self, inst):
        points = dmax_sweep(inst, single_gen, [3.0, None])
        out = render_sweep(points)
        assert "NoD" in out and "#" in out
        assert len(out.splitlines()) == 3

    def test_empty(self):
        assert "empty" in render_sweep([])


class TestRealisticCurve:
    def test_cdn_provisioning_curve(self):
        inst = cdn_hierarchy(capacity=300, seed=3)
        points = dmax_sweep(inst, single_gen, [3.0, 6.0, 10.0, None])
        # Heuristic curve: generally decreasing, last point minimal.
        assert points[-1].replicas == min(p.replicas for p in points)
        assert all(p.valid for p in points)
