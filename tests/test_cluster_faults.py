"""Fault injection: real subprocess workers, real ``kill -9``.

The contract under test (the tentpole acceptance criterion): a SIGKILL
of any single worker *while a concurrent loadtest is in flight* is
invisible to clients — the router retries against ring successors, so
the report ends with **zero failed requests** — and the killed worker
restarted over its own ``--data-dir`` comes back with its result cache
recovered from the WAL/snapshot state it logged before dying.

These tests spawn real ``repro serve`` child processes (via
:class:`~repro.cluster.workers.ClusterManager`) and are therefore the
slowest in the suite; everything timing-independent lives in
``tests/test_cluster_router.py``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.cluster import (
    HashRing,
    collect_cache_entries,
    make_router,
    plan_warmup,
    request_mix,
    run_loadtest,
    warm_worker,
)
from repro.cluster.workers import ClusterManager
from repro.service import SolveRequest
from repro.service.fingerprint import instance_fingerprint

N_WORKERS = 3


@pytest.fixture()
def cluster(tmp_path):
    """3 subprocess workers + an in-thread router over their data-dirs."""
    manager = ClusterManager(
        N_WORKERS, str(tmp_path / "state"), snapshot_interval=8
    )
    router = make_router(
        "127.0.0.1",
        0,
        workers=manager.urls(),
        data_dirs=manager.data_dirs(),
        down_after=1,           # eject on the first failure: fast failover
        backoff_base=0.01,
        backoff_cap=0.05,
        probe_interval=0.2,
        probe_timeout=2.0,
    )
    thread = threading.Thread(target=router.serve_forever, daemon=True)
    thread.start()
    host, port = router.server_address[:2]
    try:
        yield manager, router, f"http://{host}:{port}"
    finally:
        router.shutdown()
        router.server_close()
        manager.stop_all(graceful=False)


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


class TestKillDuringTraffic:
    def test_kill9_mid_loadtest_loses_zero_requests(self, cluster):
        manager, router, url = cluster
        report_holder = {}

        def _drive() -> None:
            report_holder["report"] = run_loadtest(
                url, n_requests=200, concurrency=8, seed=0, mix="quick"
            )

        driver = threading.Thread(target=_drive)
        driver.start()
        # Let traffic build, then SIGKILL the worker owning the hottest
        # fingerprint — the worst-case victim for the cache.  A 200-
        # request quick-mix run takes ~0.4 s against subprocess workers,
        # so 0.1 s lands the kill squarely mid-stream.
        time.sleep(0.1)
        fps = [r.instance_fp for r in request_mix(0, 200, "quick")]
        hottest = max(set(fps), key=fps.count)
        victim = HashRing(manager.urls()).route(hottest)
        manager.worker(victim).kill9()
        driver.join(timeout=120)
        assert not driver.is_alive(), "loadtest hung after kill -9"
        report = report_holder["report"]
        assert report.failed == 0, (
            f"client saw {report.failed} failed requests after kill -9 of "
            f"{victim}: {report.to_dict()}"
        )
        assert report.ok == 200
        # Traffic really did reach more than the victim.
        assert len(report.per_worker) >= 2

    def test_restarted_worker_recovers_cache_from_data_dir(self, cluster):
        manager, router, url = cluster
        # Warm the cluster: every quick-mix instance solved and cached.
        report = run_loadtest(
            url, n_requests=40, concurrency=4, seed=0, mix="quick"
        )
        assert report.failed == 0
        victim = "worker-1"
        worker = manager.worker(victim)
        # Give the worker a moment to finish logging, then SIGKILL —
        # no flush, no snapshot.
        time.sleep(0.2)
        worker.kill9()
        assert not worker.alive
        worker.restart()
        assert worker.alive
        # Its durable cache survived: the data-dir offline fold sees the
        # same entries a recovering daemon replays.
        entries = collect_cache_entries(worker.data_dir)
        victim_owned = [
            e for e in entries
            if HashRing(manager.urls()).route(e["instance_fp"]) == victim
        ]
        if any(
            HashRing(manager.urls()).route(fp) == victim
            for fp in {r.instance_fp for r in request_mix(0, 40, "quick")}
        ):
            assert victim_owned, "victim served traffic but kept no cache"
        # And a solve against the restarted worker for a key it served
        # before the kill is answered from cache, not recomputed.
        for entry in victim_owned[:1]:
            fp = entry["instance_fp"]
            req = next(
                r for r in request_mix(0, 40, "quick") if r.instance_fp == fp
            )
            answer = _post(worker.base_url + "/v1/solve", req.wire)
            assert answer["status"] == "ok"
            assert answer["diagnostics"]["cache_hit"] is True


class TestRejoinWarmup:
    def test_prober_rejoin_warms_from_other_workers(self, cluster):
        manager, router, url = cluster
        report = run_loadtest(
            url, n_requests=60, concurrency=4, seed=0, mix="quick"
        )
        assert report.failed == 0
        victim = "worker-2"
        view = next(
            w for w in router.state.all_workers() if w.node_id == victim
        )
        worker = manager.worker(victim)
        worker.kill9()
        router.prober.probe(view)       # detect the death -> eject
        assert not view.alive
        # While the victim is gone its keys were served — and cached —
        # by the survivors.
        inst = request_mix(0, 60, "quick")[0]
        again = _post(url + "/v1/solve", inst.wire)
        assert again["status"] == "ok"
        worker.restart()
        router.prober.probe(view)       # detect the rebirth -> rejoin
        assert view.alive
        # Rejoin triggered the warm-up plan: entries other workers hold
        # for keys the ring routes back to the victim were pushed.
        ring = HashRing(manager.urls())
        planned = plan_warmup(victim, ring, manager.data_dirs())
        for entry in planned:
            assert ring.route(entry["instance_fp"]) == victim

    def test_warm_worker_pushes_planned_entries(self, cluster):
        manager, router, url = cluster
        report = run_loadtest(
            url, n_requests=60, concurrency=4, seed=3, mix="quick"
        )
        assert report.failed == 0
        # Plan a warm-up for worker-0 from the *other* workers' state
        # and push it; the worker acknowledges idempotently.
        ring = HashRing(manager.urls())
        target = "worker-0"
        entries = plan_warmup(target, ring, manager.data_dirs())
        pushed = warm_worker(manager.worker(target).base_url, entries)
        assert pushed == warm_worker(
            manager.worker(target).base_url, entries
        ) + pushed  # second push warms nothing new (all already present)


class TestDurableRouting:
    def test_fingerprint_routing_survives_worker_restart(self, cluster):
        manager, router, url = cluster
        from repro.instances import random_tree

        inst = random_tree(6, 12, capacity=15, dmax=5.0, seed=5)
        fp = instance_fingerprint(inst)
        owner = HashRing(manager.urls()).route(fp)
        wire = SolveRequest(instance=inst).to_wire()
        first = _post(url + "/v1/solve", wire)
        assert first["status"] == "ok"
        # Restart the owner (same port, same data-dir): the second solve
        # routes to the same worker and hits its recovered cache.
        manager.worker(owner).restart()
        second = _post(url + "/v1/solve", wire)
        assert second["status"] == "ok"
        assert second["diagnostics"]["cache_hit"] is True
        assert second["placement"] == first["placement"]
