"""The persistent benchmark harness: snapshots, baselines, regressions."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    bench_corpus,
    compare_snapshots,
    find_baseline,
    load_snapshot,
    render_bench_table,
    run_bench,
    snapshot_problems,
    write_snapshot,
)
from repro.cli import main
from repro.core.kernels import HAVE_NUMPY


@pytest.fixture(scope="module")
def smoke_snapshot():
    """One smoke-profile bench run shared by the module's tests."""
    return run_bench("smoke", repeats=1)


class TestCorpus:
    def test_profiles_are_pinned_and_deterministic(self):
        a = bench_corpus("quick")
        b = bench_corpus("quick")
        assert [(name, inst) for name, inst, _ in a] == [
            (name, inst) for name, inst, _ in b
        ]

    def test_quick_profile_has_the_220_node_flagship(self):
        corpus = {name: inst for name, inst, _ in bench_corpus("quick")}
        assert len(corpus["nod220-multi"].tree) == 220

    def test_full_profile_extends_quick(self):
        quick = {name for name, _i, _s in bench_corpus("quick")}
        full = {name for name, _i, _s in bench_corpus("full")}
        assert quick < full

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            bench_corpus("nope")


class TestRunBench:
    def test_snapshot_shape(self, smoke_snapshot):
        s = smoke_snapshot
        assert s["schema"] == 1
        assert s["profile"] == "smoke"
        assert s["calibration_s"] > 0
        assert s["entries"] and s["comparisons"]
        for e in s["entries"]:
            assert e["status"] == "ok"
            assert e["wall_s"] >= 0 and e["throughput_nps"] > 0
        assert s["flat_cache"]["compiles"] >= 1

    def test_flat_paths_identical_to_references(self, smoke_snapshot):
        solvers = {c["solver"] for c in smoke_snapshot["comparisons"]}
        assert solvers == {"multiple-nod-dp", "single-nod", "multiple-greedy"}
        assert all(c["identical"] for c in smoke_snapshot["comparisons"])
        assert all(c["speedup"] > 0 for c in smoke_snapshot["comparisons"])

    def test_render_table(self, smoke_snapshot):
        text = render_bench_table(smoke_snapshot)
        assert "multiple-nod-dp" in text
        assert "speedup" in text
        assert "flat-tree cache" in text
        assert "batch ips" in text

    def test_batch_throughput_entries(self, smoke_snapshot):
        batch = smoke_snapshot["batch_throughput"]
        assert len(batch) == 1
        b = batch[0]
        assert b["instance"] == "smoke-nod-multi"
        assert b["solver"] == "multiple-nod-dp"
        assert b["status"] == "ok"
        assert b["batch_size"] == 8
        assert b["identical"] is True
        assert b["numpy"] is HAVE_NUMPY
        assert b["sequential_ips"] > 0 and b["batched_ips"] > 0
        assert b["speedup"] == pytest.approx(
            b["sequential_s"] / b["batched_s"]
        )
        # smoke instances are too small to gate on a speedup floor.
        assert b["min_speedup"] is None


class TestSnapshotStore:
    def test_write_load_round_trip(self, smoke_snapshot, tmp_path):
        path = write_snapshot(smoke_snapshot, tmp_path, label="2026-01-01")
        assert path.name == "BENCH_2026-01-01.json"
        assert load_snapshot(path) == json.loads(path.read_text())
        assert load_snapshot(path)["profile"] == "smoke"

    def test_find_baseline_picks_latest_and_excludes(self, smoke_snapshot, tmp_path):
        old = write_snapshot(smoke_snapshot, tmp_path, label="2026-01-01")
        new = write_snapshot(smoke_snapshot, tmp_path, label="2026-02-01")
        assert find_baseline(tmp_path) == new
        assert find_baseline(tmp_path, exclude=new) == old
        assert find_baseline(tmp_path / "empty") is None

    def test_find_baseline_prefers_dates_over_other_labels(
        self, smoke_snapshot, tmp_path
    ):
        """A committed BENCH_baseline.json must not shadow dated
        snapshots, even though 'baseline' sorts after any digit."""
        write_snapshot(smoke_snapshot, tmp_path, label="baseline")
        dated = write_snapshot(smoke_snapshot, tmp_path, label="2026-02-01")
        assert find_baseline(tmp_path) == dated
        # With only non-date labels, fall back to lexicographic order.
        dated.unlink()
        named = write_snapshot(smoke_snapshot, tmp_path, label="candidate")
        assert find_baseline(tmp_path) == named


class TestCompare:
    def test_no_regression_against_itself(self, smoke_snapshot):
        lines, regressions = compare_snapshots(smoke_snapshot, smoke_snapshot)
        assert lines and not regressions

    def test_detects_synthetic_regression(self, smoke_snapshot):
        slow = json.loads(json.dumps(smoke_snapshot))
        for e in slow["entries"]:
            e["wall_s"] = e["wall_s"] * 10 + 0.05
        _lines, regressions = compare_snapshots(slow, smoke_snapshot, 25.0)
        assert regressions
        # A generous threshold swallows the same slowdown.
        _lines, regressions = compare_snapshots(slow, smoke_snapshot, 1e9)
        assert not regressions

    def test_calibration_normalises_hardware(self, smoke_snapshot):
        """2x slower machine + 2x slower solver = no regression."""
        base = json.loads(json.dumps(smoke_snapshot))
        for e in base["entries"]:
            e["wall_s"] += 0.01  # above the jitter floor
        slow = json.loads(json.dumps(base))
        slow["calibration_s"] *= 2
        for e in slow["entries"]:
            e["wall_s"] *= 2
        _lines, regressions = compare_snapshots(slow, base, 25.0)
        assert not regressions

    def test_missing_or_errored_solver_is_a_regression(self, smoke_snapshot):
        """The gate fails closed: a solver the baseline measured ok
        cannot satisfy the comparison by not running at all."""
        broken = json.loads(json.dumps(smoke_snapshot))
        victim = broken["entries"][0]
        victim["status"] = "error"
        victim["error"] = "RuntimeError: boom"
        _lines, regressions = compare_snapshots(broken, smoke_snapshot)
        assert any("missing or not ok" in r for r in regressions)
        del broken["entries"][0]
        _lines, regressions = compare_snapshots(broken, smoke_snapshot)
        assert any("missing or not ok" in r for r in regressions)

    def test_snapshot_problems_flags_errors_and_divergence(self, smoke_snapshot):
        assert snapshot_problems(smoke_snapshot) == []
        broken = json.loads(json.dumps(smoke_snapshot))
        broken["entries"][0]["status"] = "error"
        broken["entries"][0]["error"] = "RuntimeError: boom"
        broken["comparisons"][0]["identical"] = False
        problems = snapshot_problems(broken)
        assert len(problems) == 2
        assert any("errored" in p for p in problems)
        assert any("diverged" in p for p in problems)

    def test_snapshot_problems_gates_batch_entries(self, smoke_snapshot):
        broken = json.loads(json.dumps(smoke_snapshot))
        b = broken["batch_throughput"][0]
        b["identical"] = False
        problems = snapshot_problems(broken)
        assert any("batched solve_many" in p and "diverged" in p
                   for p in problems)
        b["identical"] = True
        b["min_speedup"] = 2.0
        b["speedup"] = 1.1
        problems = snapshot_problems(broken)
        assert any("below the 2.0x floor" in p for p in problems)
        b["status"] = "error"
        b["error"] = "RuntimeError: boom"
        problems = snapshot_problems(broken)
        assert any("batched solve_many errored" in p for p in problems)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="fallback runs don't gate")
    def test_batch_regression_and_fail_closed(self, smoke_snapshot):
        base = json.loads(json.dumps(smoke_snapshot))
        base["batch_throughput"][0]["batched_s"] = 0.004
        slow = json.loads(json.dumps(base))
        slow["batch_throughput"][0]["batched_s"] = 0.05
        _lines, regressions = compare_snapshots(slow, base, 25.0)
        assert any("solve_many/batch" in r for r in regressions)
        # The gate fails closed: a batch entry the baseline measured ok
        # cannot pass by not being measured at all.
        gone = json.loads(json.dumps(base))
        gone["batch_throughput"] = []
        _lines, regressions = compare_snapshots(gone, base, 25.0)
        assert any(
            "solve_many/batch" in r and "missing or not ok" in r
            for r in regressions
        )

    def test_sub_millisecond_jitter_never_flags(self, smoke_snapshot):
        slow = json.loads(json.dumps(smoke_snapshot))
        for e in slow["entries"]:
            e["wall_s"] = 0.0005  # 0.5ms: below the jitter floor
        base = json.loads(json.dumps(smoke_snapshot))
        for e in base["entries"]:
            e["wall_s"] = 0.00001
        _lines, regressions = compare_snapshots(slow, base, 25.0)
        assert not regressions


class TestCli:
    def test_bench_verb_writes_snapshot(self, tmp_path, capsys):
        rc = main([
            "bench", "--profile", "smoke", "--out-dir", str(tmp_path),
            "--label", "test", "--baseline", "none",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        snap = load_snapshot(tmp_path / "BENCH_test.json")
        assert snap["profile"] == "smoke"

    def test_bench_verb_compares_against_latest(self, tmp_path, capsys):
        assert main([
            "bench", "--profile", "smoke", "--out-dir", str(tmp_path),
            "--label", "a", "--baseline", "none",
        ]) == 0
        rc = main([
            "bench", "--profile", "smoke", "--out-dir", str(tmp_path),
            "--label", "b", "--threshold", "1e9",
        ])
        assert rc == 0
        assert "vs baseline" in capsys.readouterr().out

    def test_bench_verb_fails_on_regression(self, tmp_path):
        # Quick profile: the 220-node flagship is well above the
        # sub-millisecond jitter floor, so a forged absurdly-fast
        # baseline must trip the regression gate.
        assert main([
            "bench", "--profile", "quick", "--out-dir", str(tmp_path),
            "--label", "base", "--baseline", "none",
        ]) == 0
        snap = load_snapshot(tmp_path / "BENCH_base.json")
        for e in snap["entries"]:
            e["wall_s"] = 1e-9
        fast = tmp_path / "BENCH_forged.json"
        fast.write_text(json.dumps(snap))
        rc = main([
            "bench", "--profile", "quick", "--out-dir", str(tmp_path),
            "--label", "cur", "--baseline", str(fast),
        ])
        assert rc == 1

    @pytest.mark.skipif(not HAVE_NUMPY, reason="fallback runs don't gate")
    def test_bench_verb_fails_on_batch_regression_alone(self, tmp_path):
        # Degrade only the baseline's batch entry: solver entries are
        # made absurdly slow (current can only look better) while the
        # batched time is forged absurdly fast, so an exit 1 can come
        # from the batch_throughput comparison alone.
        assert main([
            "bench", "--profile", "quick", "--out-dir", str(tmp_path),
            "--label", "base", "--baseline", "none",
        ]) == 0
        snap = load_snapshot(tmp_path / "BENCH_base.json")
        for e in snap["entries"]:
            e["wall_s"] = 1e9
        for b in snap["batch_throughput"]:
            b["batched_s"] = 1e-9
        forged = tmp_path / "BENCH_forged.json"
        forged.write_text(json.dumps(snap))
        rc = main([
            "bench", "--profile", "quick", "--out-dir", str(tmp_path),
            "--label", "cur", "--baseline", str(forged),
        ])
        assert rc == 1
