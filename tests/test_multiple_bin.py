"""Tests for Algorithm 3 — multiple-bin (Theorem 6).

Includes the regression test for reproduction finding F1 (see
EXPERIMENTS.md): a 13-node instance on which the paper's algorithm, as
literally specified, opens one more replica than the optimum — the
proof's cross-branch monotonicity claim does not hold there.  The test
pins both values so any change to our implementation that silently
alters the behaviour is caught.
"""

from __future__ import annotations

import pytest

from repro import (
    InvalidInstanceError,
    NotBinaryTreeError,
    Policy,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    multiple_bin,
)
from repro.algorithms import exact_multiple
from repro.instances import caterpillar, random_binary_tree


class TestPreconditions:
    def test_rejects_wide_tree(self):
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(3):
            b.add(r, delta=1.0, requests=1)
        inst = ProblemInstance(b.build(), 5, 2.0, Policy.MULTIPLE)
        with pytest.raises(NotBinaryTreeError):
            multiple_bin(inst)

    def test_rejects_oversized_client(self):
        # Theorem 5: the problem is NP-hard when r_i > W, so the
        # algorithm refuses rather than silently mis-solving.
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=9)
        inst = ProblemInstance(b.build(), 5, 2.0, Policy.MULTIPLE)
        with pytest.raises(InvalidInstanceError):
            multiple_bin(inst)


class TestBasicBehaviour:
    def test_valid_on_binary_example(self, paper_example):
        inst = paper_example.with_policy(Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert is_valid(inst, p)

    def test_consolidates_when_everything_fits(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=2)
        b.add(n, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 10, 5.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert p.replicas == frozenset({r})

    def test_pinned_leaf_serves_itself(self):
        b = TreeBuilder()
        r = b.add_root()
        c = b.add(r, delta=9.0, requests=4)
        inst = ProblemInstance(b.build(), 10, 5.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert p.replicas == frozenset({c})

    def test_split_occurs_on_overflow(self):
        # Two clients of 6 with W=8: one server absorbs 8 (splitting a
        # client), the root takes the remaining 4.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        c1 = b.add(n, delta=1.0, requests=6)
        c2 = b.add(n, delta=1.0, requests=6)
        inst = ProblemInstance(b.build(), 8, None, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2
        split_clients = [c for c in (c1, c2) if len(p.servers_of(c)) > 1]
        assert len(split_clients) == 1

    def test_zero_demand(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        inst = ProblemInstance(b.build(), 10, 5.0, Policy.MULTIPLE)
        assert multiple_bin(inst).n_replicas == 0

    def test_root_is_client(self):
        b = TreeBuilder()
        b.add_root()
        tree = b.build().with_requests([7])
        inst = ProblemInstance(tree, 10, 5.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert p.replicas == frozenset({0})

    def test_one_child_nodes_handled(self):
        # Unary spine segments are legal in binary trees.
        b = TreeBuilder()
        r = b.add_root()
        n1 = b.add(r, delta=1.0)
        n2 = b.add(n1, delta=1.0)
        b.add(n2, delta=1.0, requests=5)
        inst = ProblemInstance(b.build(), 10, 10.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 1


class TestExtraServer:
    def test_extra_server_reassigns_down_right_spine(self):
        # Force: a node absorbs W but the remainder is still pinned.
        # lchild leaf 6 (loose), rchild leaf 6 (pinned to within n).
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=10.0)  # nothing escapes n (dmax=5)
        l = b.add(n, delta=1.0, requests=6)
        rr = b.add(n, delta=2.0, requests=6)
        inst = ProblemInstance(b.build(), 8, 5.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        # 12 requests pinned below n with W=8: need 2 servers there.
        assert p.n_replicas == 2
        assert exact_multiple(inst).n_replicas == 2

    def test_deep_pinned_chain(self):
        # A chain where each level is forced to keep requests local.
        b = TreeBuilder()
        node = b.add_root()
        for _ in range(6):
            b.add(node, delta=3.0, requests=4)
            node = b.add(node, delta=3.0)
        b.add(node, delta=3.0, requests=4)
        inst = ProblemInstance(b.build(), 5, 3.0, Policy.MULTIPLE)
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas


class TestOptimality:
    """Theorem 6's claim, checked against the exact solver."""

    @pytest.mark.parametrize("seed", range(20))
    def test_optimal_without_distance(self, seed):
        inst = random_binary_tree(
            5, 6, capacity=9, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 9),
        )
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 20, 24])
    def test_optimal_with_distance_typical(self, seed):
        # Seeds drawn from the E6 sweep where the algorithm is optimal
        # (see EXPERIMENTS.md F1 for the exceptional regime).
        inst = random_binary_tree(
            5, 6, capacity=10, dmax=5.0, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 10),
        )
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas

    def test_theorem6_counterexample_regression(self, theorem6_counterexample):
        """Reproduction finding F1: the literal Algorithm 3 opens 6
        replicas where 5 suffice.  See EXPERIMENTS.md."""
        inst = theorem6_counterexample
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        e = exact_multiple(inst)
        assert is_valid(inst, e)
        assert e.n_replicas == 5
        assert p.n_replicas == 6  # pinned: the paper's greedy is off by one here

    def test_never_below_exact(self):
        # Sanity: a valid placement can never beat the exact optimum.
        for seed in range(10):
            inst = random_binary_tree(
                4, 5, capacity=7, dmax=4.0, policy=Policy.MULTIPLE,
                seed=100 + seed, request_range=(1, 7),
            )
            assert multiple_bin(inst).n_replicas >= exact_multiple(inst).n_replicas


class TestScale:
    def test_deep_caterpillar_no_recursion_error(self):
        inst = caterpillar(
            3000, capacity=10, dmax=None, policy=Policy.MULTIPLE,
            request_range=(1, 5), seed=0,
        )
        p = multiple_bin(inst)
        assert p.n_replicas >= inst.tree.total_requests // inst.capacity
