"""Cross-cutting edge cases: degenerate instances through every solver.

Degenerate shapes (single node, zero demand, zero-length edges,
dmax = 0, W = 1, duplicate demands) tend to break greedy bookkeeping;
each case below runs every applicable solver and validates the output.
"""

from __future__ import annotations

import pytest

from repro import (
    Policy,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    local_placement,
    multiple_bin,
    multiple_greedy,
    multiple_nod_dp,
    single_gen,
    single_greedy_packing,
    single_nod,
    single_push,
)
from repro.algorithms import exact_multiple, exact_single

SINGLE_SOLVERS = [single_gen, single_greedy_packing, local_placement, exact_single]
SINGLE_NOD_SOLVERS = [single_nod, single_push]
MULTIPLE_SOLVERS = [multiple_greedy, exact_multiple]


def fan(requests, W, dmax=None, policy=Policy.SINGLE, deltas=None):
    b = TreeBuilder()
    r = b.add_root()
    deltas = deltas or [1.0] * len(requests)
    for req, d in zip(requests, deltas):
        b.add(r, delta=d, requests=req)
    return ProblemInstance(b.build(), W, dmax, policy)


class TestUnitCapacity:
    def test_w_equals_one(self):
        inst = fan([1, 1, 1], 1)
        for solver in SINGLE_SOLVERS:
            p = solver(inst)
            assert is_valid(inst, p)
        assert exact_single(inst).n_replicas == 3

    def test_w_one_multiple(self):
        inst = fan([1, 1], 1, policy=Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2


class TestZeroLengthEdges:
    def test_zero_edges_single(self):
        inst = fan([3, 4], 10, dmax=0.0, deltas=[0.0, 0.0])
        # dmax = 0 but edges are zero-length: the root can serve both.
        p = single_gen(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 1

    def test_zero_edges_multiple_bin(self):
        inst = fan([3, 4], 10, dmax=0.0, deltas=[0.0, 0.0]).with_policy(
            Policy.MULTIPLE
        )
        p = multiple_bin(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 1


class TestDmaxZeroPositiveEdges:
    def test_everyone_self_serves(self):
        inst = fan([3, 4, 2], 10, dmax=0.0)
        p = single_gen(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 3
        assert exact_single(inst).n_replicas == 3

    def test_multiple_same(self):
        inst = fan([3, 4], 10, dmax=0.0, policy=Policy.MULTIPLE)
        p = multiple_greedy(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2


class TestZeroDemandEverywhere:
    @pytest.mark.parametrize(
        "solver",
        SINGLE_SOLVERS + MULTIPLE_SOLVERS + [multiple_bin, multiple_nod_dp],
    )
    def test_empty_placement(self, solver):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=0)
        b.add(n, delta=1.0, requests=0)
        policy = (
            Policy.MULTIPLE
            if solver in (multiple_greedy, exact_multiple, multiple_bin, multiple_nod_dp)
            else Policy.SINGLE
        )
        inst = ProblemInstance(b.build(), 5, None, policy)
        p = solver(inst)
        assert p.n_replicas == 0
        assert is_valid(inst, p)


class TestMixedZeroAndPositive:
    def test_zero_demand_clients_ignored(self):
        inst = fan([0, 5, 0, 3], 10)
        for solver in SINGLE_SOLVERS + SINGLE_NOD_SOLVERS:
            p = solver(inst)
            assert is_valid(inst, p)
            # Zero-demand clients never appear in assignments.
            for a in p.iter_assignments():
                assert inst.tree.requests(a.client) > 0


class TestExactCapacityFits:
    def test_demand_exactly_w(self):
        inst = fan([4, 6], 10)
        assert exact_single(inst).n_replicas == 1
        p = single_gen(inst)
        assert is_valid(inst, p) and p.n_replicas == 1

    def test_each_client_exactly_w(self):
        inst = fan([10, 10, 10], 10)
        assert exact_single(inst).n_replicas == 3


class TestDuplicateDemands:
    def test_many_equal_items(self):
        inst = fan([5] * 8, 10)
        p = exact_single(inst)
        # Star: only the root is shared: root takes 2, six self-serve.
        assert p.n_replicas == 7
        for solver in SINGLE_SOLVERS:
            assert is_valid(inst, solver(inst))


class TestDeepUnaryChain:
    def test_all_solvers_on_chain(self):
        b = TreeBuilder()
        node = b.add_root()
        for _ in range(30):
            node = b.add(node, delta=1.0)
        b.add(node, delta=1.0, requests=7)
        for policy, solvers in (
            (Policy.SINGLE, [single_gen, exact_single]),
            (Policy.MULTIPLE, [multiple_greedy, multiple_bin, exact_multiple]),
        ):
            inst = ProblemInstance(b.build(), 10, 5.0, policy)
            for solver in solvers:
                p = solver(inst)
                assert is_valid(inst, p)
                assert p.n_replicas == 1


class TestLargeDemandSmallTreeMultiple:
    def test_dp_uses_whole_path(self):
        # Demand = exact path capacity: every path node must host.
        b = TreeBuilder()
        r = b.add_root()
        n1 = b.add(r, delta=1.0)
        n2 = b.add(n1, delta=1.0)
        b.add(n2, delta=1.0, requests=20)  # path: client,n2,n1,r = 4x5
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 4
        assert exact_multiple(inst).n_replicas == 4
