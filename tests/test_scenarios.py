"""Scenario library: family catalogue, determinism, demand shapes, traces."""

from __future__ import annotations

import pytest

from repro import Policy
from repro.dynamic import DemandEvent, FailureEvent
from repro.instances import make_instance
from repro.scenarios import (
    DEMANDS,
    FAMILIES,
    TOPOLOGIES,
    build_scenario,
    failure_storm_trace,
    family_names,
    scenario_spec,
)


class TestCatalogue:
    def test_full_topology_demand_cross(self):
        assert len(FAMILIES) == len(TOPOLOGIES) * len(DEMANDS)
        for topo in TOPOLOGIES:
            for dem in DEMANDS:
                assert f"{topo}/{dem}" in FAMILIES

    def test_at_least_twelve_families(self):
        # The conformance acceptance bar: >= 12 topology×demand families.
        assert len(FAMILIES) >= 12

    def test_family_names_sorted(self):
        names = family_names()
        assert names == sorted(names)
        assert set(names) == set(FAMILIES)

    def test_unknown_family_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            build_scenario("ring/uniform")


class TestBuildScenario:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_builds_a_valid_instance(self, family):
        inst = build_scenario(family, size=12, capacity=8, seed=1)
        tree = inst.tree
        assert len(tree.clients) >= 1
        # Clients are exactly the leaves and respect r_i <= W.
        assert all(tree.requests(c) <= inst.capacity for c in tree.clients)
        assert all(tree.requests(v) == 0 for v in tree.internal_nodes)
        assert inst.trivially_infeasible() is None

    def test_deterministic_in_seed(self):
        a = build_scenario("random_attachment/zipf", size=20, seed=5)
        b = build_scenario("random_attachment/zipf", size=20, seed=5)
        c = build_scenario("random_attachment/zipf", size=20, seed=6)
        assert a.tree == b.tree
        assert a.tree != c.tree

    def test_star_is_flat(self):
        inst = build_scenario("star/uniform", size=10, seed=0)
        assert len(inst.tree.internal_nodes) == 1
        assert len(inst.tree.clients) == 10

    def test_spine_topologies_are_binary(self):
        for topo in ("caterpillar", "deep_chain"):
            inst = build_scenario(f"{topo}/uniform", size=12, seed=0)
            assert inst.tree.is_binary, topo

    def test_deep_chain_concentrates_demand_deep(self):
        inst = build_scenario("deep_chain/uniform", size=16, seed=2)
        tree = inst.tree
        depths = sorted(tree.depth(c) for c in tree.clients)
        spine_max = max(tree.depth(v) for v in tree.internal_nodes)
        # Clients only hang off the deepest quarter of the spine.
        assert len(tree.clients) == 4
        assert depths[0] > spine_max / 2

    def test_flash_crowd_has_hot_clients(self):
        inst = build_scenario("star/flash_crowd", size=24, capacity=16, seed=3)
        demands = [inst.tree.requests(c) for c in inst.tree.clients]
        assert demands.count(16) >= 3  # ~1/8 of clients pinned at W
        assert min(demands) <= 16 // 6 + 1  # a small baseline everywhere

    def test_policy_and_dmax_forwarded(self):
        inst = build_scenario(
            "broom/zipf", size=9, capacity=7, dmax=3.5,
            policy=Policy.MULTIPLE, seed=0,
        )
        assert inst.policy is Policy.MULTIPLE
        assert inst.dmax == 3.5
        assert inst.capacity == 7

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError, match="size"):
            build_scenario("star/uniform", size=0)


class TestGeneratorsIntegration:
    def test_make_instance_accepts_scenario_kind(self):
        spec = scenario_spec(
            "caterpillar/heavy_tailed", size=10, capacity=9,
            policy="multiple", seed=4,
        )
        inst = make_instance(spec)
        assert inst.policy is Policy.MULTIPLE
        assert inst.name == "caterpillar/heavy_tailed@4"
        direct = build_scenario(
            "caterpillar/heavy_tailed", size=10, capacity=9,
            policy=Policy.MULTIPLE, seed=4,
        )
        assert inst.tree == direct.tree

    def test_scenario_spec_is_json_plain(self):
        import json

        spec = scenario_spec("star/zipf", seed=2)
        assert json.loads(json.dumps(spec)) == spec

    def test_scenario_spec_rejects_unknown_family(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            scenario_spec("moebius/uniform")


class TestFailureStormTrace:
    def _instance(self, seed=0):
        return build_scenario(
            "random_attachment/uniform", size=20, capacity=10,
            policy=Policy.MULTIPLE, seed=seed,
        )

    def test_deterministic_in_seed(self):
        inst = self._instance()
        a = failure_storm_trace(inst, seed=3)
        b = failure_storm_trace(inst, seed=3)
        assert a == b

    def test_shape_storms_and_calm(self):
        inst = self._instance()
        trace = failure_storm_trace(inst, storms=3, storm_size=2, calm_steps=2, seed=1)
        assert len(trace) == 3 * (1 + 2)
        storm_batches = [
            b for b in trace if any(isinstance(e, FailureEvent) for e in b)
        ]
        assert len(storm_batches) == 3
        for batch in trace:
            if batch not in storm_batches:
                assert len(batch) == 1 and isinstance(batch[0], DemandEvent)

    def test_storms_are_correlated_within_a_subtree(self):
        inst = self._instance(seed=7)
        tree = inst.tree
        trace = failure_storm_trace(inst, storms=4, storm_size=3, seed=2)
        for batch in trace:
            fails = [e.node for e in batch if isinstance(e, FailureEvent)]
            if len(fails) < 2:
                continue
            pivot = fails[0]
            region = set(tree.subtree(pivot))
            assert all(v in region for v in fails), (pivot, fails)

    def test_never_fails_root_or_repeats(self):
        inst = self._instance(seed=9)
        trace = failure_storm_trace(inst, storms=6, storm_size=4, seed=5)
        failed = [
            e.node for b in trace for e in b if isinstance(e, FailureEvent)
        ]
        assert inst.tree.root not in failed
        assert len(failed) == len(set(failed))
        assert all(inst.tree.is_internal(v) for v in failed)

    def test_jitter_levels_bounded_by_capacity(self):
        inst = self._instance(seed=4)
        trace = failure_storm_trace(inst, storms=2, calm_steps=5, seed=8)
        for batch in trace:
            for e in batch:
                if isinstance(e, DemandEvent):
                    assert e.requests in (1, inst.capacity)

    def test_validation(self):
        inst = self._instance()
        with pytest.raises(ValueError):
            failure_storm_trace(inst, storms=0)
        with pytest.raises(ValueError):
            failure_storm_trace(inst, storm_size=0)
