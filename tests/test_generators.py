"""Tests for instance generators (repro.instances.generators)."""

from __future__ import annotations

import pytest

from repro import Policy
from repro.instances import broom, caterpillar, random_binary_tree, random_tree, star


class TestRandomTree:
    def test_determinism(self):
        a = random_tree(8, 16, capacity=20, seed=42)
        b = random_tree(8, 16, capacity=20, seed=42)
        assert a.tree == b.tree

    def test_different_seeds_differ(self):
        a = random_tree(8, 16, capacity=20, seed=1)
        b = random_tree(8, 16, capacity=20, seed=2)
        assert a.tree != b.tree

    def test_counts(self):
        inst = random_tree(8, 16, capacity=20, seed=0)
        t = inst.tree
        assert len(t.internal_nodes) == 8
        assert len(t.clients) == 16

    def test_arity_respected(self):
        for seed in range(5):
            inst = random_tree(10, 20, capacity=20, max_arity=3, seed=seed)
            assert inst.tree.arity <= 3

    def test_requests_bounded_by_capacity(self):
        inst = random_tree(5, 30, capacity=9, max_arity=8, seed=3)
        assert inst.tree.max_request <= 9
        assert inst.tree.total_requests > 0

    def test_request_range(self):
        inst = random_tree(
            5, 20, capacity=100, max_arity=6, request_range=(5, 7), seed=1
        )
        t = inst.tree
        for c in t.clients:
            assert 5 <= t.requests(c) <= 7

    def test_delta_range(self):
        inst = random_tree(
            5, 10, capacity=10, max_arity=4, delta_range=(2.0, 2.0), seed=0
        )
        t = inst.tree
        for v in range(1, len(t)):
            assert t.delta(v) == pytest.approx(2.0)

    def test_too_few_clients_rejected(self):
        with pytest.raises(ValueError):
            random_tree(10, 1, capacity=5, max_arity=2, seed=0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            random_tree(0, 5, capacity=5)
        with pytest.raises(ValueError):
            random_tree(3, 0, capacity=5)
        with pytest.raises(ValueError):
            random_tree(3, 5, capacity=5, max_arity=1)

    def test_policy_and_dmax_pass_through(self):
        inst = random_tree(
            3, 5, capacity=5, dmax=4.0, policy=Policy.MULTIPLE, seed=0
        )
        assert inst.policy is Policy.MULTIPLE
        assert inst.dmax == 4.0


class TestRandomBinaryTree:
    @pytest.mark.parametrize("seed", range(6))
    def test_binary(self, seed):
        inst = random_binary_tree(7, 8, capacity=10, seed=seed)
        assert inst.tree.is_binary

    def test_default_policy_multiple(self):
        inst = random_binary_tree(4, 5, capacity=10, seed=0)
        assert inst.policy is Policy.MULTIPLE


class TestShapes:
    def test_caterpillar_structure(self):
        inst = caterpillar(10, capacity=5, seed=0)
        t = inst.tree
        assert len(t.clients) == 10
        assert len(t.internal_nodes) == 10
        assert t.is_binary
        # Depth grows linearly.
        assert max(t.depth(c) for c in t.clients) >= 9

    def test_broom_structure(self):
        inst = broom(5, 8, capacity=10, seed=0)
        t = inst.tree
        assert len(t.clients) == 8
        assert len(t.internal_nodes) == 5
        # All clients share the deepest spine node as parent.
        parents = {t.parent(c) for c in t.clients}
        assert len(parents) == 1

    def test_star_structure(self):
        inst = star(6, capacity=10, seed=0)
        t = inst.tree
        assert len(t.internal_nodes) == 1
        assert len(t.clients) == 6

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            caterpillar(0, capacity=5)
        with pytest.raises(ValueError):
            broom(0, 3, capacity=5)
