"""Service-layer dynamic sessions: apply_events + cache invalidation.

Regression coverage for the contract in
:meth:`repro.service.PlacementService.apply_events`: mutating a
session's instance must invalidate exactly the result-cache entries
keyed to its old content fingerprint, and a pure-incremental repair
seeds the cache under the new fingerprint.
"""

from __future__ import annotations

import pytest

from repro import Policy
from repro.dynamic import CapacityEvent, DemandEvent, FailureEvent
from repro.instances import random_tree
from repro.service import PlacementService, UnknownSessionError


@pytest.fixture
def multiple_instance():
    return random_tree(8, 16, capacity=6, dmax=None, seed=7).with_policy(
        Policy.MULTIPLE
    )


def _bump_leaf_event(instance):
    c = sorted(instance.tree.clients)[0]
    return DemandEvent(c, (instance.tree.requests(c) + 1) % instance.capacity)


class TestDynamicSessions:
    def test_start_apply_and_introspect(self, multiple_instance):
        with PlacementService() as svc:
            sid = svc.start_dynamic(multiple_instance)
            engine = svc.dynamic_session(sid)
            assert engine.placement is not None
            outcome = svc.apply_events(
                sid, [_bump_leaf_event(multiple_instance)]
            )
            assert outcome.ok and outcome.mode == "incremental"

    def test_unknown_session_raises(self, multiple_instance):
        with PlacementService() as svc:
            with pytest.raises(UnknownSessionError):
                svc.apply_events("nope", [])
            with pytest.raises(UnknownSessionError):
                svc.dynamic_session("nope")

    def test_close_dynamic_is_idempotent(self, multiple_instance):
        with PlacementService() as svc:
            sid = svc.start_dynamic(multiple_instance)
            svc.close_dynamic(sid)
            svc.close_dynamic(sid)
            with pytest.raises(UnknownSessionError):
                svc.dynamic_session(sid)


class TestCacheInvalidation:
    def test_old_fingerprint_entries_are_invalidated(self, multiple_instance):
        with PlacementService() as svc:
            first = svc.solve_instance(multiple_instance, "multiple-nod-dp")
            assert first.ok and not first.diagnostics.cache_hit
            again = svc.solve_instance(multiple_instance, "multiple-nod-dp")
            assert again.diagnostics.cache_hit

            sid = svc.start_dynamic(multiple_instance)
            svc.apply_events(sid, [_bump_leaf_event(multiple_instance)])

            # The entry keyed by the pre-event content must be gone:
            # the session's instance *is* that content, mutated.
            after = svc.solve_instance(multiple_instance, "multiple-nod-dp")
            assert not after.diagnostics.cache_hit

    def test_incremental_repair_seeds_new_fingerprint(self, multiple_instance):
        with PlacementService() as svc:
            sid = svc.start_dynamic(multiple_instance)
            outcome = svc.apply_events(
                sid, [_bump_leaf_event(multiple_instance)]
            )
            assert outcome.ok and outcome.mode == "incremental"
            mutated = svc.dynamic_session(sid).instance
            seeded = svc.solve_instance(mutated, "multiple-nod-dp")
            assert seeded.diagnostics.cache_hit
            assert seeded.n_replicas == outcome.cost
            assert seeded.diagnostics.selection == "dynamic"

    def test_auto_solver_requests_hit_seeded_entry(self, multiple_instance):
        # Auto-selection picks multiple-nod-dp for this (non-binary)
        # Multiple-NoD instance, so the solver=None key must be seeded
        # too — the common follow-up path is an auto solve.
        assert multiple_instance.tree.arity > 2
        with PlacementService() as svc:
            sid = svc.start_dynamic(multiple_instance)
            outcome = svc.apply_events(
                sid, [_bump_leaf_event(multiple_instance)]
            )
            assert outcome.mode == "incremental"
            mutated = svc.dynamic_session(sid).instance
            auto = svc.solve_instance(mutated)  # no solver named
            assert auto.diagnostics.cache_hit
            assert auto.solver == "multiple-nod-dp"
            assert auto.n_replicas == outcome.cost

    def test_failed_host_states_are_not_seeded(self, multiple_instance):
        with PlacementService() as svc:
            sid = svc.start_dynamic(multiple_instance)
            victim = multiple_instance.tree.internal_nodes[1]
            outcome = svc.apply_events(sid, [FailureEvent(victim)])
            assert outcome.ok
            # A plain solve of the mutated instance would not know about
            # the failure, so its answer must be computed, not seeded.
            mutated = svc.dynamic_session(sid).instance
            resp = svc.solve_instance(mutated, "multiple-nod-dp")
            assert not resp.diagnostics.cache_hit

    def test_unrelated_instance_entries_survive(self, multiple_instance):
        other = random_tree(6, 12, capacity=8, dmax=None, seed=42).with_policy(
            Policy.MULTIPLE
        )
        with PlacementService() as svc:
            svc.solve_instance(other, "multiple-nod-dp")
            sid = svc.start_dynamic(multiple_instance)
            svc.apply_events(sid, [_bump_leaf_event(multiple_instance)])
            kept = svc.solve_instance(other, "multiple-nod-dp")
            assert kept.diagnostics.cache_hit

    def test_capacity_event_invalidates_too(self, multiple_instance):
        with PlacementService() as svc:
            svc.solve_instance(multiple_instance, "multiple-nod-dp")
            sid = svc.start_dynamic(multiple_instance)
            outcome = svc.apply_events(
                sid, [CapacityEvent(multiple_instance.capacity + 1)]
            )
            assert outcome.ok
            stale = svc.solve_instance(multiple_instance, "multiple-nod-dp")
            assert not stale.diagnostics.cache_hit
