"""Unit tests for lower bounds (repro.core.bounds)."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder, lower_bound
from repro.algorithms import exact_multiple, exact_single
from repro.core.bounds import (
    big_item_lower_bound,
    subtree_lower_bound,
    volume_lower_bound,
)
from repro.instances import random_binary_tree, random_tree


def fan(requests, W, dmax=None, policy=Policy.SINGLE):
    b = TreeBuilder()
    r = b.add_root()
    for req in requests:
        b.add(r, delta=1.0, requests=req)
    return ProblemInstance(b.build(), W, dmax, policy)


class TestVolumeBound:
    def test_exact_division(self):
        assert volume_lower_bound(fan([4, 4], 4)) == 2

    def test_rounding_up(self):
        assert volume_lower_bound(fan([4, 4, 1], 4)) == 3

    def test_zero_demand(self):
        assert volume_lower_bound(fan([0, 0], 4)) == 0


class TestBigItemBound:
    def test_counts_only_big(self):
        inst = fan([3, 3, 2], 5)  # big means > 2.5
        assert big_item_lower_bound(inst) == 2

    def test_zero_under_multiple(self):
        inst = fan([3, 3, 2], 5, policy=Policy.MULTIPLE)
        assert big_item_lower_bound(inst) == 0

    def test_exactly_half_not_big(self):
        # Two items of exactly W/2 can share a server.
        inst = fan([3, 3], 6)
        assert big_item_lower_bound(inst) == 0


class TestSubtreeBound:
    def test_trapped_requests(self):
        # Two clients pinned to separate subtrees by dmax; volume alone
        # says 1 server, the subtree bound knows each subtree needs one.
        b = TreeBuilder()
        r = b.add_root()
        n1 = b.add(r, delta=10.0)
        n2 = b.add(r, delta=10.0)
        b.add(n1, delta=1.0, requests=2)
        b.add(n2, delta=1.0, requests=2)
        inst = ProblemInstance(b.build(), 10, 2.0, Policy.SINGLE)
        assert volume_lower_bound(inst) == 1
        assert subtree_lower_bound(inst) == 2

    def test_matches_volume_without_distance(self):
        inst = fan([4, 4, 1], 4)
        assert subtree_lower_bound(inst) == 3

    def test_children_sum(self):
        # Each of 3 pinned subtrees needs 2 servers (demand 2W trapped).
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(3):
            n = b.add(r, delta=10.0)
            b.add(n, delta=1.0, requests=5)
            b.add(n, delta=1.0, requests=5)
        inst = ProblemInstance(b.build(), 5, 2.0, Policy.SINGLE)
        assert subtree_lower_bound(inst) == 6


class TestSoundness:
    """A lower bound must never exceed the true optimum."""

    @pytest.mark.parametrize("seed", range(12))
    def test_single_soundness(self, seed):
        inst = random_tree(
            4, 7, capacity=10, dmax=4.0 if seed % 2 else None,
            policy=Policy.SINGLE, seed=seed, max_arity=3,
        )
        assert lower_bound(inst) <= exact_single(inst).n_replicas

    @pytest.mark.parametrize("seed", range(12))
    def test_multiple_soundness(self, seed):
        inst = random_binary_tree(
            5, 6, capacity=8, dmax=5.0 if seed % 2 else None,
            policy=Policy.MULTIPLE, seed=seed,
        )
        assert lower_bound(inst) <= exact_multiple(inst).n_replicas
