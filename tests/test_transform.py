"""Tests for instance preprocessing (repro.core.transform)."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder, is_valid
from repro.algorithms import exact_single, single_gen
from repro.core import collapse_unary_chains, preprocess, prune_zero_demand
from repro.instances import random_tree


def chainy_instance():
    """root -> a -> b -> c(=fan of 2 clients) + dead subtree."""
    b = TreeBuilder()
    root = b.add_root()
    a = b.add(root, delta=1.0)
    bb = b.add(a, delta=2.0)
    c = b.add(bb, delta=3.0)
    b.add(c, delta=1.0, requests=4)
    b.add(c, delta=1.0, requests=5)
    dead = b.add(root, delta=1.0)
    d2 = b.add(dead, delta=1.0)
    b.add(d2, delta=1.0, requests=0)
    return ProblemInstance(b.build(), 10, None, Policy.SINGLE)


class TestPrune:
    def test_removes_dead_subtree(self):
        inst = chainy_instance()
        reduced, nmap = prune_zero_demand(inst)
        assert len(reduced.tree) == len(inst.tree) - 3
        assert reduced.tree.total_requests == inst.tree.total_requests

    def test_keeps_root_when_everything_dead(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        reduced, _ = prune_zero_demand(inst)
        assert len(reduced.tree) == 1

    def test_lifted_placement_valid(self):
        inst = chainy_instance()
        reduced, nmap = prune_zero_demand(inst)
        p = single_gen(reduced)
        lifted = nmap.lift(p)
        assert is_valid(inst, lifted)
        assert lifted.n_replicas == p.n_replicas

    def test_optimum_preserved(self):
        inst = chainy_instance()
        reduced, _ = prune_zero_demand(inst)
        assert (
            exact_single(reduced).n_replicas
            == exact_single(inst).n_replicas
        )


class TestCollapse:
    def test_contracts_chain(self):
        inst = chainy_instance()
        pruned, _ = prune_zero_demand(inst)
        collapsed, _ = collapse_unary_chains(pruned)
        # root -> a -> b -> c chain: a and b are unary internal (and c),
        # c is unary? c has 2 clients -> kept. a, b removed.
        assert len(collapsed.tree) == len(pruned.tree) - 2

    def test_distances_accumulate(self):
        inst = chainy_instance()
        pruned, _ = prune_zero_demand(inst)
        collapsed, nmap = collapse_unary_chains(pruned)
        t = collapsed.tree
        # The fan node keeps total distance 1+2+3 = 6 to the root.
        fan = [v for v in t.internal_nodes if v != t.root][0]
        assert t.distance_to_ancestor(fan, t.root) == pytest.approx(6.0)

    def test_lifted_placement_valid_on_original(self):
        inst = chainy_instance()
        collapsed, nmap = preprocess(inst)
        p = single_gen(collapsed)
        lifted = nmap.lift(p)
        assert is_valid(inst, lifted)

    def test_upper_bound_direction(self):
        # opt(original) <= opt(collapsed): solving the reduced instance
        # can never undercut the original optimum.
        inst = chainy_instance()
        collapsed, _ = preprocess(inst)
        assert (
            exact_single(inst).n_replicas
            <= exact_single(collapsed).n_replicas
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_equality_on_random_nod_instances(self, seed):
        # Without distance constraints chain replicas are never needed:
        # optima coincide on these random instances.
        inst = random_tree(
            5, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=3,
        )
        collapsed, nmap = preprocess(inst)
        a = exact_single(inst).n_replicas
        b = exact_single(collapsed).n_replicas
        assert a <= b  # conservative direction always
        assert b - a <= 0 or b == a  # equality observed on this family
        assert a == b

    def test_root_single_child_kept(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        collapsed, _ = collapse_unary_chains(inst)
        # n is unary internal -> removed; client re-parents to root.
        assert len(collapsed.tree) == 2
        assert collapsed.tree.delta(1) == pytest.approx(2.0)


class TestNodeMap:
    def test_compose(self):
        inst = chainy_instance()
        collapsed, nmap = preprocess(inst)
        # Every reduced node maps to a real original node with same role.
        for v in range(len(collapsed.tree)):
            orig = nmap.to_original[v]
            assert 0 <= orig < len(inst.tree)
            assert collapsed.tree.requests(v) == inst.tree.requests(orig)

    def test_lift_counts_match(self):
        inst = chainy_instance()
        collapsed, nmap = preprocess(inst)
        p = single_gen(collapsed)
        assert nmap.lift(p).n_replicas == p.n_replicas
