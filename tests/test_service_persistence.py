"""Kill-and-replay: recovered service state equals the never-killed state.

The correctness property of the storage subsystem (``docs/durability.md``):
for a randomized trace of service operations and an *arbitrary* crash
point — any byte-level truncation of the write-ahead log, including
mid-record torn writes — recovering from disk reproduces exactly the
in-memory state the live service had after the last surviving record.
Equality is judged by :meth:`PlacementService.state_fingerprint`, which
hashes sessions (via the dynamic engine's blake2b Merkle fingerprints),
standing placements and the semantic cache content.

The live run records ``fps[seq]`` — the fingerprint after record ``seq``
was applied — so the oracle for a crash that preserves records ``1..k``
(plus a snapshot at ``s``) is simply ``fps[max(s, k)]``.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic import CapacityEvent, DemandEvent, FailureEvent
from repro.instances.generators import random_tree
from repro.service import PlacementService
from repro.storage import (
    RecoveryError,
    SessionEvents,
    SessionStart,
    StateStore,
    list_snapshots,
    scan_wal,
)

# Two small, fast instances the ops traces draw from.  Module-level so
# hypothesis examples do not pay generation time per run.
INSTANCES = [
    random_tree(3, 6, capacity=6, seed=11),
    random_tree(2, 5, capacity=8, seed=23),
]


# -- operation traces ---------------------------------------------------
# One op maps to at most one WAL record, so the live fingerprint series
# indexed by the store's last_seq is total: every seq has an oracle.

_EVENT_SPECS = st.one_of(
    st.tuples(st.just("demand"), st.integers(0, 7), st.integers(0, 6)),
    st.tuples(st.just("fail"), st.integers(0, 7)),
    st.tuples(st.just("capacity"), st.integers(1, 12)),
)


@st.composite
def op_traces(draw):
    n_ops = draw(st.integers(2, 9))
    ops = []
    n_sessions = 0
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["solve", "start", "events", "events", "close"])
        )
        if kind == "solve":
            ops.append(("solve", draw(st.integers(0, len(INSTANCES) - 1))))
        elif kind == "start":
            ops.append(("start", draw(st.integers(0, len(INSTANCES) - 1))))
            n_sessions += 1
        elif n_sessions == 0:
            ops.append(("solve", draw(st.integers(0, len(INSTANCES) - 1))))
        elif kind == "events":
            batch = draw(st.lists(_EVENT_SPECS, min_size=1, max_size=3))
            ops.append(("events", draw(st.integers(0, n_sessions - 1)), batch))
        else:
            ops.append(("close", draw(st.integers(0, n_sessions - 1))))
    return ops


def _materialise_events(engine, specs):
    """Bind drawn event specs to the engine's *current* topology."""
    tree = engine.instance.tree
    clients = sorted(tree.clients)
    events = []
    for spec in specs:
        if spec[0] == "demand":
            events.append(
                DemandEvent(clients[spec[1] % len(clients)], spec[2])
            )
        elif spec[0] == "fail":
            # Never the root: a failed root is a modelling degeneracy,
            # not a persistence behaviour worth exercising here.
            events.append(FailureEvent(1 + spec[1] % (len(tree) - 1)))
        else:
            events.append(CapacityEvent(spec[1]))
    return events


def _perform(service, sessions, closed, op) -> None:
    if op[0] == "solve":
        service.solve_instance(INSTANCES[op[1]])
    elif op[0] == "start":
        sessions.append(service.start_dynamic(INSTANCES[op[1]]))
    elif op[0] == "events":
        sid = sessions[op[1]]
        if sid in closed:
            return
        engine = service.dynamic_session(sid)
        service.apply_events(sid, _materialise_events(engine, op[2]))
    else:  # close
        sid = sessions[op[1]]
        service.close_dynamic(sid)
        closed.add(sid)


def _run_live(data_dir: str, ops, snapshot_interval: int) -> dict:
    """Run the trace against a durable service; fingerprint per seq."""
    service = PlacementService(
        cache_size=512,
        store=StateStore(
            data_dir, snapshot_interval=snapshot_interval, fsync=False
        ),
    )
    fps = {0: service.state_fingerprint()}
    sessions, closed = [], set()
    for op in ops:
        _perform(service, sessions, closed, op)
        fps[service.stats().durability.last_seq] = service.state_fingerprint()
    # close() releases file handles WITHOUT a snapshot — deliberately
    # crash-equivalent, so recovery always runs the replay path.
    service.close()
    return fps


def _crash_copy(data_dir: str, cut_frac: float) -> str:
    """Copy the data dir and truncate its WAL at an arbitrary byte."""
    crash_dir = data_dir + "-crash"
    shutil.copytree(data_dir, crash_dir)
    wal_path = os.path.join(crash_dir, StateStore.WAL_FILENAME)
    size = os.path.getsize(wal_path)
    cut = round(cut_frac * size)
    with open(wal_path, "r+b") as fh:
        fh.truncate(cut)
    return crash_dir


def _expected_last_seq(crash_dir: str) -> int:
    snaps = list_snapshots(crash_dir)
    snap_seq = snaps[0][0] if snaps else 0
    scan = scan_wal(os.path.join(crash_dir, StateStore.WAL_FILENAME))
    return max(snap_seq, scan.last_seq)


class TestKillAndReplay:
    """The property, at both extremes of the snapshot cadence."""

    @pytest.mark.parametrize("snapshot_interval", [0, 2])
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=op_traces(), cut_frac=st.floats(0.0, 1.0))
    def test_recovery_equals_live_state(self, ops, cut_frac, snapshot_interval):
        # No tmp_path here: function-scoped fixtures are not reset
        # between hypothesis examples, so each example makes its own.
        base = tempfile.mkdtemp(prefix="repro-persist-")
        data_dir = os.path.join(base, "state")
        fps = _run_live(data_dir, ops, snapshot_interval)

        crash_dir = _crash_copy(data_dir, cut_frac)
        expected = _expected_last_seq(crash_dir)

        recovered = PlacementService(
            cache_size=512, store=StateStore(crash_dir, fsync=False)
        )
        try:
            assert recovered.stats().durability.last_seq == expected
            assert recovered.state_fingerprint() == fps[expected]
        finally:
            recovered.close()
            shutil.rmtree(base, ignore_errors=True)


class TestDeterministicCrashes:
    """Hand-picked crash shapes with exact expectations."""

    def _seeded_dir(self, tmp_path, snapshot_interval=0):
        data_dir = str(tmp_path / "state")
        ops = [
            ("solve", 0),
            ("start", 1),
            ("events", 0, [("demand", 2, 3), ("fail", 1)]),
            ("solve", 1),
            ("events", 0, [("capacity", 9)]),
        ]
        fps = _run_live(data_dir, ops, snapshot_interval)
        return data_dir, fps

    def test_graceful_restart_is_identical(self, tmp_path):
        data_dir, fps = self._seeded_dir(tmp_path)
        last = max(fps)
        service = PlacementService(
            cache_size=512, store=StateStore(data_dir, fsync=False)
        )
        service.persist_now()
        fp = service.state_fingerprint()
        service.close()
        assert fp == fps[last]

        again = PlacementService(
            cache_size=512, store=StateStore(data_dir, fsync=False)
        )
        status = again.stats().durability
        # A graceful shutdown restarts from the snapshot: nothing to
        # replay, same state.
        assert status.records_replayed == 0
        assert again.state_fingerprint() == fps[last]
        again.close()

    def test_flipped_byte_in_final_record_drops_only_it(self, tmp_path):
        data_dir, fps = self._seeded_dir(tmp_path)
        wal_path = os.path.join(data_dir, StateStore.WAL_FILENAME)
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.seek(size - 1)
            byte = fh.read(1)
            fh.seek(size - 1)
            fh.write(bytes([byte[0] ^ 0xFF]))

        last = max(fps)
        service = PlacementService(
            cache_size=512, store=StateStore(data_dir, fsync=False)
        )
        status = service.stats().durability
        assert status.torn_tail_recovered
        assert status.last_seq == last - 1
        assert service.state_fingerprint() == fps[last - 1]
        service.close()

    def test_cache_hits_survive_restart(self, tmp_path):
        data_dir = str(tmp_path / "state")
        service = PlacementService(
            store=StateStore(data_dir, fsync=False)
        )
        first = service.solve_instance(INSTANCES[0])
        assert not first.diagnostics.cache_hit
        service.close()

        again = PlacementService(store=StateStore(data_dir, fsync=False))
        hit = again.solve_instance(INSTANCES[0])
        assert hit.diagnostics.cache_hit
        assert hit.placement == first.placement
        assert hit.n_replicas == first.n_replicas
        again.close()

    def test_sessions_survive_restart_and_keep_accepting_events(
        self, tmp_path
    ):
        data_dir = str(tmp_path / "state")
        service = PlacementService(store=StateStore(data_dir, fsync=False))
        sid = service.start_dynamic(INSTANCES[0])
        engine = service.dynamic_session(sid)
        client = sorted(engine.instance.tree.clients)[0]
        service.apply_events(sid, [DemandEvent(client, 2)])
        live_fp = engine.fingerprint()
        service.close()

        again = PlacementService(store=StateStore(data_dir, fsync=False))
        recovered = again.dynamic_session(sid)
        assert recovered.fingerprint() == live_fp
        outcome = again.apply_events(sid, [DemandEvent(client, 4)])
        assert outcome.ok
        again.close()

    def test_session_counter_survives_replay(self, tmp_path):
        """Ids minted after recovery never collide with recovered ones."""
        data_dir = str(tmp_path / "state")
        service = PlacementService(store=StateStore(data_dir, fsync=False))
        first = service.start_dynamic(INSTANCES[0])
        service.close()

        again = PlacementService(store=StateStore(data_dir, fsync=False))
        second = again.start_dynamic(INSTANCES[1])
        assert first != second
        assert int(second.split("-")[1]) > int(first.split("-")[1])
        again.close()


class TestStructuralDamage:
    """Damaged service-level state fails typed, never silently."""

    def _raw_store(self, tmp_path) -> StateStore:
        store = StateStore(str(tmp_path / "state"), fsync=False)
        store.recover()
        return store

    def test_events_for_unknown_session_raise(self, tmp_path):
        store = self._raw_store(tmp_path)
        store.append(
            SessionEvents(session_id="dyn-7-feedbeef", events=[])
        )
        store.close()
        with pytest.raises(RecoveryError, match="unknown session"):
            PlacementService(
                store=StateStore(str(tmp_path / "state"), fsync=False)
            )

    def test_duplicate_session_start_raises(self, tmp_path):
        from repro.instances.io import instance_to_dict

        wire = instance_to_dict(INSTANCES[0])
        store = self._raw_store(tmp_path)
        store.append(SessionStart(session_id="dyn-1-aaaa", instance=wire))
        store.append(SessionStart(session_id="dyn-1-aaaa", instance=wire))
        store.close()
        with pytest.raises(RecoveryError, match="duplicate SessionStart"):
            PlacementService(
                store=StateStore(str(tmp_path / "state"), fsync=False)
            )

    def test_malformed_record_body_raises(self, tmp_path):
        store = self._raw_store(tmp_path)
        store.append(
            SessionStart(session_id="dyn-1-aaaa", instance={"not": "an instance"})
        )
        store.close()
        with pytest.raises(RecoveryError, match="replay of record seq 1"):
            PlacementService(
                store=StateStore(str(tmp_path / "state"), fsync=False)
            )


class TestStatsPlumbing:
    def test_healthz_wire_carries_durability(self, tmp_path):
        service = PlacementService(
            store=StateStore(str(tmp_path / "state"), fsync=False)
        )
        service.solve_instance(INSTANCES[0])
        wire = service.stats().to_wire()
        assert wire["durability"]["data_dir"] == str(tmp_path / "state")
        assert wire["durability"]["last_seq"] == 1
        service.close()

    def test_in_memory_service_has_no_durability_section(self):
        service = PlacementService()
        assert service.stats().durability is None
        assert "durability" not in service.stats().to_wire()
        service.close()
