"""Snapshot files: atomic write, newest-wins discovery, damage detection."""

from __future__ import annotations

import json
import os

import pytest

from repro.storage import (
    RecoveryError,
    list_snapshots,
    load_latest_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.storage.snapshot import clean_temp_files


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        d = str(tmp_path)
        state = {"sessions": {}, "cache": [], "session_seq": 7}
        write_snapshot(d, 42, state)
        assert load_latest_snapshot(d) == (42, state)

    def test_no_snapshot_returns_none(self, tmp_path):
        assert load_latest_snapshot(str(tmp_path)) is None
        assert load_latest_snapshot(str(tmp_path / "missing")) is None

    def test_newest_wins_and_older_pruned(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 5, {"v": "old"})
        write_snapshot(d, 9, {"v": "new"})
        assert load_latest_snapshot(d) == (9, {"v": "new"})
        # The older file is gone: a successful write prunes the past.
        assert [seq for seq, _ in list_snapshots(d)] == [9]

    def test_survivor_from_crashed_prune_is_ignored(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 9, {"v": "new"})
        # Simulate the residue of a crash between write and prune: an
        # older snapshot still on disk.
        with open(snapshot_path(d, 5), "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "seq": 5, "state": {"v": "old"}}, fh)
        assert load_latest_snapshot(d) == (9, {"v": "new"})

    def test_filenames_sort_numerically(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 2, {"v": 1})
        # seq 10 would sort before seq 2 lexicographically without the
        # zero padding in the name.
        with open(snapshot_path(d, 10), "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "seq": 10, "state": {"v": 2}}, fh)
        assert load_latest_snapshot(d) == (10, {"v": 2})


class TestDamage:
    """A damaged newest snapshot fails typed — never a silent fallback."""

    def test_unparseable_newest_raises(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 1, {"v": "good"})
        with open(snapshot_path(d, 2), "w", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "seq": 2, "state": {trunc')
        with pytest.raises(RecoveryError, match="unreadable snapshot"):
            load_latest_snapshot(d)

    def test_wrong_schema_raises(self, tmp_path):
        d = str(tmp_path)
        with open(snapshot_path(d, 1), "w", encoding="utf-8") as fh:
            json.dump({"schema": 99, "seq": 1, "state": {}}, fh)
        with pytest.raises(RecoveryError, match="unsupported snapshot schema"):
            load_latest_snapshot(d)

    def test_seq_filename_mismatch_raises(self, tmp_path):
        d = str(tmp_path)
        with open(snapshot_path(d, 3), "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "seq": 7, "state": {}}, fh)
        with pytest.raises(RecoveryError, match="disagrees with filename"):
            load_latest_snapshot(d)

    def test_non_object_state_raises(self, tmp_path):
        d = str(tmp_path)
        with open(snapshot_path(d, 1), "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "seq": 1, "state": [1, 2]}, fh)
        with pytest.raises(RecoveryError, match="not an object"):
            load_latest_snapshot(d)


class TestTempHygiene:
    def test_clean_temp_files(self, tmp_path):
        d = str(tmp_path)
        write_snapshot(d, 1, {"v": 1})
        stranded = os.path.join(d, "snapshot-0000000000000002.json.tmp.999")
        open(stranded, "w").close()
        assert clean_temp_files(d) == 1
        assert not os.path.exists(stranded)
        assert load_latest_snapshot(d) == (1, {"v": 1})
