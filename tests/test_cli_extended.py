"""Tests for the simulate/compare CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.instances import dump_instance


@pytest.fixture
def inst_file(tmp_path, paper_example):
    path = str(tmp_path / "inst.json")
    dump_instance(paper_example, path)
    return path


@pytest.fixture
def placement_file(tmp_path, inst_file):
    out = str(tmp_path / "p.json")
    assert main(["solve", inst_file, "--out", out]) == 0
    return out


class TestSimulateCommand:
    def test_deterministic(self, inst_file, placement_file, capsys):
        rc = main(["simulate", inst_file, placement_file, "--horizon", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served" in out and "0 overloaded windows" in out

    def test_poisson(self, inst_file, placement_file, capsys):
        rc = main(
            [
                "simulate", inst_file, placement_file,
                "--workload", "poisson", "--horizon", "5", "--seed", "2",
            ]
        )
        assert rc == 0
        assert "served" in capsys.readouterr().out

    def test_invalid_placement_refused(self, tmp_path, inst_file, placement_file, capsys):
        data = json.loads(open(placement_file).read())
        data["assignments"] = data["assignments"][:-1]
        with open(placement_file, "w") as fh:
            json.dump(data, fh)
        rc = main(["simulate", inst_file, placement_file])
        assert rc == 1
        assert "refusing" in capsys.readouterr().out


class TestCompareCommand:
    def test_default_set(self, inst_file, capsys):
        rc = main(["compare", inst_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "single-gen" in out and "lower bound" in out

    def test_explicit_algorithms(self, inst_file, capsys):
        rc = main(
            [
                "compare", inst_file,
                "--algorithms", "single-gen", "exact", "local",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_inapplicable_algorithm_reported_not_fatal(self, inst_file, capsys):
        # single-nod refuses distance-constrained instances; compare
        # (through the service) reports the declared inapplicability
        # reason and keeps going.
        rc = main(
            ["compare", inst_file, "--algorithms", "single-nod", "single-gen"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "NoD variants only" in out
        assert "single-gen" in out

    def test_single_push_available(self, tmp_path, paper_example, capsys):
        inst = paper_example.without_distance()
        path = str(tmp_path / "nod.json")
        dump_instance(inst, path)
        rc = main(["compare", path, "--algorithms", "single-push", "single-nod"])
        assert rc == 0
        assert "single-push" in capsys.readouterr().out
