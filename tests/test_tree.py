"""Unit tests for the tree substrate (repro.core.tree)."""

from __future__ import annotations

import math

import pytest

from repro import InvalidTreeError, Tree, TreeBuilder
from repro.core.tree import NO_PARENT


def chain(n: int, delta: float = 1.0, leaf_requests: int = 3) -> Tree:
    parents = [NO_PARENT] + list(range(n - 1))
    deltas = [math.inf] + [delta] * (n - 1)
    requests = [0] * (n - 1) + [leaf_requests]
    return Tree(parents, deltas, requests)


class TestConstruction:
    def test_single_node(self):
        t = Tree([NO_PARENT], [math.inf], [5])
        assert len(t) == 1
        assert t.is_leaf(0)
        assert t.clients == (0,)
        assert t.requests(0) == 5

    def test_simple_chain(self):
        t = chain(4)
        assert t.parent(3) == 2
        assert t.parent(0) == NO_PARENT
        assert t.children(0) == (1,)
        assert t.is_internal(0) and t.is_leaf(3)

    def test_root_delta_is_infinite(self):
        t = chain(3)
        assert math.isinf(t.delta(0))

    def test_root_delta_overridden(self):
        # Whatever value is passed for the root delta, it reads as inf.
        t = Tree([NO_PARENT, 0], [7.0, 2.0], [0, 1])
        assert math.isinf(t.delta(0))
        assert t.delta(1) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidTreeError):
            Tree([], [], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 0], [math.inf], [0, 1])

    def test_rejects_non_root_first_node(self):
        with pytest.raises(InvalidTreeError):
            Tree([0, NO_PARENT], [1.0, math.inf], [1, 0])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 5], [math.inf, 1.0], [0, 1])

    def test_rejects_self_parent(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 1], [math.inf, 1.0], [0, 1])

    def test_rejects_cycle(self):
        # 1 -> 2 -> 1 cycle detached from the root.
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 2, 1], [math.inf, 1.0, 1.0], [0, 0, 0])

    def test_rejects_negative_distance(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 0], [math.inf, -1.0], [0, 1])

    def test_rejects_nan_distance(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 0], [math.inf, float("nan")], [0, 1])

    def test_rejects_negative_requests(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 0], [math.inf, 1.0], [0, -2])

    def test_rejects_internal_requests(self):
        with pytest.raises(InvalidTreeError):
            Tree([NO_PARENT, 0, 1], [math.inf, 1.0, 1.0], [0, 4, 1])

    def test_zero_distance_edge_allowed(self):
        t = Tree([NO_PARENT, 0], [math.inf, 0.0], [0, 1])
        assert t.delta(1) == 0.0


class TestAccessors:
    def test_clients_and_internal_partition(self, paper_example):
        t = paper_example.tree
        assert set(t.clients) | set(t.internal_nodes) == set(range(len(t)))
        assert not set(t.clients) & set(t.internal_nodes)

    def test_arity(self, paper_example):
        assert paper_example.tree.arity == 2
        assert paper_example.tree.is_binary

    def test_arity_wide(self):
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(5):
            b.add(r, requests=1)
        assert b.build().arity == 5

    def test_total_and_max_requests(self, paper_example):
        t = paper_example.tree
        assert t.total_requests == 4 + 3 + 5 + 2
        assert t.max_request == 5

    def test_depth_weighted(self, paper_example):
        t = paper_example.tree
        assert t.depth(0) == 0.0
        # c4 hangs under n1 (delta 1) with edge 2 -> depth 3.
        assert t.depth(4) == pytest.approx(3.0)


class TestTraversals:
    def test_topological_order_parents_first(self):
        t = chain(6)
        order = t.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for v in range(1, len(t)):
            assert pos[t.parent(v)] < pos[v]

    def test_postorder_children_first(self):
        t = chain(6)
        pos = {v: i for i, v in enumerate(t.postorder())}
        for v in range(1, len(t)):
            assert pos[v] < pos[t.parent(v)]

    def test_subtree(self, paper_example):
        t = paper_example.tree
        assert set(t.subtree(0)) == set(range(len(t)))
        assert set(t.subtree(1)) == {1, 3, 4}

    def test_subtree_clients(self, paper_example):
        t = paper_example.tree
        assert set(t.subtree_clients(2)) == {5, 6}

    def test_path_to_root(self, paper_example):
        t = paper_example.tree
        assert t.path_to_root(3) == [3, 1, 0]
        assert t.path_to_root(0) == [0]

    def test_deep_tree_no_recursion_error(self):
        t = chain(50_000)
        assert len(list(t.postorder())) == 50_000
        assert len(t.subtree(0)) == 50_000
        assert t.depth(49_999) == pytest.approx(49_999.0)


class TestDistances:
    def test_distance_to_ancestor(self, paper_example):
        t = paper_example.tree
        assert t.distance_to_ancestor(4, 1) == pytest.approx(2.0)
        assert t.distance_to_ancestor(4, 0) == pytest.approx(3.0)
        assert t.distance_to_ancestor(4, 4) == 0.0

    def test_distance_to_non_ancestor_raises(self, paper_example):
        t = paper_example.tree
        with pytest.raises(InvalidTreeError):
            t.distance_to_ancestor(4, 2)

    def test_is_ancestor(self, paper_example):
        t = paper_example.tree
        assert t.is_ancestor(0, 4)
        assert t.is_ancestor(4, 4)
        assert not t.is_ancestor(2, 4)
        assert not t.is_ancestor(4, 0)

    def test_eligible_servers_unbounded(self, paper_example):
        t = paper_example.tree
        elig = t.eligible_servers(4, None)
        assert [s for s, _ in elig] == [4, 1, 0]
        assert [d for _, d in elig] == pytest.approx([0.0, 2.0, 3.0])

    def test_eligible_servers_cutoff(self, paper_example):
        t = paper_example.tree
        elig = t.eligible_servers(4, 2.5)
        assert [s for s, _ in elig] == [4, 1]

    def test_eligible_servers_exact_boundary_included(self, paper_example):
        t = paper_example.tree
        elig = t.eligible_servers(4, 3.0)
        assert [s for s, _ in elig] == [4, 1, 0]

    def test_client_always_self_eligible(self, paper_example):
        t = paper_example.tree
        assert t.eligible_servers(4, 0.0)[0] == (4, 0.0)


class TestBuilder:
    def test_build_and_ids(self):
        b = TreeBuilder()
        r = b.add_root()
        a = b.add(r, delta=2.0)
        c = b.add(a, delta=1.0, requests=7)
        t = b.build()
        assert (r, a, c) == (0, 1, 2)
        assert t.requests(c) == 7
        assert t.delta(a) == 2.0

    def test_double_root_rejected(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(InvalidTreeError):
            b.add_root()

    def test_add_before_root_rejected(self):
        b = TreeBuilder()
        with pytest.raises(InvalidTreeError):
            b.add(0)

    def test_unknown_parent_rejected(self):
        b = TreeBuilder()
        b.add_root()
        with pytest.raises(InvalidTreeError):
            b.add(3)

    def test_add_chain(self):
        b = TreeBuilder()
        r = b.add_root()
        ids = b.add_chain(r, [1.0, 2.0, 3.0])
        b.add(ids[-1], requests=1)
        t = b.build()
        assert t.depth(ids[-1]) == pytest.approx(6.0)

    def test_n_nodes(self):
        b = TreeBuilder()
        b.add_root()
        b.add(0)
        assert b.n_nodes == 2


class TestCopiesAndEquality:
    def test_from_edges(self):
        t = Tree.from_edges(
            3, [(0, 1, 2.0), (1, 2, 3.0)], {2: 9}
        )
        assert t.requests(2) == 9
        assert t.delta(2) == 3.0

    def test_from_edges_two_parents_rejected(self):
        with pytest.raises(InvalidTreeError):
            Tree.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)], {})

    def test_with_requests(self, paper_example):
        t = paper_example.tree
        t2 = t.with_requests([0, 0, 0, 1, 1, 1, 1])
        assert t2.total_requests == 4
        assert t.total_requests == 14  # original untouched

    def test_with_deltas(self, paper_example):
        t = paper_example.tree
        t2 = t.with_deltas([math.inf] + [5.0] * 6)
        assert t2.delta(3) == 5.0

    def test_equality_and_hash(self):
        a, b = chain(4), chain(4)
        assert a == b and hash(a) == hash(b)
        assert a != chain(4, delta=2.0)
