"""JSON-lines result store: round-trip, resume keys, crash tolerance."""

from __future__ import annotations

import json

from repro.runner import ResultStore, SolveResult


def _result(solver="single-gen", instance="inst-a", seed=3, **kw) -> SolveResult:
    defaults = dict(
        status="ok",
        n_replicas=4,
        lower_bound=3,
        wall_time=0.125,
        counters={"nodes_expanded": 42},
        replicas=[1, 5, 7, 9],
        error=None,
    )
    defaults.update(kw)
    return SolveResult(solver=solver, instance=instance, seed=seed, **defaults)


class TestRoundTrip:
    def test_append_then_load_identical(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        original = _result()
        store.append(original)
        loaded = store.load()
        assert len(loaded) == 1
        got = loaded[0]
        assert got.cached is True
        got.cached = False  # transport flag, not part of the payload
        assert got == original

    def test_all_statuses_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        rows = [
            _result(instance=f"i{k}", status=s, n_replicas=None, error="x: y")
            for k, s in enumerate(
                ["ok", "invalid", "infeasible", "inapplicable",
                 "budget", "timeout", "error"]
            )
        ]
        store.extend(rows)
        assert [r.status for r in store] == [r.status for r in rows]

    def test_rows_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_result())
        store.append(_result(instance="inst-b"))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(ln), dict) for ln in lines)


class TestResumeSemantics:
    def test_completed_keys_match_result_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        a, b = _result(), _result(solver="local")
        store.extend([a, b])
        assert store.completed_keys() == {a.key, b.key}
        assert a.key == "inst-a@3::single-gen"

    def test_latest_wins_on_duplicate_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(_result(n_replicas=9))
        store.append(_result(n_replicas=4))
        latest = store.latest()
        assert len(latest) == 1
        assert next(iter(latest.values())).n_replicas == 4

    def test_truncated_trailing_row_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"solver": "local", "instance": "half')  # simulated crash
        assert len(store.load()) == 1

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "nope.jsonl"))
        assert store.load() == []
        assert store.completed_keys() == set()

    def test_unknown_extra_keys_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        row = _result().to_dict()
        row["future_field"] = {"nested": True}
        path.write_text(json.dumps(row) + "\n")
        loaded = ResultStore(str(path)).load()
        assert loaded[0].solver == "single-gen"


class TestSweepAggregation:
    def test_zero_replica_optimum_still_credited(self):
        # A demand-free instance has a 0-replica optimum; the solver
        # matching it must win and be ratio-1, not fall out of the stats.
        from repro.analysis import summarize_sweep

        rows = [
            _result(solver="a", n_replicas=0, replicas=[]),
            _result(solver="b", n_replicas=2, replicas=[1, 2]),
        ]
        by_name = {s.solver: s for s in summarize_sweep(rows)}
        assert by_name["a"].wins == 1
        assert by_name["a"].mean_ratio == 1.0
        assert by_name["b"].wins == 0

    def test_failed_rows_counted_not_ranked(self):
        from repro.analysis import summarize_sweep

        rows = [
            _result(solver="a"),
            _result(solver="b", status="timeout", n_replicas=None),
            _result(solver="b", instance="inst-c", status="error",
                    n_replicas=None, error="X: y"),
        ]
        by_name = {s.solver: s for s in summarize_sweep(rows)}
        assert by_name["b"].timeouts == 1 and by_name["b"].errors == 1
        assert by_name["b"].mean_ratio is None
        assert by_name["a"].wins == 1
