"""JSON-lines result store: round-trip, resume keys, crash tolerance."""

from __future__ import annotations

import json

from repro.runner import ResultStore, SolveResult


def _result(solver="single-gen", instance="inst-a", seed=3, **kw) -> SolveResult:
    defaults = dict(
        status="ok",
        n_replicas=4,
        lower_bound=3,
        wall_time=0.125,
        counters={"nodes_expanded": 42},
        replicas=[1, 5, 7, 9],
        error=None,
    )
    defaults.update(kw)
    return SolveResult(solver=solver, instance=instance, seed=seed, **defaults)


class TestRoundTrip:
    def test_append_then_load_identical(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        original = _result()
        store.append(original)
        loaded = store.load()
        assert len(loaded) == 1
        got = loaded[0]
        assert got.cached is True
        got.cached = False  # transport flag, not part of the payload
        assert got == original

    def test_all_statuses_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        rows = [
            _result(instance=f"i{k}", status=s, n_replicas=None, error="x: y")
            for k, s in enumerate(
                ["ok", "invalid", "infeasible", "inapplicable",
                 "budget", "timeout", "error"]
            )
        ]
        store.extend(rows)
        assert [r.status for r in store] == [r.status for r in rows]

    def test_rows_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_result())
        store.append(_result(instance="inst-b"))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(ln), dict) for ln in lines)


class TestResumeSemantics:
    def test_completed_keys_match_result_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        a, b = _result(), _result(solver="local")
        store.extend([a, b])
        assert store.completed_keys() == {a.key, b.key}
        assert a.key == "inst-a@3::single-gen"

    def test_latest_wins_on_duplicate_keys(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(_result(n_replicas=9))
        store.append(_result(n_replicas=4))
        latest = store.latest()
        assert len(latest) == 1
        assert next(iter(latest.values())).n_replicas == 4

    def test_truncated_trailing_row_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"solver": "local", "instance": "half')  # simulated crash
        assert len(store.load()) == 1

    def test_append_after_truncated_tail_confines_damage(self, tmp_path):
        """Regression: appending after a torn row must not merge with it.

        Before the store used
        :func:`repro.storage.fsutil.durable_append_line`, the first
        append after a crash concatenated onto the torn fragment,
        corrupting *both* rows; now the fragment is newline-terminated
        first and only it is lost.
        """
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"solver": "local", "instance": "half')  # no newline
        store.append(_result(instance="inst-b"))  # the post-restart append
        assert [r.instance for r in store.load()] == ["inst-a", "inst-b"]
        # The torn fragment sits alone on its own line, skipped as
        # malformed JSON by the reader.
        assert len(path.read_text().splitlines()) == 3

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "nope.jsonl"))
        assert store.load() == []
        assert store.completed_keys() == set()

    def test_unknown_extra_keys_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        row = _result().to_dict()
        row["future_field"] = {"nested": True}
        path.write_text(json.dumps(row) + "\n")
        loaded = ResultStore(str(path)).load()
        assert loaded[0].solver == "single-gen"


class TestSweepAggregation:
    def test_zero_replica_optimum_still_credited(self):
        # A demand-free instance has a 0-replica optimum; the solver
        # matching it must win and be ratio-1, not fall out of the stats.
        from repro.analysis import summarize_sweep

        rows = [
            _result(solver="a", n_replicas=0, replicas=[]),
            _result(solver="b", n_replicas=2, replicas=[1, 2]),
        ]
        by_name = {s.solver: s for s in summarize_sweep(rows)}
        assert by_name["a"].wins == 1
        assert by_name["a"].mean_ratio == 1.0
        assert by_name["b"].wins == 0

    def test_failed_rows_counted_not_ranked(self):
        from repro.analysis import summarize_sweep

        rows = [
            _result(solver="a"),
            _result(solver="b", status="timeout", n_replicas=None),
            _result(solver="b", instance="inst-c", status="error",
                    n_replicas=None, error="X: y"),
        ]
        by_name = {s.solver: s for s in summarize_sweep(rows)}
        assert by_name["b"].timeouts == 1 and by_name["b"].errors == 1
        assert by_name["b"].mean_ratio is None
        assert by_name["a"].wins == 1


class TestMetadata:
    def test_metadata_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.write_metadata({"seed": 7, "generator": "default_corpus"})
        assert store.metadata() == {"seed": 7, "generator": "default_corpus"}

    def test_metadata_rows_invisible_to_result_iteration(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.write_metadata({"seed": 1})
        store.append(_result())
        store.write_metadata({"budget": 100})
        assert len(store.load()) == 1
        assert len(store) == 1
        assert store.completed_keys() == {_result().key}

    def test_later_metadata_wins_key_by_key(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.write_metadata({"seed": 1, "generator": "default_corpus"})
        store.write_metadata({"seed": 2})
        assert store.metadata() == {"seed": 2, "generator": "default_corpus"}

    def test_pre_metadata_stores_read_unchanged(self, tmp_path):
        # Stores written before the metadata format existed: plain
        # result rows only, metadata() is simply empty.
        path = str(tmp_path / "old.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_result().to_dict()) + "\n")
        store = ResultStore(path)
        assert len(store.load()) == 1
        assert store.metadata() == {}

    def test_metadata_on_missing_store_is_empty(self, tmp_path):
        assert ResultStore(str(tmp_path / "absent.jsonl")).metadata() == {}

    def test_sweep_cli_persists_seed_and_specs(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "sweep.jsonl")
        rc = main([
            "sweep", "--limit", "1", "--seed", "11", "--workers", "1",
            "--solvers", "local", "--out", out,
        ])
        assert rc == 0
        meta = ResultStore(out).metadata()
        assert meta["seed"] == 11
        assert meta["generator"] == "default_corpus"
        assert meta["solvers"] == ["local"]
        assert len(meta["specs"]) == 1
        assert meta["specs"][0]["seed"] == 11

        # The persisted specs regenerate the exact same instances.
        from repro.instances import make_instance

        inst = make_instance(meta["specs"][0])
        assert inst.name == meta["specs"][0]["name"]
