"""Tests for the general-graph front end (repro.graphs)."""

from __future__ import annotations

import math

import pytest

from repro import InvalidInstanceError, Policy, is_valid
from repro.algorithms import single_gen
from repro.graphs import WeightedGraph, dijkstra, extract_spanning_instance


def ring(n: int, w: float = 1.0) -> WeightedGraph:
    g = WeightedGraph(n)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, w)
    return g


class TestWeightedGraph:
    def test_edges(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 2.0)
        assert g.n_edges == 1
        assert (1, 2.0) in g.neighbors(0)
        assert (0, 2.0) in g.neighbors(1)

    def test_rejects_bad_edges(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            WeightedGraph(0)

    def test_from_edges(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.n_edges == 2


class TestDijkstra:
    def test_ring_distances(self):
        dist, parent = dijkstra(ring(6), 0)
        assert dist == [0.0, 1.0, 2.0, 3.0, 2.0, 1.0]
        assert parent[0] == -1

    def test_unreachable(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        dist, parent = dijkstra(g, 0)
        assert math.isinf(dist[3]) and parent[3] == -1

    def test_prefers_shorter_multi_hop(self):
        g = WeightedGraph(3)
        g.add_edge(0, 2, 10.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 3.0)
        dist, parent = dijkstra(g, 0)
        assert dist[2] == 5.0 and parent[2] == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_against_networkx(self, seed):
        nx = pytest.importorskip("networkx")
        import numpy as np

        rng = np.random.default_rng(seed)
        n = 15
        g = WeightedGraph(n)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        for _ in range(35):
            u, v = rng.integers(0, n, size=2)
            if u == v or G.has_edge(int(u), int(v)):
                continue
            w = float(rng.uniform(0.5, 5.0))
            g.add_edge(int(u), int(v), w)
            G.add_edge(int(u), int(v), weight=w)
        dist, _ = dijkstra(g, 0)
        ref = nx.single_source_dijkstra_path_length(G, 0)
        for v in range(n):
            if v in ref:
                assert dist[v] == pytest.approx(ref[v])
            else:
                assert math.isinf(dist[v])


class TestSpanningExtraction:
    def test_distances_preserved(self):
        g = ring(6)
        inst, client_of = extract_spanning_instance(
            g, 0, {3: 5}, capacity=10, dmax=4.0
        )
        t = inst.tree
        c = client_of[3]
        # Tree distance from the client to the root == graph distance.
        assert t.distance_to_ancestor(c, t.root) == pytest.approx(3.0)

    def test_internal_demand_gets_stub(self):
        # Vertex 1 is on the shortest path 0-1-2 and also demands.
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        inst, client_of = extract_spanning_instance(
            g, 0, {1: 4, 2: 2}, capacity=10
        )
        t = inst.tree
        stub = client_of[1]
        assert t.is_leaf(stub)
        assert t.delta(stub) == 0.0
        assert t.requests(stub) == 4

    def test_unreachable_demand_rejected(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(InvalidInstanceError):
            extract_spanning_instance(g, 0, {3: 2}, capacity=5)

    def test_unreachable_zero_demand_dropped(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        inst, _ = extract_spanning_instance(g, 0, {1: 2}, capacity=5)
        assert len(inst.tree) == 2

    def test_end_to_end_solve(self):
        # A small mesh: extract the SPT and place replicas on it.
        g = WeightedGraph(8)
        edges = [
            (0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.0), (1, 4, 2.0),
            (2, 5, 1.0), (3, 6, 1.0), (4, 7, 1.0), (5, 7, 2.0),
            (6, 7, 5.0), (2, 4, 0.5),
        ]
        for u, v, w in edges:
            g.add_edge(u, v, w)
        demands = {3: 4, 5: 3, 6: 2, 7: 5}
        inst, client_of = extract_spanning_instance(
            g, 0, demands, capacity=8, dmax=6.0, policy=Policy.SINGLE
        )
        p = single_gen(inst)
        assert is_valid(inst, p)
        served = sum(p.served_amount(client_of[v]) for v in demands)
        assert served == sum(demands.values())
