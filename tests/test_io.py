"""Tests for serialization (repro.instances.io)."""

from __future__ import annotations

import json

import pytest

from repro import InvalidInstanceError, Placement, Policy
from repro.algorithms import single_gen
from repro.instances import (
    dump_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    placement_from_dict,
    placement_to_dict,
    random_tree,
    to_dot,
)


class TestInstanceRoundTrip:
    def test_round_trip(self, paper_example):
        data = instance_to_dict(paper_example)
        back = instance_from_dict(data)
        assert back.tree == paper_example.tree
        assert back.capacity == paper_example.capacity
        assert back.dmax == paper_example.dmax
        assert back.policy is paper_example.policy

    def test_round_trip_nod(self, paper_example):
        inst = paper_example.without_distance()
        back = instance_from_dict(instance_to_dict(inst))
        assert back.dmax is None

    def test_json_serialisable(self, paper_example):
        # inf deltas are mapped to null: plain json must accept it.
        s = json.dumps(instance_to_dict(paper_example))
        assert "Infinity" not in s

    def test_file_round_trip(self, tmp_path, paper_example):
        path = str(tmp_path / "inst.json")
        dump_instance(paper_example, path)
        assert load_instance(path).tree == paper_example.tree

    def test_bad_schema_rejected(self, paper_example):
        data = instance_to_dict(paper_example)
        data["schema"] = 999
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_policy_round_trip(self, paper_example):
        inst = paper_example.with_policy(Policy.MULTIPLE)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.policy is Policy.MULTIPLE

    def test_random_instance_round_trip(self):
        inst = random_tree(6, 12, capacity=15, dmax=5.5, seed=9)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.tree == inst.tree


class TestPlacementRoundTrip:
    def test_round_trip(self, paper_example):
        p = single_gen(paper_example)
        back = placement_from_dict(placement_to_dict(p))
        assert back == p

    def test_empty(self):
        p = Placement([], {})
        assert placement_from_dict(placement_to_dict(p)) == p


class TestDot:
    def test_contains_all_nodes_and_edges(self, paper_example):
        dot = to_dot(paper_example)
        assert dot.startswith("digraph")
        t = paper_example.tree
        for v in range(len(t)):
            assert f"\n  {v} [" in dot
        assert dot.count("->") == len(t) - 1

    def test_replicas_double_circled(self, paper_example):
        p = single_gen(paper_example)
        dot = to_dot(paper_example, p)
        assert "peripheries=2" in dot
