"""Batch runner: parallel fan-out, per-task timeouts, resumability."""

from __future__ import annotations

import time

import pytest

from repro.core.placement import Placement
from repro.runner import (
    ResultStore,
    SweepTask,
    default_corpus,
    register_solver,
    run_sweep,
    tasks_for_corpus,
    unregister_solver,
)

FAST = ["single-gen", "greedy-packing", "local"]


def _star_spec(name="tiny", seed=0):
    return {
        "name": name, "kind": "star", "n_clients": 4,
        "capacity": 9, "seed": seed, "policy": "single",
    }


@pytest.fixture
def sleepy_solver():
    name = "sleepy-test-solver"
    unregister_solver(name)

    @register_solver(name, description="sleeps well past any test timeout")
    def sleepy(instance):
        time.sleep(30)
        return Placement([], {})  # pragma: no cover - timeout fires first

    yield name
    unregister_solver(name)


class TestCorpusTasks:
    def test_default_corpus_is_deterministic_and_named(self):
        a, b = default_corpus(), default_corpus()
        assert a == b
        assert len(a) >= 20
        names = [s["name"] for s in a]
        assert len(set(names)) == len(names)

    def test_limit_truncates(self):
        assert len(default_corpus(limit=4)) == 4

    def test_inapplicable_pairs_are_dropped(self):
        # single-nod cannot run on distance-constrained instances; the
        # task cross product must not schedule those pairs.
        specs = default_corpus()
        tasks = tasks_for_corpus(specs, ["single-nod"])
        assert tasks
        assert all(t.spec.get("dmax") is None for t in tasks)

    def test_without_solver_list_every_applicable_solver_runs(self):
        tasks = tasks_for_corpus([_star_spec()])
        names = {t.solver for t in tasks}
        assert {"single-gen", "greedy-packing", "local"} <= names
        assert "multiple-bin" not in names  # wrong policy


class TestRunSweep:
    def test_serial_runs_all_tasks(self):
        tasks = tasks_for_corpus([_star_spec(seed=s) for s in (1, 2)], FAST)
        out = run_sweep(tasks, workers=1)
        assert out.n_run == len(tasks) == 6
        assert all(r.ok for r in out.results)

    def test_parallel_matches_serial(self):
        tasks = tasks_for_corpus(
            [_star_spec(name=f"s{k}", seed=k) for k in range(3)], FAST
        )
        serial = run_sweep(tasks, workers=1)
        parallel = run_sweep(tasks, workers=4)
        key = lambda r: (r.key, r.status, r.n_replicas)  # noqa: E731
        assert sorted(map(key, serial.results)) == sorted(map(key, parallel.results))

    def test_timeout_serial(self, sleepy_solver):
        task = SweepTask(solver=sleepy_solver, spec=_star_spec(), timeout=0.2)
        t0 = time.time()
        out = run_sweep([task], workers=1)
        assert time.time() - t0 < 5
        assert out.results[0].status == "timeout"

    def test_timeout_parallel_fork_inherits_registration(self, sleepy_solver):
        tasks = [
            SweepTask(solver=sleepy_solver, spec=_star_spec(name=f"t{k}"), timeout=0.2)
            for k in range(2)
        ]
        out = run_sweep(tasks, workers=2, resume=False)
        assert [r.status for r in out.results] == ["timeout", "timeout"]

    def test_bad_spec_is_an_error_row(self):
        task = SweepTask(solver="single-gen", spec={"name": "x", "kind": "no-such"})
        out = run_sweep([task], workers=1)
        assert out.results[0].status == "error"
        assert "no-such" in out.results[0].error


class TestResumability:
    def test_second_run_skips_completed_rows(self, tmp_path):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        tasks = tasks_for_corpus(default_corpus(limit=3), FAST)
        first = run_sweep(tasks, workers=1, store=store)
        rows_after_first = len(store)
        second = run_sweep(tasks, workers=1, store=store)
        assert first.n_run == len(tasks)
        assert second.n_run == 0
        assert second.n_skipped == len(tasks)
        assert len(store) == rows_after_first  # nothing re-appended
        assert all(r.cached for r in second.results)

    def test_partial_store_runs_only_missing_tasks(self, tmp_path):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        tasks = tasks_for_corpus(default_corpus(limit=3), FAST)
        run_sweep(tasks[:4], workers=1, store=store)
        out = run_sweep(tasks, workers=1, store=store)
        assert out.n_skipped == 4
        assert out.n_run == len(tasks) - 4

    def test_error_rows_are_retried_on_resume(self, tmp_path):
        # A crash is typically transient: resume must recompute it
        # rather than pinning the sweep to the stale error row forever.
        name = "flaky-test-solver"
        unregister_solver(name)
        marker = tmp_path / "crashed-once"

        @register_solver(name, description="crashes on first call only")
        def flaky(instance):
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient crash")
            from repro.algorithms import local_placement

            return local_placement(instance)

        try:
            store = ResultStore(str(tmp_path / "sweep.jsonl"))
            task = SweepTask(solver=name, spec=_star_spec())
            first = run_sweep([task], workers=1, store=store)
            assert first.results[0].status == "error"
            second = run_sweep([task], workers=1, store=store)
            assert second.n_run == 1 and second.n_skipped == 0
            assert second.results[0].status == "ok"
            # latest() supersedes the error row, so a third run caches.
            third = run_sweep([task], workers=1, store=store)
            assert third.n_skipped == 1
        finally:
            unregister_solver(name)

    def test_timeout_rows_stay_cached_unless_asked(self, tmp_path, sleepy_solver):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        task = SweepTask(solver=sleepy_solver, spec=_star_spec(), timeout=0.2)
        run_sweep([task], workers=1, store=store)
        resumed = run_sweep([task], workers=1, store=store)
        assert resumed.n_skipped == 1  # deterministic outcome: cached
        retried = run_sweep(
            [task], workers=1, store=store,
            retry_statuses=("error", "timeout"),
        )
        assert retried.n_run == 1

    def test_no_resume_recomputes(self, tmp_path):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        tasks = tasks_for_corpus(default_corpus(limit=2), ["single-gen"])
        run_sweep(tasks, workers=1, store=store)
        out = run_sweep(tasks, workers=1, store=store, resume=False)
        assert out.n_run == len(tasks)
        assert len(store) == 2 * len(tasks)


def _multi_nod_spec(seed):
    return {
        "kind": "random_tree", "name": f"multi{seed}", "n_internal": 4,
        "n_clients": 8, "capacity": 10, "dmax": None,
        "policy": "multiple", "seed": seed,
    }


class TestBatchedSweep:
    """``run_sweep(batch=True)`` — the vectorised DP fast path."""

    @staticmethod
    def _rows(outcome):
        """Row content minus wall_time (amortised on the batched path)."""
        return sorted(
            (
                r.solver, r.instance, r.seed, r.status, r.n_replicas,
                r.lower_bound, tuple(r.replicas or ()), r.error,
            )
            for r in outcome.results
        )

    def test_batched_rows_equal_sequential_rows(self):
        specs = [_multi_nod_spec(s) for s in range(4)]
        tasks = tasks_for_corpus(specs, ["multiple-nod-dp"])
        assert len(tasks) == 4
        batched = run_sweep(tasks, workers=1, batch=True)
        sequential = run_sweep(tasks, workers=1, batch=False)
        assert batched.n_run == sequential.n_run == 4
        assert self._rows(batched) == self._rows(sequential)

    def test_timeout_tasks_stay_on_the_sequential_path(self, sleepy_solver):
        # A timeout-carrying DP task cannot be interrupted inside an
        # array program, so batch=True must leave it to SIGALRM.
        tasks = [
            SweepTask(solver="multiple-nod-dp", spec=_multi_nod_spec(0),
                      timeout=30.0),
            SweepTask(solver="multiple-nod-dp", spec=_multi_nod_spec(1)),
            SweepTask(solver="multiple-nod-dp", spec=_multi_nod_spec(2)),
            SweepTask(solver=sleepy_solver, spec=_multi_nod_spec(3),
                      timeout=0.2),
        ]
        out = run_sweep(tasks, workers=1, batch=True)
        by_key = {f"{r.instance}@{r.seed}::{r.solver}": r for r in out.results}
        assert by_key[f"multi3@3::{sleepy_solver}"].status == "timeout"
        for s in range(3):
            assert by_key[f"multi{s}@{s}::multiple-nod-dp"].status == "ok"

    def test_batched_rows_resume_like_sequential_ones(self, tmp_path):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        tasks = tasks_for_corpus(
            [_multi_nod_spec(s) for s in range(3)], ["multiple-nod-dp"]
        )
        first = run_sweep(tasks, workers=1, store=store, batch=True)
        assert first.n_run == 3
        second = run_sweep(tasks, workers=1, store=store, batch=True)
        assert second.n_run == 0 and second.n_skipped == 3
        assert self._rows(first) == self._rows(second)
