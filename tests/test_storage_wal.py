"""WAL framing: round trips, torn-tail tolerance, corruption detection.

The contract under test (see ``docs/durability.md``): damage at the
*end* of the log is expected crash residue and recovery proceeds with
every complete record; the same damage *mid-log* — or any sequence
anomaly — raises a typed ``RecoveryError`` and never silently skips.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.storage import (
    MAX_RECORD_BYTES,
    RecoveryError,
    WriteAheadLog,
    atomic_write_bytes,
    durable_append_line,
    scan_wal,
)
from repro.storage.wal import _FILE_HEADER, _FRAME


def _wal(tmp_path, records) -> str:
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        for seq, payload in records:
            wal.append(seq, payload)
    return path


class TestRoundTrip:
    def test_empty_missing_file(self, tmp_path):
        scan = scan_wal(str(tmp_path / "absent.log"))
        assert scan.records == [] and not scan.torn_tail
        assert scan.last_seq == 0

    def test_append_then_scan(self, tmp_path):
        rows = [(1, b"alpha"), (2, b""), (3, b"x" * 1000)]
        scan = scan_wal(_wal(tmp_path, rows))
        assert scan.records == rows
        assert not scan.torn_tail
        assert scan.last_seq == 3

    def test_header_only_file(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a")])
        with open(path, "r+b") as fh:
            fh.truncate(len(_FILE_HEADER))
        scan = scan_wal(path)
        assert scan.records == [] and not scan.torn_tail

    def test_size_and_valid_bytes_agree(self, tmp_path):
        path = _wal(tmp_path, [(1, b"abc"), (2, b"defg")])
        assert scan_wal(path).valid_bytes == os.path.getsize(path)


class TestTornTails:
    """End-of-file damage is tolerated and reported, never raised."""

    @pytest.mark.parametrize("keep", [1, 5, 11])
    def test_torn_file_header(self, tmp_path, keep):
        path = _wal(tmp_path, [(1, b"a")])
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        scan = scan_wal(path)
        assert scan.records == [] and scan.torn_tail
        assert scan.valid_bytes == 0

    def test_every_truncation_point_recovers(self, tmp_path):
        rows = [(1, b"first"), (2, b"second"), (3, b"third")]
        path = _wal(tmp_path, rows)
        data = open(path, "rb").read()
        # Frame boundaries: header, then header+frame1, ...
        bounds = [len(_FILE_HEADER)]
        for _seq, payload in rows:
            bounds.append(bounds[-1] + _FRAME.size + len(payload))
        for cut in range(len(_FILE_HEADER), len(data) + 1):
            with open(path, "wb") as fh:
                fh.write(data[:cut])
            scan = scan_wal(path)
            n_complete = sum(1 for b in bounds[1:] if b <= cut)
            assert [s for s, _ in scan.records] == list(
                range(1, n_complete + 1)
            ), f"cut at byte {cut}"
            assert scan.torn_tail == (cut not in bounds), f"cut at byte {cut}"

    def test_zero_filled_tail(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a"), (2, b"b")])
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 4096)
        scan = scan_wal(path)
        assert scan.last_seq == 2 and scan.torn_tail

    def test_crc_mismatch_in_final_frame(self, tmp_path):
        path = _wal(tmp_path, [(1, b"aaaa"), (2, b"bbbb")])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 2)  # inside the last frame's payload
            fh.write(b"Z")
        scan = scan_wal(path)
        assert scan.last_seq == 1 and scan.torn_tail

    def test_absurd_length_in_torn_final_header(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a")])
        with open(path, "ab") as fh:
            fh.write(_FRAME.pack(MAX_RECORD_BYTES + 1, 0, 2))
        scan = scan_wal(path)
        assert scan.last_seq == 1 and scan.torn_tail

    def test_truncate_to_valid_allows_clean_reappend(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a"), (2, b"b")])
        with open(path, "ab") as fh:
            fh.write(b"partial-frame-residu")
        wal = WriteAheadLog(path)
        scan = wal.truncate_to_valid()
        assert scan.last_seq == 2 and not scan.torn_tail
        wal.append(3, b"c")
        wal.close()
        healed = scan_wal(path)
        assert [s for s, _ in healed.records] == [1, 2, 3]
        assert not healed.torn_tail

    def test_truncate_torn_header_resets_to_empty(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(_FILE_HEADER[:7])  # crash mid-header
        wal = WriteAheadLog(path)
        wal.truncate_to_valid()
        assert os.path.getsize(path) == 0
        wal.append(1, b"fresh")
        wal.close()
        assert scan_wal(path).records == [(1, b"fresh")]


class TestCorruption:
    """The same defects mid-log are structural damage and raise."""

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(b"NOTAWAL!" + b"\x01\x00\x00\x00" + b"junk" * 10)
        with pytest.raises(RecoveryError, match="bad magic"):
            scan_wal(path)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(b"RPROWAL1" + struct.pack("<I", 99))
        with pytest.raises(RecoveryError, match="version 99"):
            scan_wal(path)

    def test_crc_mismatch_mid_log(self, tmp_path):
        path = _wal(tmp_path, [(1, b"aaaa"), (2, b"bbbb")])
        with open(path, "r+b") as fh:
            fh.seek(len(_FILE_HEADER) + _FRAME.size)  # frame 1 payload
            fh.write(b"Z")
        with pytest.raises(RecoveryError, match="CRC mismatch.*mid-log"):
            scan_wal(path)

    def test_duplicate_sequence_number(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a"), (1, b"a-again")])
        with pytest.raises(RecoveryError, match="does not increase"):
            scan_wal(path)

    def test_regressing_sequence_number(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a"), (2, b"b"), (1, b"zombie")])
        with pytest.raises(RecoveryError, match="does not increase"):
            scan_wal(path)

    def test_sequence_gap(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a"), (3, b"c")])
        with pytest.raises(RecoveryError, match="sequence gap"):
            scan_wal(path)

    def test_absurd_length_mid_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(_FILE_HEADER)
            fh.write(_FRAME.pack(MAX_RECORD_BYTES + 1, 0, 1))
            fh.write(b"x" * (2 * _FRAME.size + MAX_RECORD_BYTES + 1))
        # More data than the declared length follows -> corrupt, not torn.
        with pytest.raises(RecoveryError, match="absurd length"):
            scan_wal(path)


class TestCompaction:
    def test_compact_drops_claimed_prefix(self, tmp_path):
        path = _wal(tmp_path, [(s, f"row{s}".encode()) for s in range(1, 6)])
        wal = WriteAheadLog(path)
        assert wal.compact(3) == 2
        wal.close()
        scan = scan_wal(path)
        assert [s for s, _ in scan.records] == [4, 5]

    def test_compact_everything_leaves_valid_empty_log(self, tmp_path):
        path = _wal(tmp_path, [(1, b"a")])
        wal = WriteAheadLog(path)
        assert wal.compact(1) == 0
        wal.append(2, b"after")
        wal.close()
        assert scan_wal(path).records == [(2, b"after")]


class TestFsutil:
    def test_atomic_write_replaces_and_removes_temp(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert open(path, "rb").read() == b"two"
        assert os.listdir(tmp_path) == ["blob.bin"]

    def test_durable_append_line_basic(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        durable_append_line(path, "first")
        durable_append_line(path, "second")
        assert open(path).read() == "first\nsecond\n"

    def test_durable_append_line_repairs_torn_tail(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        durable_append_line(path, "complete")
        with open(path, "ab") as fh:
            fh.write(b'{"torn": tru')  # crash mid-append, no newline
        durable_append_line(path, "after-crash")
        lines = open(path).read().splitlines()
        # The torn fragment is confined to its own line; both intact
        # rows are readable.
        assert lines == ["complete", '{"torn": tru', "after-crash"]
