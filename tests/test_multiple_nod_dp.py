"""Tests for the Multiple-NoD dynamic program (reference [3]'s result)."""

from __future__ import annotations

import pytest

from repro import (
    Policy,
    PolicyError,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    multiple_nod_dp,
)
from repro.algorithms import exact_multiple, multiple_bin
from repro.core import lower_bound
from repro.instances import random_binary_tree, random_tree


class TestPreconditions:
    def test_rejects_distance_constraint(self, paper_example):
        inst = paper_example.with_policy(Policy.MULTIPLE)
        with pytest.raises(PolicyError):
            multiple_nod_dp(inst)


class TestHandInstances:
    def test_single_client(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=5)
        inst = ProblemInstance(b.build(), 10, None, Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 1

    def test_zero_demand(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        inst = ProblemInstance(b.build(), 10, None, Policy.MULTIPLE)
        assert multiple_nod_dp(inst).n_replicas == 0

    def test_split_saves_a_server(self):
        # Three clients of 4 under one node, W=6: Single needs 3
        # (4+4 > 6), Multiple needs 2 (12 = 2x6 split perfectly).
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        for _ in range(3):
            b.add(n, delta=1.0, requests=4)
        inst = ProblemInstance(b.build(), 6, None, Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2

    def test_volume_bound_met_on_star(self):
        # Star: only the root is shared; 4 clients of 3 and W=6:
        # root absorbs 6, two clients must self-serve: 3 replicas.
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(4):
            b.add(r, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 6, None, Policy.MULTIPLE)
        assert multiple_nod_dp(inst).n_replicas == 3

    def test_oversized_client_handled(self):
        # r_i > W is fine under Multiple-NoD: client 14, W=5, chain of
        # depth 2 above: needs ceil(14/5) = 3 replicas (client + two
        # ancestors).
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=14)
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 3

    def test_oversized_beyond_path_capacity(self):
        # Demand exceeding the whole path capacity is infeasible; the
        # DP cap makes g_root(0) unreachable -> PolicyError (defensive).
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=11)  # path capacity 2*5 = 10
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        with pytest.raises(Exception):
            multiple_nod_dp(inst)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_exact_and_multiple_bin_binary(self, seed):
        inst = random_binary_tree(
            5, 6, capacity=8, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, request_range=(1, 8),
        )
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas
        assert p.n_replicas == multiple_bin(inst).n_replicas

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_exact_wide(self, seed):
        inst = random_tree(
            4, 8, capacity=10, dmax=None, policy=Policy.MULTIPLE,
            seed=seed, max_arity=4, request_range=(1, 10),
        )
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas

    @pytest.mark.parametrize("seed", range(8))
    def test_respects_lower_bound(self, seed):
        inst = random_tree(
            5, 9, capacity=12, dmax=None, policy=Policy.MULTIPLE,
            seed=100 + seed, max_arity=3, request_range=(1, 12),
        )
        p = multiple_nod_dp(inst)
        assert p.n_replicas >= lower_bound(inst)

    def test_oversized_clients_agree_with_exact(self):
        # The regime Theorem 5 talks about — but NoD keeps it easy.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=9)
        b.add(n, delta=1.0, requests=2)
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        p = multiple_nod_dp(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == exact_multiple(inst).n_replicas == 3
