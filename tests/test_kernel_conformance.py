"""Differential kernel-conformance suite: one contract, every backend.

The vectorized kernels of :mod:`repro.core.kernels` and the batched
array program of :mod:`repro.algorithms.batched` are pure performance
work: by contract they change **nothing** observable.  This suite pins
that contract from three directions:

* **Dense backends** — the NumPy and pure-Python implementations of the
  monotone min-plus convolution and the absorb-window step are
  bit-identical to each other *and* to the general quadratic kernel /
  the original object-graph scan — costs **and** argmin tie-breaks —
  over randomized monotone step functions and a fixed adversarial edge
  set (empty, singleton, all-``inf``, all-equal ties, saturating
  windows, ``inf``-prefix tables).
* **Threshold form** — ``table_to_thresholds``/``thresholds_to_table``
  round-trip, and the batched threshold kernels
  (``batch_leaf_thresholds``, ``batch_min_plus_t``, ``batch_absorb_t``)
  match the dense kernels element-for-element across whole batches,
  including the widened top column a table only reaches by absorbing.
* **Solvers** — ``solve_many(batch)`` equals
  ``[multiple_nod_dp(x) for x in batch]`` equals the preserved
  object-graph reference, for mixed-shape batches, delegated instances
  (wrong policy, distance-constrained) and per-instance failures, with
  and without ``return_exceptions``.

Everything here must pass with NumPy **blocked** too: run the file (and
tier 1) under ``REPRO_NO_NUMPY=1`` — the CI ``no-numpy`` leg does; the
NumPy-only tests skip themselves.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import Policy, ProblemInstance, TreeBuilder
from repro.algorithms.batched import solve_many
from repro.algorithms.multiple_nod_dp import multiple_nod_dp
from repro.algorithms.reference import multiple_nod_dp_reference
from repro.core import kernels
from repro.core.errors import PolicyError
from repro.core.kernels import (
    HAVE_NUMPY,
    SENTINEL,
    _absorb_step_py,
    _min_plus_mono_py,
    absorb_step,
    capacity_split,
    leaf_table,
    min_plus,
    min_plus_mono,
    prefix_fit,
    stable_argsort,
    table_to_thresholds,
    thresholds_to_table,
)
from tests.conftest import tree_instances

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)
# Solver-level properties run whole DPs per example; fewer examples.
SOLVER = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=25
)

_INF = float("inf")

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy blocked")


# ----------------------------------------------------------------------
# Strategies: non-increasing step functions with an optional inf prefix
# (the exact invariant every DP table satisfies).
# ----------------------------------------------------------------------
def _build_mono(parts):
    inf_prefix, widths = parts
    table = [_INF] * inf_prefix
    value = float(len(widths))
    for width in widths:
        value -= 1.0
        table.extend([value] * width)
    return table


_mono_tables = st.tuples(
    st.integers(0, 3),
    st.lists(st.integers(1, 4), min_size=1, max_size=5),
).map(_build_mono)


def _naive_absorb(pool, u_cap, W, can_host=True):
    """The original object-graph absorb scan, verbatim (the oracle)."""
    table = [_INF] * (u_cap + 1)
    chose = [-1] * (u_cap + 1)
    for u in range(u_cap + 1):
        if u < len(pool):
            table[u] = pool[u]
        if not can_host:
            continue
        hi = min(u + W, len(pool) - 1)
        for U in range(u + 1, hi + 1):
            val = pool[U] + 1.0
            if val < table[u]:
                table[u] = val
                chose[u] = U
    return table, chose


# ----------------------------------------------------------------------
# Dense backends: NumPy == pure Python == quadratic reference.
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(_mono_tables, _mono_tables, st.integers(0, 40))
def test_min_plus_backends_bit_identical(a, b, cap):
    ref = min_plus(a, b, cap)
    assert _min_plus_mono_py(a, b, cap) == ref
    if HAVE_NUMPY:
        assert kernels._min_plus_mono_numpy(a, b, cap) == ref
    assert min_plus_mono(a, b, cap) == ref


@settings(**COMMON)
@given(_mono_tables, st.integers(0, 30), st.integers(1, 8), st.booleans())
def test_absorb_backends_bit_identical(pool, u_cap, W, can_host):
    ref = _naive_absorb(pool, u_cap, W, can_host)
    assert _absorb_step_py(pool, u_cap, W, can_host) == ref
    if HAVE_NUMPY:
        assert kernels._absorb_step_numpy(pool, u_cap, W, can_host) == ref
    assert absorb_step(pool, u_cap, W, can_host) == ref


# Adversarial step functions: the shapes randomized generation rarely
# hits but the DPs produce at the margins.
_EDGE_TABLES = [
    [],
    [0.0],
    [_INF],
    [_INF, _INF, _INF],
    [2.0, 2.0, 2.0, 2.0],          # one flat level: every split ties
    [_INF, _INF, 3.0, 3.0, 1.0, 0.0],
    [5.0, 4.0, 3.0, 2.0, 1.0, 0.0],  # strictly decreasing: no ties
    [1.0, 1.0, 0.0],
]


@pytest.mark.parametrize("a", _EDGE_TABLES)
@pytest.mark.parametrize("b", _EDGE_TABLES)
@pytest.mark.parametrize("cap", [0, 3, 100])
def test_min_plus_edge_cases(a, b, cap):
    ref = min_plus(a, b, cap)
    assert _min_plus_mono_py(a, b, cap) == ref
    if HAVE_NUMPY:
        assert kernels._min_plus_mono_numpy(a, b, cap) == ref


@pytest.mark.parametrize("pool", _EDGE_TABLES)
@pytest.mark.parametrize(
    "u_cap,W",
    [(0, 1), (4, 1), (2, 100), (10, 3)],  # incl. saturating windows
)
@pytest.mark.parametrize("can_host", [True, False])
def test_absorb_edge_cases(pool, u_cap, W, can_host):
    ref = _naive_absorb(pool, u_cap, W, can_host)
    assert _absorb_step_py(pool, u_cap, W, can_host) == ref
    if HAVE_NUMPY:
        assert kernels._absorb_step_numpy(pool, u_cap, W, can_host) == ref


# ----------------------------------------------------------------------
# Threshold form: conversions round-trip, batch kernels match dense.
# ----------------------------------------------------------------------
def _n_values(table) -> int:
    finite = [int(v) for v in table if v != _INF]
    return max(finite) + 1 if finite else 1


@settings(**COMMON)
@given(_mono_tables)
def test_threshold_round_trip(table):
    t = table_to_thresholds(table, _n_values(table))
    assert thresholds_to_table(t, len(table)) == table
    # Thresholds are non-increasing over the value axis.
    assert all(t[v] >= t[v + 1] for v in range(len(t) - 1))


@pytest.mark.parametrize("table", [[], [_INF], [_INF, _INF]])
def test_threshold_round_trip_unreachable(table):
    t = table_to_thresholds(table, 3)
    assert t == [SENTINEL] * 3
    assert thresholds_to_table(t, len(table)) == [_INF] * len(table)


@needs_numpy
@settings(**COMMON)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 15)),
        min_size=1,
        max_size=6,
    ),
    st.integers(1, 8),
)
def test_batch_leaf_thresholds_match_dense(rs_caps, W):
    rs = [r for r, _c in rs_caps]
    caps = [c for _r, c in rs_caps]
    t = kernels.batch_leaf_thresholds(
        kernels.np.array(rs), kernels.np.array(caps), W
    )
    for i, (r, u_cap) in enumerate(rs_caps):
        assert t[i].tolist() == table_to_thresholds(leaf_table(r, u_cap, W), 2)


@needs_numpy
@settings(**COMMON)
@given(
    st.lists(
        st.tuples(_mono_tables, _mono_tables, st.integers(0, 30)),
        min_size=1,
        max_size=5,
    )
)
def test_batch_min_plus_matches_dense(cases):
    np = kernels.np
    va = max(_n_values(a) for a, _b, _c in cases)
    vb = max(_n_values(b) for _a, b, _c in cases)
    ta = np.array(
        [table_to_thresholds(a, va) for a, _b, _c in cases], dtype=np.int32
    )
    tb = np.array(
        [table_to_thresholds(b, vb) for _a, b, _c in cases], dtype=np.int32
    )
    len_a = np.array([len(a) for a, _b, _c in cases], dtype=np.int64)
    len_b = np.array([len(b) for _a, b, _c in cases], dtype=np.int64)
    cap = np.array([c for _a, _b, c in cases], dtype=np.int64)
    t_out, len_out = kernels.batch_min_plus_t(ta, len_a, tb, len_b, cap)
    for i, (a, b, c) in enumerate(cases):
        dense, _arg = min_plus(a, b, c)
        assert int(len_out[i]) == len(dense)
        assert t_out[i].tolist() == table_to_thresholds(dense, va + vb - 1)


@st.composite
def _pools_with_caps(draw):
    """Pools with in-range caps: ``u_cap ≤ len(pool) − 1``, the DP's
    invariant — a larger cap would append an ``inf`` *suffix* to the
    dense table, which the (monotone) threshold form cannot encode and
    the forward pass never produces."""
    out = []
    for _ in range(draw(st.integers(1, 5))):
        pool = draw(_mono_tables)
        out.append((pool, draw(st.integers(0, len(pool) - 1))))
    return out


@needs_numpy
@settings(**COMMON)
@given(_pools_with_caps(), st.integers(1, 8))
def test_batch_absorb_matches_dense(pools_caps, W):
    np = kernels.np
    vp = max(_n_values(pool) for pool, _c in pools_caps)
    t_pool = np.array(
        [table_to_thresholds(pool, vp) for pool, _c in pools_caps],
        dtype=np.int32,
    )
    len_pool = np.array([len(p) for p, _c in pools_caps], dtype=np.int64)
    u_cap = np.array([c for _p, c in pools_caps], dtype=np.int64)
    t_tab, len_tab = kernels.batch_absorb_t(t_pool, len_pool, u_cap, W)
    for i, (pool, c) in enumerate(pools_caps):
        dense, _chose = _absorb_step_py(pool, c, W)
        assert int(len_tab[i]) == len(dense)
        assert t_tab[i].tolist() == table_to_thresholds(dense, vp + 1)


@needs_numpy
def test_batch_absorb_top_column_inherits_pool():
    """The widened top value must inherit the pool's last threshold.

    Pool ``[0]`` with an empty absorb window (no valid absorb source):
    the table still reaches value 1 at ``u = 0`` — a table at value 0
    is also at value ≤ 1 — so ``T[1] = 0``.  A kernel deriving the new
    top column from the absorb candidates alone would report it
    unreachable (``SENTINEL``) and poison every convolution stacked on
    top.
    """
    np = kernels.np
    t_pool = np.array([[0]], dtype=np.int32)       # pool [0.0]
    t_tab, len_tab = kernels.batch_absorb_t(
        t_pool, np.array([1]), np.array([0]), 2
    )
    assert t_tab[0].tolist() == [0, 0]
    assert int(len_tab[0]) == 1
    dense, _chose = _absorb_step_py([0.0], 0, 2)
    assert table_to_thresholds(dense, 2) == [0, 0]


# ----------------------------------------------------------------------
# Fold helpers: the NumPy paths equal the Python paths on the same input.
# ----------------------------------------------------------------------
@needs_numpy
@settings(**COMMON)
@given(st.lists(st.integers(0, 9), max_size=40), st.integers(1, 30))
def test_fold_helpers_backend_identical(values, W):
    original = kernels.NUMPY_MIN_LEN
    try:
        kernels.NUMPY_MIN_LEN = 10 ** 9          # force pure Python
        py = (
            stable_argsort(values),
            prefix_fit(values, W),
            capacity_split(values, W),
        )
        kernels.NUMPY_MIN_LEN = 0                # force NumPy
        np_ = (
            stable_argsort(values),
            prefix_fit(values, W),
            capacity_split(values, W),
        )
    finally:
        kernels.NUMPY_MIN_LEN = original
    assert py == np_


# ----------------------------------------------------------------------
# solve_many == a sequential loop, bit for bit.
# ----------------------------------------------------------------------
@st.composite
def dp_batches(draw):
    """A batch mixing same-shape request variants with a foreign shape."""
    base = draw(tree_instances(with_dmax=False)).with_policy(Policy.MULTIPLE)
    tree = base.tree
    batch = []
    for _ in range(draw(st.integers(2, 4))):
        reqs = [
            draw(st.integers(0, base.capacity)) if tree.is_leaf(v) else 0
            for v in range(len(tree))
        ]
        batch.append(replace(base, tree=tree.with_requests(reqs)))
    other = draw(tree_instances(with_dmax=False)).with_policy(Policy.MULTIPLE)
    batch.insert(draw(st.integers(0, len(batch))), other)
    return batch


@settings(**SOLVER)
@given(dp_batches())
def test_solve_many_matches_sequential_and_reference(batch):
    got = solve_many(batch)
    assert got == [multiple_nod_dp(inst) for inst in batch]
    assert got == [multiple_nod_dp_reference(inst) for inst in batch]


def _chain_instance(requests: int) -> ProblemInstance:
    """root — relay — one client; W=4, so r=15 is NoD-infeasible."""
    b = TreeBuilder()
    n0 = b.add_root()
    n1 = b.add(n0, delta=1.0)
    b.add(n1, delta=1.0, requests=requests)
    return ProblemInstance(b.build(), 4, None, Policy.MULTIPLE)


def test_solve_many_surfaces_the_sequential_exception():
    batch = [_chain_instance(3), _chain_instance(15), _chain_instance(4)]
    with pytest.raises(PolicyError) as batched_err:
        solve_many(batch)
    with pytest.raises(PolicyError) as seq_err:
        multiple_nod_dp(batch[1])
    assert str(batched_err.value) == str(seq_err.value)


def test_solve_many_return_exceptions_interleaves_failures():
    feasible = [_chain_instance(3), _chain_instance(4)]
    infeasible = _chain_instance(15)
    constrained = replace(_chain_instance(2), dmax=1.5)
    batch = [feasible[0], infeasible, constrained, feasible[1]]
    got = solve_many(batch, return_exceptions=True)
    assert got[0] == multiple_nod_dp(feasible[0])
    assert got[3] == multiple_nod_dp(feasible[1])
    for idx in (1, 2):
        assert isinstance(got[idx], PolicyError)
        with pytest.raises(PolicyError) as err:
            multiple_nod_dp(batch[idx])
        assert str(got[idx]) == str(err.value)


def test_solve_many_mixed_shape_buckets():
    """Two shape buckets in one call, shuffled, both on the array path."""
    small = _chain_instance(3)
    wide = TreeBuilder()
    n0 = wide.add_root()
    for r in (2, 3, 4):
        wide.add(n0, delta=1.0, requests=r)
    wide_inst = ProblemInstance(wide.build(), 4, None, Policy.MULTIPLE)
    batch = [
        small,
        wide_inst,
        replace(small, tree=small.tree.with_requests([0, 0, 4])),
        replace(wide_inst, tree=wide_inst.tree.with_requests([0, 4, 1, 2])),
        small,
    ]
    assert solve_many(batch) == [multiple_nod_dp(inst) for inst in batch]


def test_solve_many_empty_and_singleton():
    assert solve_many([]) == []
    inst = _chain_instance(3)
    assert solve_many([inst]) == [multiple_nod_dp(inst)]


# ----------------------------------------------------------------------
# The REPRO_NO_NUMPY knob: fallback is forced, results are unchanged.
# ----------------------------------------------------------------------
def _src_pythonpath() -> str:
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH")
    return src if not existing else src + os.pathsep + existing


_FALLBACK_CHECK = """
import repro.core.kernels as k
assert not k.HAVE_NUMPY and k.np is None
assert k.backend_name() == "python"
from repro.algorithms.batched import solve_many
from repro.algorithms.multiple_nod_dp import multiple_nod_dp
from repro.core.policies import Policy
from repro.instances.generators import random_tree
batch = [
    random_tree(3, 6, capacity=6, dmax=None, policy=Policy.MULTIPLE, seed=s)
    for s in range(3)
]
assert solve_many(batch) == [multiple_nod_dp(x) for x in batch]
"""


def test_no_numpy_knob_forces_pure_python_fallback():
    env = dict(os.environ)
    env["REPRO_NO_NUMPY"] = "1"
    env["PYTHONPATH"] = _src_pythonpath()
    proc = subprocess.run(
        [sys.executable, "-c", _FALLBACK_CHECK],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_numpy_min_len_knob_is_honoured():
    env = dict(os.environ)
    env["REPRO_KERNEL_NUMPY_MIN"] = "7"
    env["PYTHONPATH"] = _src_pythonpath()
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "import repro.core.kernels as k; assert k.NUMPY_MIN_LEN == 7",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
