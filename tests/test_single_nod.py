"""Tests for Algorithm 2 — single-nod (Theorem 4)."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleInstanceError,
    Policy,
    PolicyError,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    single_nod,
)
from repro.algorithms import exact_single
from repro.instances import random_tree, single_nod_tight_instance


class TestBasicBehaviour:
    def test_requires_nod(self, paper_example):
        with pytest.raises(PolicyError):
            single_nod(paper_example)  # paper_example has dmax=4

    def test_valid_on_example_nod(self, paper_example):
        inst = paper_example.without_distance()
        p = single_nod(inst)
        assert is_valid(inst, p)

    def test_oversized_client_raises(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=11)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        with pytest.raises(InfeasibleInstanceError):
            single_nod(inst)

    def test_root_is_client(self):
        b = TreeBuilder()
        b.add_root()
        tree = b.build().with_requests([7])
        inst = ProblemInstance(tree, 10, None, Policy.SINGLE)
        p = single_nod(inst)
        assert is_valid(inst, p)
        assert p.replicas == frozenset({0})

    def test_zero_demand(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        assert single_nod(inst).n_replicas == 0

    def test_single_policy_respected(self, paper_example):
        inst = paper_example.without_distance()
        p = single_nod(inst)
        for c in inst.tree.clients:
            assert len(p.servers_of(c)) <= 1


class TestPackingRules:
    def test_aggregation_consolidates_to_root(self):
        # Everything fits one server: single replica at the root.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=2)
        b.add(n, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        p = single_nod(inst)
        assert p.replicas == frozenset({r})

    def test_smallest_entries_packed_at_overflow_node(self):
        # Fan 1,2,9 with W=10: replica at root packs 1+2(+... up to W);
        # 9 bursts the capacity and becomes its own replica (jmin rule).
        b = TreeBuilder()
        r = b.add_root()
        c1 = b.add(r, delta=1.0, requests=1)
        c2 = b.add(r, delta=1.0, requests=2)
        c9 = b.add(r, delta=1.0, requests=9)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        p = single_nod(inst)
        assert is_valid(inst, p)
        assert p.replicas == frozenset({r, c9})
        assert p.servers_of(c1) == [r]
        assert p.servers_of(c2) == [r]
        assert p.servers_of(c9) == [c9]

    def test_leftovers_reparent_and_pack_higher(self):
        # At n: entries 6,6,6 -> n packs one 6, next 6 becomes jmin,
        # last 6 re-parents to the root and packs there.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        cs = [b.add(n, delta=1.0, requests=6) for _ in range(3)]
        inst = ProblemInstance(b.build(), 7, None, Policy.SINGLE)
        p = single_nod(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 3
        # One client is served at the root (the re-parented leftover).
        assert any(p.servers_of(c) == [r] for c in cs)


class TestTightFamily:
    @pytest.mark.parametrize("K", [2, 3, 5, 8, 12])
    def test_fig4_counts(self, K):
        inst, opt = single_nod_tight_instance(K)
        assert is_valid(inst, opt)
        assert opt.n_replicas == K + 1
        p = single_nod(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 2 * K

    def test_fig4_optimum_is_truly_optimal_small(self):
        inst, opt = single_nod_tight_instance(3)
        assert exact_single(inst).n_replicas == opt.n_replicas

    def test_fig4_ratio_approaches_two(self):
        ratios = [
            single_nod(inst).n_replicas / opt.n_replicas
            for inst, opt in (single_nod_tight_instance(K) for K in (2, 6, 15))
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.85


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(15))
    def test_ratio_within_two(self, seed):
        inst = random_tree(
            4, 8, capacity=12, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=3, request_range=(1, 12),
        )
        p = single_nod(inst)
        assert is_valid(inst, p)
        opt = exact_single(inst).n_replicas
        assert p.n_replicas <= 2 * opt

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_wide_trees(self, seed):
        inst = random_tree(
            6, 18, capacity=20, dmax=None, policy=Policy.SINGLE,
            seed=seed, max_arity=6, request_range=(1, 15),
        )
        assert is_valid(inst, single_nod(inst))
