"""Determinism and round-trip contracts of the load generator.

The satellite this file pins: the same ``(seed, n, mix)`` produces the
*identical* fingerprint sequence on every machine and process, and a
:class:`~repro.cluster.loadtest.LoadTestReport` survives the JSON
round-trip through ``analysis.cluster_report`` unchanged.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import cluster_report, render_worker_health
from repro.cluster import (
    MIXES,
    LoadTestReport,
    WorkerSlice,
    make_router,
    request_mix,
    run_loadtest,
)
from repro.service import make_server


class TestRequestMixDeterminism:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_same_seed_same_fingerprint_sequence(self, mix):
        a = request_mix(7, 60, mix)
        b = request_mix(7, 60, mix)
        assert [r.instance_fp for r in a] == [r.instance_fp for r in b]
        assert [r.spec for r in a] == [r.spec for r in b]
        assert [r.wire for r in a] == [r.wire for r in b]

    def test_different_seeds_differ(self):
        a = [r.instance_fp for r in request_mix(1, 60)]
        b = [r.instance_fp for r in request_mix(2, 60)]
        assert a != b

    def test_prefix_stability(self):
        # Asking for more requests extends the sequence, it does not
        # reshuffle the prefix — same seeded draws in the same order.
        short = [r.instance_fp for r in request_mix(3, 20)]
        long = [r.instance_fp for r in request_mix(3, 40)]
        assert long[:20] == short

    def test_zipf_bias_repeats_instances(self):
        # The whole point of the weighted draw: traffic concentrates on
        # few instances so caches and shard affinity are measurable.
        reqs = request_mix(0, 200)
        fps = [r.instance_fp for r in reqs]
        assert len(set(fps)) < len(MIXES["default"]) + 1
        most_common = max(set(fps), key=fps.count)
        assert fps.count(most_common) > 200 / len(MIXES["default"])

    def test_unknown_mix_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="quick"):
            request_mix(0, 1, "nope")

    def test_golden_first_fingerprints(self):
        # Cross-process determinism, pinned: if these move, recorded
        # loadtest reports stop being comparable across builds.
        reqs = request_mix(0, 4, "quick")
        assert [r.instance_fp for r in reqs] == [
            request_mix(0, 4, "quick")[i].instance_fp for i in range(4)
        ]
        assert all(len(r.instance_fp) == 64 for r in reqs)
        assert all(
            int(r.instance_fp, 16) >= 0 for r in reqs
        )  # hex SHA-256


class TestReportRoundTrip:
    def _report(self) -> LoadTestReport:
        r = LoadTestReport(
            url="http://127.0.0.1:1", mix="quick", seed=5, n_requests=40,
            concurrency=4, wall_s=0.5, ok=38, failed=1, solver_errors=1,
            cache_hits=20, distinct_instances=4,
            latency_ms={"mean": 3.0, "p50": 2.5, "p90": 5.0, "p99": 9.0,
                        "max": 9.5},
        )
        r.per_worker = {
            "worker-0": WorkerSlice(requests=25, cache_hits=15, errors=1,
                                    latency_ms_sum=70.0),
            "worker-1": WorkerSlice(requests=15, cache_hits=5, errors=1,
                                    latency_ms_sum=50.0),
        }
        return r

    def test_to_dict_from_dict_json_round_trip(self):
        report = self._report()
        wire = json.loads(json.dumps(report.to_dict()))
        back = LoadTestReport.from_dict(wire)
        assert back.to_dict() == report.to_dict()
        assert back.error_rate == pytest.approx(report.error_rate)
        assert back.cache_hit_rate == pytest.approx(report.cache_hit_rate)
        assert back.per_worker["worker-0"].latency_ms_mean == pytest.approx(
            70.0 / 25
        )

    def test_cluster_report_renders_both_forms_identically(self):
        report = self._report()
        text_live = cluster_report(report)
        text_wire = cluster_report(json.loads(json.dumps(report.to_dict())))
        assert text_live == text_wire
        assert "p50 2.5" in text_live and "p99 9.0" in text_live
        assert "worker-0" in text_live and "worker-1" in text_live
        assert "mix=quick seed=5" in text_live

    def test_rates_derive_sanely_from_zero(self):
        empty = LoadTestReport(
            url="u", mix="quick", seed=0, n_requests=0, concurrency=1
        )
        assert empty.error_rate == 0.0
        assert empty.cache_hit_rate == 0.0
        assert empty.throughput_rps == 0.0
        assert "error rate" in cluster_report(empty)

    def test_render_worker_health(self):
        text = render_worker_health({
            "status": "degraded",
            "sessions": 2,
            "ring": {"vnodes": 16, "workers_alive": 1, "workers_total": 2},
            "workers": [
                {"node_id": "worker-0", "alive": True, "ring_share": 1.0,
                 "last_probe_ms": 1.25, "requests": 9, "retries": 1},
                {"node_id": "worker-1", "alive": False, "ring_share": 0.0,
                 "last_probe_ms": None, "requests": 0, "retries": 0},
            ],
        })
        assert "degraded" in text and "1/2 workers" in text
        assert "DOWN" in text and "never" in text


class TestRunLoadtestAgainstSingleDaemon:
    def test_loadtest_works_without_a_router(self):
        # A plain daemon answers the same protocol; attribution simply
        # falls into the "_single" bucket (no X-Repro-Worker header).
        srv = make_server("127.0.0.1", 0, cache_size=64)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        host, port = srv.server_address[:2]
        try:
            report = run_loadtest(
                f"http://{host}:{port}",
                n_requests=20,
                concurrency=4,
                seed=0,
                mix="quick",
            )
        finally:
            srv.shutdown()
            srv.server_close()
            srv.service.close()
        assert report.failed == 0
        assert report.ok == 20
        assert report.cache_hits > 0  # zipf repetition hits the cache
        assert set(report.per_worker) == {"_single"}
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert report.distinct_instances <= len(MIXES["quick"])

    def test_loadtest_through_router_attributes_workers(self):
        workers = {}
        servers = []
        for i in range(2):
            srv = make_server("127.0.0.1", 0, cache_size=64)
            threading.Thread(target=srv.serve_forever, daemon=True).start()
            servers.append(srv)
            host, port = srv.server_address[:2]
            workers[f"worker-{i}"] = f"http://{host}:{port}"
        router = make_router("127.0.0.1", 0, workers=workers)
        threading.Thread(target=router.serve_forever, daemon=True).start()
        host, port = router.server_address[:2]
        try:
            report = run_loadtest(
                f"http://{host}:{port}",
                n_requests=30,
                concurrency=4,
                seed=1,
                mix="quick",
            )
        finally:
            router.shutdown()
            router.server_close()
            for srv in servers:
                srv.shutdown()
                srv.server_close()
                srv.service.close()
        assert report.failed == 0
        assert report.ok == 30
        assert "_single" not in report.per_worker
        assert sum(s.requests for s in report.per_worker.values()) == 30
        # The report round-trips through the analysis renderer.
        text = cluster_report(json.loads(json.dumps(report.to_dict())))
        assert "30" in text
