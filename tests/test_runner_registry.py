"""Solver registry: registration, lookup, applicability, uniform solve."""

from __future__ import annotations

import pytest

from repro import Policy, ProblemInstance, TreeBuilder
from repro.core.placement import Placement
from repro.instances import random_binary_tree, random_tree
from repro.runner import (
    DuplicateSolverError,
    SolveResult,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    solve,
    solvers_for,
    unregister_solver,
)

BUILTINS = [
    "single-gen", "single-nod", "single-nod-bestfit", "single-push",
    "multiple-bin", "multiple-nod-dp", "multiple-greedy",
    "greedy-packing", "local", "exact", "exact-single", "exact-multiple",
]


@pytest.fixture
def scratch_solver():
    """Register a throwaway solver, always unregistered on teardown."""
    name = "scratch-test-solver"
    unregister_solver(name)

    @register_solver(name, description="test-only")
    def scratch(instance):
        tree = instance.tree
        replicas = [c for c in tree.clients if tree.requests(c) > 0]
        return Placement(replicas, {(c, c): tree.requests(c) for c in replicas})

    yield name
    unregister_solver(name)


class TestRegistration:
    def test_all_builtin_algorithms_registered(self):
        names = {s.name for s in available_solvers()}
        for expected in BUILTINS:
            assert expected in names

    def test_lookup_returns_spec_with_callable(self):
        spec = get_solver("single-gen")
        assert spec.name == "single-gen"
        assert callable(spec.fn)
        assert spec.policy is Policy.SINGLE

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(UnknownSolverError, match="single-gen"):
            get_solver("definitely-not-registered")

    def test_duplicate_name_raises(self, scratch_solver):
        with pytest.raises(DuplicateSolverError, match=scratch_solver):
            @register_solver(scratch_solver)
            def clone(instance):  # pragma: no cover - never called
                raise AssertionError

    def test_decorator_returns_function_unchanged(self, scratch_solver):
        spec = get_solver(scratch_solver)
        assert spec.fn.__name__ == "scratch"


class TestApplicability:
    def test_nod_solver_rejects_distance_instance(self, paper_example):
        spec = get_solver("single-nod")
        assert not spec.applicable(paper_example)
        assert "NoD" in spec.inapplicable_reason(paper_example)
        assert spec.applicable(paper_example.without_distance())

    def test_binary_only_rejects_wide_tree(self):
        inst = random_tree(
            4, 6, capacity=10, max_arity=4, seed=3, policy=Policy.MULTIPLE
        )
        assert inst.tree.arity > 2
        assert not get_solver("multiple-bin").applicable(inst)

    def test_solvers_for_filters_policy_and_shape(self):
        inst = random_binary_tree(6, 6, capacity=9, seed=1, policy=Policy.MULTIPLE)
        names = {s.name for s in solvers_for(inst)}
        assert "multiple-bin" in names
        assert "single-gen" not in names
        exact_names = {s.name for s in solvers_for(inst, exact=True)}
        assert exact_names <= names
        assert "multiple-greedy" not in exact_names


class TestUniformSolve:
    def test_ok_result_carries_objective_and_bound(self, paper_example):
        res = solve("single-gen", paper_example)
        assert isinstance(res, SolveResult)
        assert res.ok and res.status == "ok"
        assert res.n_replicas >= res.lower_bound >= 1
        assert res.wall_time >= 0
        assert sorted(res.replicas) == res.replicas

    def test_inapplicable_is_a_result_not_an_exception(self, paper_example):
        res = solve("single-nod", paper_example)
        assert res.status == "inapplicable"
        assert res.n_replicas is None

    def test_infeasible_is_reported(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=50)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        res = solve("single-gen", inst)
        assert res.status == "infeasible"

    def test_budget_exhaustion_is_reported(self):
        from repro.instances import star

        inst = star(12, capacity=10, request_range=(3, 7), seed=1)
        res = solve("exact-single", inst, budget=3)
        assert res.status == "budget"

    def test_exact_solver_reports_counters(self):
        from repro.instances import star

        inst = star(8, capacity=10, request_range=(3, 7), seed=4)
        res = solve("exact-single", inst)
        assert res.ok
        assert res.counters.get("nodes_expanded", 0) >= 1

    def test_crash_is_reported_as_error(self, scratch_solver):
        unregister_solver(scratch_solver)

        @register_solver(scratch_solver)
        def boom(instance):
            raise RuntimeError("kaboom")

        res = solve(scratch_solver, _mk())
        assert res.status == "error"
        assert "kaboom" in res.error


def _mk():
    b = TreeBuilder()
    r = b.add_root()
    b.add(r, delta=1.0, requests=2)
    return ProblemInstance(b.build(), 5, None, Policy.SINGLE)
