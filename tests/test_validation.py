"""Unit tests for the independent checker (repro.core.validation)."""

from __future__ import annotations

import pytest

from repro import (
    InvalidPlacementError,
    Placement,
    Policy,
    check_placement,
    is_valid,
    placement_violations,
)


def valid_placement(paper_example):
    # Serve clients 3,4 at n1 (loads 7 <= 8); 5,6 at n2 (7 <= 8).
    return Placement(
        [1, 2],
        {(3, 1): 4, (4, 1): 3, (5, 2): 5, (6, 2): 2},
    )


class TestValidPlacements:
    def test_valid_passes(self, paper_example):
        p = valid_placement(paper_example)
        assert placement_violations(paper_example, p) == []
        assert is_valid(paper_example, p)
        check_placement(paper_example, p)  # no raise

    def test_self_serving_always_valid(self, paper_example):
        t = paper_example.tree
        p = Placement(
            list(t.clients), {(c, c): t.requests(c) for c in t.clients}
        )
        assert is_valid(paper_example, p)

    def test_multiple_split_valid(self, paper_example):
        inst = paper_example.with_policy(Policy.MULTIPLE)
        p = Placement(
            [1, 0, 2, 5],
            {
                (3, 1): 2,
                (3, 0): 2,
                (4, 1): 3,
                (5, 5): 5,
                (6, 2): 2,
            },
        )
        assert is_valid(inst, p)


class TestViolationDetection:
    def test_incomplete_assignment(self, paper_example):
        p = Placement([1, 2], {(3, 1): 4, (4, 1): 3, (5, 2): 4, (6, 2): 2})
        probs = placement_violations(paper_example, p)
        assert any("client 5" in m and "4 are assigned" in m for m in probs)

    def test_over_assignment_detected(self, paper_example):
        p = Placement([1, 2], {(3, 1): 5, (4, 1): 3, (5, 2): 5, (6, 2): 2})
        probs = placement_violations(paper_example, p)
        assert any("client 3" in m for m in probs)

    def test_single_policy_split_rejected(self, paper_example):
        p = Placement(
            [0, 1, 2],
            {(3, 1): 2, (3, 0): 2, (4, 1): 3, (5, 2): 5, (6, 2): 2},
        )
        probs = placement_violations(paper_example, p)
        assert any("Single policy violated" in m for m in probs)

    def test_same_split_fine_under_multiple(self, paper_example):
        inst = paper_example.with_policy(Policy.MULTIPLE)
        p = Placement(
            [0, 1, 2],
            {(3, 1): 2, (3, 0): 2, (4, 1): 3, (5, 2): 5, (6, 2): 2},
        )
        assert is_valid(inst, p)

    def test_capacity_violation(self, paper_example):
        # n1 takes all 4+3 plus c5's 5 = impossible anyway (not ancestor);
        # use root to exceed W=8 legally ancestry-wise.
        p = Placement(
            [0],
            {(3, 0): 4, (4, 0): 3, (5, 0): 5, (6, 0): 2},
        )
        probs = placement_violations(paper_example, p)
        assert any("W=8" in m for m in probs)

    def test_distance_violation(self, paper_example):
        # c4 at distance 3 from root: fine (dmax=4); c5 from root is 3;
        # tighten by serving c4 at root after raising its edge? Instead
        # serve c5 (distance 3) at root with dmax=4 is fine — use c4 at
        # n0 (3 <= 4) fine too. Take instance with dmax=2.5.
        inst = paper_example
        tight = type(inst)(inst.tree, inst.capacity, 2.5, inst.policy)
        p = Placement(
            [0, 1, 2],
            {(3, 1): 4, (4, 0): 3, (5, 2): 5, (6, 2): 2},
        )
        probs = placement_violations(tight, p)
        assert any("dmax" in m and "client 4" in m for m in probs)

    def test_ancestry_violation(self, paper_example):
        # n2 is not an ancestor of client 3.
        p = Placement(
            [1, 2],
            {(3, 2): 4, (4, 1): 3, (5, 2): 5, (6, 2): 2},
        )
        probs = placement_violations(paper_example, p)
        assert any("subtree constraint" in m for m in probs)

    def test_unregistered_server(self, paper_example):
        p = Placement(
            [2],
            {(3, 1): 4, (4, 1): 3, (5, 2): 5, (6, 2): 2},
        )
        probs = placement_violations(paper_example, p)
        assert any("not in R" in m for m in probs)

    def test_non_leaf_client(self, paper_example):
        p = Placement([0], {(1, 0): 1})
        probs = placement_violations(paper_example, p)
        assert any("not a leaf client" in m for m in probs)

    def test_out_of_range_nodes(self, paper_example):
        p = Placement([99], {(3, 99): 4})
        probs = placement_violations(paper_example, p)
        assert any("not a node" in m or "not a tree node" in m for m in probs)

    def test_check_placement_raises(self, paper_example):
        p = Placement([], {})
        with pytest.raises(InvalidPlacementError):
            check_placement(paper_example, p)

    def test_idle_replica_is_allowed(self, paper_example):
        # Idle replicas are wasteful but not invalid (they count in |R|).
        p = Placement(
            [0, 1, 2],
            {(3, 1): 4, (4, 1): 3, (5, 2): 5, (6, 2): 2},
        )
        assert is_valid(paper_example, p)
