"""Tests for Algorithm 1 — single-gen (Theorem 3, Corollary 1)."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleInstanceError,
    Policy,
    ProblemInstance,
    TreeBuilder,
    is_valid,
    single_gen,
)
from repro.algorithms import exact_single
from repro.instances import random_tree, single_gen_tight_instance


class TestBasicBehaviour:
    def test_valid_on_example(self, paper_example):
        p = single_gen(paper_example)
        assert is_valid(paper_example, p)

    def test_single_client_tree(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=5)
        inst = ProblemInstance(b.build(), 10, 3.0, Policy.SINGLE)
        p = single_gen(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == 1

    def test_root_is_client(self):
        # Degenerate one-node tree: the root itself is the client.
        b = TreeBuilder()
        b.add_root()
        tree = b.build().with_requests([7])
        inst = ProblemInstance(tree, 10, None, Policy.SINGLE)
        p = single_gen(inst)
        assert is_valid(inst, p)
        assert p.replicas == frozenset({0})

    def test_zero_demand_tree(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=0)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        p = single_gen(inst)
        assert p.n_replicas == 0

    def test_oversized_client_raises(self):
        b = TreeBuilder()
        r = b.add_root()
        b.add(r, delta=1.0, requests=11)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        with pytest.raises(InfeasibleInstanceError):
            single_gen(inst)

    def test_no_split_ever(self, paper_example):
        p = single_gen(paper_example)
        for c in paper_example.tree.clients:
            assert len(p.servers_of(c)) <= 1


class TestPlacementRules:
    def test_distance_rule_forces_local_server(self):
        # Client at distance 10 from its parent with dmax 5: the replica
        # must sit on the client itself.
        b = TreeBuilder()
        r = b.add_root()
        c = b.add(r, delta=10.0, requests=3)
        inst = ProblemInstance(b.build(), 10, 5.0, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset({c})

    def test_capacity_rule_splits_children(self):
        # Root fan of three clients 4+4+4 > W=8: a replica per child.
        b = TreeBuilder()
        r = b.add_root()
        cs = [b.add(r, delta=1.0, requests=4) for _ in range(3)]
        inst = ProblemInstance(b.build(), 8, None, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset(cs)

    def test_root_rule_consolidates(self):
        # Total fits one server: everything rides to the root.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=1.0)
        b.add(n, delta=1.0, requests=2)
        b.add(n, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 10, None, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset({r})

    def test_exact_distance_budget_passes_edge(self):
        # Budget exactly equals the edge length: the paper uses a strict
        # comparison, so the requests still travel.
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=2.0)
        b.add(n, delta=2.0, requests=1)
        inst = ProblemInstance(b.build(), 10, 4.0, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset({r})

    def test_budget_one_short_blocks_edge(self):
        b = TreeBuilder()
        r = b.add_root()
        n = b.add(r, delta=2.0)
        b.add(n, delta=2.5, requests=1)
        inst = ProblemInstance(b.build(), 10, 4.0, Policy.SINGLE)
        p = single_gen(inst)
        assert p.replicas == frozenset({n})


class TestTightFamily:
    @pytest.mark.parametrize("m,arity", [(1, 2), (2, 2), (3, 2), (2, 3), (2, 4), (3, 3)])
    def test_fig3_counts(self, m, arity):
        inst, opt = single_gen_tight_instance(m, arity)
        assert is_valid(inst, opt)
        assert opt.n_replicas == m + 1
        p = single_gen(inst)
        assert is_valid(inst, p)
        assert p.n_replicas == m * (arity + 1)

    def test_fig3_ratio_approaches_bound(self):
        arity = 3
        ratios = []
        for m in (1, 3, 6):
            inst, opt = single_gen_tight_instance(m, arity)
            p = single_gen(inst)
            ratios.append(p.n_replicas / opt.n_replicas)
        assert ratios == sorted(ratios)  # increasing in m
        assert ratios[-1] > arity + 0.4  # approaching arity+1

    def test_fig3_optimum_is_truly_optimal_small(self):
        inst, opt = single_gen_tight_instance(1, 2)
        assert exact_single(inst).n_replicas == opt.n_replicas


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(15))
    def test_ratio_within_delta_plus_one(self, seed):
        dmax = [None, 4.0, 8.0][seed % 3]
        inst = random_tree(
            4, 8, capacity=12, dmax=dmax, policy=Policy.SINGLE,
            seed=seed, max_arity=3, request_range=(1, 12),
        )
        p = single_gen(inst)
        assert is_valid(inst, p)
        opt = exact_single(inst).n_replicas
        bound = inst.tree.arity + (1 if dmax is not None else 0)
        assert p.n_replicas <= bound * opt

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_wide_trees(self, seed):
        inst = random_tree(
            6, 18, capacity=20, dmax=6.0, policy=Policy.SINGLE,
            seed=seed, max_arity=6, request_range=(1, 15),
        )
        assert is_valid(inst, single_gen(inst))
