"""Tests for ASCII rendering (repro.instances.ascii)."""

from __future__ import annotations

from repro.algorithms import single_gen
from repro.instances import render_placement_summary, render_tree


class TestRenderTree:
    def test_all_nodes_present(self, paper_example):
        out = render_tree(paper_example)
        t = paper_example.tree
        for v in t.internal_nodes:
            assert f"n{v}" in out
        for c in t.clients:
            assert f"c{c} r={t.requests(c)}" in out

    def test_replica_tag(self, paper_example):
        p = single_gen(paper_example)
        out = render_tree(paper_example, p)
        assert "[R]" in out
        # Each replica appears tagged exactly once.
        assert out.count("[R]") == p.n_replicas

    def test_assignment_arrows(self, paper_example):
        p = single_gen(paper_example)
        out = render_tree(paper_example, p)
        assert "->" in out

    def test_line_count(self, paper_example):
        out = render_tree(paper_example)
        assert len(out.splitlines()) == len(paper_example.tree)


class TestSummary:
    def test_summary_fields(self, paper_example):
        p = single_gen(paper_example)
        out = render_placement_summary(paper_example, p)
        assert f"replicas |R|   : {p.n_replicas}" in out
        assert "capacity W     : 8" in out
        assert "utilisation" in out
        for s in sorted(p.replicas):
            assert f"server {s:>4}" in out
