"""Unit tests for the problem-instance model (repro.core.instance)."""

from __future__ import annotations

import pytest

from repro import (
    InvalidInstanceError,
    Policy,
    ProblemInstance,
    TreeBuilder,
)


def tiny_tree(requests=(4, 3)):
    b = TreeBuilder()
    r = b.add_root()
    for req in requests:
        b.add(r, delta=1.0, requests=req)
    return b.build()


class TestValidation:
    def test_positive_capacity_required(self):
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(tiny_tree(), 0)

    def test_negative_dmax_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(tiny_tree(), 5, -1.0)

    def test_infinite_dmax_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(tiny_tree(), 5, float("inf"))

    def test_none_dmax_means_nod(self):
        inst = ProblemInstance(tiny_tree(), 5, None)
        assert not inst.has_distance_constraint

    def test_zero_dmax_allowed(self):
        # dmax = 0 forces every client to self-serve.
        inst = ProblemInstance(tiny_tree(), 5, 0.0)
        assert inst.has_distance_constraint


class TestVariantNames:
    def test_single_nod_bin(self):
        inst = ProblemInstance(tiny_tree(), 5, None, Policy.SINGLE)
        assert inst.variant == "Single-NoD-Bin"

    def test_multiple_bin(self):
        inst = ProblemInstance(tiny_tree(), 5, 3.0, Policy.MULTIPLE)
        assert inst.variant == "Multiple-Bin"

    def test_single_general(self):
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(3):
            b.add(r, requests=1)
        inst = ProblemInstance(b.build(), 5, 2.0, Policy.SINGLE)
        assert inst.variant == "Single"

    def test_multiple_nod(self):
        b = TreeBuilder()
        r = b.add_root()
        for _ in range(3):
            b.add(r, requests=1)
        inst = ProblemInstance(b.build(), 5, None, Policy.MULTIPLE)
        assert inst.variant == "Multiple-NoD"


class TestFeasibilityChecks:
    def test_client_fits_server(self):
        inst = ProblemInstance(tiny_tree((4, 3)), 4)
        assert inst.client_fits_server()
        inst2 = ProblemInstance(tiny_tree((5, 3)), 4)
        assert not inst2.client_fits_server()

    def test_single_oversized_client_infeasible(self):
        inst = ProblemInstance(tiny_tree((9, 1)), 5, None, Policy.SINGLE)
        reason = inst.trivially_infeasible()
        assert reason is not None and "Single" in reason

    def test_multiple_oversized_client_feasible_with_enough_ancestors(self):
        # Client of 9 can split over itself + parent (2 * 5 = 10 >= 9).
        inst = ProblemInstance(tiny_tree((9, 1)), 5, None, Policy.MULTIPLE)
        assert inst.trivially_infeasible() is None

    def test_multiple_demand_beyond_eligible_capacity(self):
        # dmax=0: the client alone must absorb 9 > W=5.
        inst = ProblemInstance(tiny_tree((9, 1)), 5, 0.0, Policy.MULTIPLE)
        assert inst.trivially_infeasible() is not None

    def test_feasible_instance_passes(self, paper_example):
        assert paper_example.trivially_infeasible() is None


class TestDerivedInstances:
    def test_with_policy(self, paper_example):
        m = paper_example.with_policy(Policy.MULTIPLE)
        assert m.policy is Policy.MULTIPLE
        assert m.tree is paper_example.tree
        assert paper_example.policy is Policy.SINGLE

    def test_without_distance(self, paper_example):
        nod = paper_example.without_distance()
        assert nod.dmax is None
        assert paper_example.dmax == 4.0

    def test_frozen(self, paper_example):
        with pytest.raises(AttributeError):
            paper_example.capacity = 10  # type: ignore[misc]
