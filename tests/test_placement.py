"""Unit tests for the placement model (repro.core.placement)."""

from __future__ import annotations

import pytest

from repro import InvalidPlacementError, Placement


class TestConstruction:
    def test_basic(self):
        p = Placement([1, 2], {(3, 1): 4, (4, 2): 5})
        assert p.n_replicas == 2
        assert p.replicas == frozenset({1, 2})

    def test_rejects_non_positive_amount(self):
        with pytest.raises(InvalidPlacementError):
            Placement([1], {(3, 1): 0})
        with pytest.raises(InvalidPlacementError):
            Placement([1], {(3, 1): -2})

    def test_empty(self):
        p = Placement([], {})
        assert p.n_replicas == 0
        assert list(p.iter_assignments()) == []


class TestQueries:
    @pytest.fixture
    def placement(self):
        return Placement(
            [1, 2, 9],
            {(3, 1): 4, (4, 1): 2, (4, 2): 3, (5, 2): 1},
        )

    def test_servers_of(self, placement):
        assert placement.servers_of(4) == [1, 2]
        assert placement.servers_of(3) == [1]
        assert placement.servers_of(99) == []

    def test_served_amount(self, placement):
        assert placement.served_amount(4) == 5
        assert placement.served_amount(3) == 4
        assert placement.served_amount(99) == 0

    def test_load(self, placement):
        assert placement.load(1) == 6
        assert placement.load(2) == 4
        assert placement.load(9) == 0

    def test_loads_includes_idle_replicas(self, placement):
        loads = placement.loads()
        assert loads == {1: 6, 2: 4, 9: 0}

    def test_used_servers(self, placement):
        assert placement.used_servers() == frozenset({1, 2})

    def test_iter_assignments_sorted(self, placement):
        recs = list(placement.iter_assignments())
        assert [(a.client, a.server) for a in recs] == sorted(
            (a.client, a.server) for a in recs
        )

    def test_restricted_to(self, placement):
        sub = placement.restricted_to([4])
        assert sub.served_amount(4) == 5
        assert sub.served_amount(3) == 0
        assert sub.replicas == frozenset({1, 2})


class TestEquality:
    def test_eq_and_hash(self):
        a = Placement([1], {(2, 1): 3})
        b = Placement([1], {(2, 1): 3})
        c = Placement([1], {(2, 1): 4})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_assignments_copy_is_defensive(self):
        p = Placement([1], {(2, 1): 3})
        d = p.assignments
        d[(9, 9)] = 1
        assert (9, 9) not in p.assignments

    def test_value_equality_ignores_construction_order(self):
        # Cache semantics: the same solution must compare (and hash)
        # equal however the assignment mapping was enumerated.
        a = Placement([2, 1], {(3, 1): 4, (4, 2): 5})
        b = Placement([1, 2], {(4, 2): 5, (3, 1): 4})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_to_other_types(self):
        p = Placement([1], {(2, 1): 3})
        assert p != "placement"
        assert (p == object()) is False

    def test_hash_is_cached_and_stable(self):
        p = Placement([1, 2], {(3, 1): 4})
        assert hash(p) == hash(p)
        assert p._hash is not None  # cached after first use

    def test_repr_is_informative(self):
        p = Placement([9, 1, 2], {(3, 1): 4, (5, 2): 2})
        r = repr(p)
        assert "|R|=3" in r
        assert "1, 2, 9" in r       # sorted replica set
        assert "served=6" in r

    def test_repr_truncates_large_replica_sets(self):
        p = Placement(range(100), {})
        r = repr(p)
        assert "..." in r and "|R|=100" in r
