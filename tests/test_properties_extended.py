"""Property-based tests for the extension modules.

Hypothesis strategies reuse the shared tree generator from
:mod:`tests.conftest` and add invariants for the Multiple-NoD
DP, preprocessing, failure repair and the future-work heuristics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Policy,
    is_valid,
    multiple_bin,
    multiple_nod_dp,
    single_nod,
    single_nod_bestfit,
    single_push,
)
from repro.algorithms.multiple_nod_dp import _min_plus
from repro.core import preprocess
from repro.simulate import repair_placement

from tests.conftest import tree_instances

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)


@settings(**COMMON)
@given(tree_instances(binary=True, with_dmax=False))
def test_dp_matches_multiple_bin_on_binary_nod(inst):
    """Two independent optimal algorithms must agree on Multiple-NoD-Bin
    whenever every client fits a server."""
    inst = inst.with_policy(Policy.MULTIPLE)
    dp = multiple_nod_dp(inst)
    assert is_valid(inst, dp)
    if inst.tree.max_request <= inst.capacity:
        mb = multiple_bin(inst)
        assert dp.n_replicas == mb.n_replicas


@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_dp_valid_and_lower_bounded_any_arity(inst):
    from repro import lower_bound

    inst = inst.with_policy(Policy.MULTIPLE)
    dp = multiple_nod_dp(inst)
    assert is_valid(inst, dp)
    assert dp.n_replicas >= lower_bound(inst)


@settings(**COMMON)
@given(tree_instances())
def test_preprocess_lift_always_valid(inst):
    reduced, nmap = preprocess(inst)
    assert len(reduced.tree) <= len(inst.tree)
    assert reduced.tree.total_requests == inst.tree.total_requests
    from repro import single_gen

    p = single_gen(reduced)
    lifted = nmap.lift(p)
    assert is_valid(inst, lifted)
    assert lifted.n_replicas == p.n_replicas


@settings(**COMMON)
@given(tree_instances(), st.integers(0, 3))
def test_repair_is_valid_or_none(inst, k):
    from repro import single_gen

    p = single_gen(inst)
    replicas = sorted(p.replicas)
    if not replicas:
        return
    victims = replicas[: min(k, len(replicas))]
    res = repair_placement(inst, p, victims)
    if res is not None:
        assert is_valid(inst, res.placement)
        assert not set(victims) & set(res.placement.replicas)
        assert res.moved_requests >= 0


@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_push_never_worse_and_valid(inst):
    base = single_nod(inst)
    push = single_push(inst)
    assert is_valid(inst, push)
    assert push.n_replicas <= base.n_replicas
    bf = single_nod_bestfit(inst)
    assert is_valid(inst, bf)


@settings(**COMMON)
@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=6),
    st.lists(st.integers(0, 6), min_size=1, max_size=6),
    st.integers(1, 12),
)
def test_min_plus_convolution_correct(a_costs, b_costs, cap):
    """Brute-force check of the DP's min-plus convolution kernel."""
    a = [float(x) for x in a_costs]
    b = [float(x) for x in b_costs]
    out, arg = _min_plus(a, b, cap)
    for U in range(len(out)):
        brute = min(
            (
                a[j] + b[U - j]
                for j in range(len(a))
                if 0 <= U - j < len(b)
            ),
            default=float("inf"),
        )
        assert out[U] == brute
        if out[U] != float("inf"):
            j = arg[U]
            assert j is not None
            assert a[j] + b[U - j] == out[U]
