"""Online re-placement engine: events, fingerprints, incremental solvers.

The load-bearing property: **incremental repair equals a from-scratch
solve** — same cost always, identical placements for the deterministic
greedy — over randomized event traces, or the outcome explicitly
reports a fallback mode.  Plus the ISSUE acceptance scenario: a
200+-node tree, ≥ 50 randomized single-subtree events, cost parity and
measured speedup.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Policy, ProblemInstance, TreeBuilder
from repro.algorithms.multiple_nod_dp import multiple_nod_dp
from repro.algorithms.single_nod import single_nod
from repro.core.errors import InvalidInstanceError
from repro.core.validation import placement_violations
from repro.dynamic import (
    MODE_FULL_RESOLVE,
    MODE_INCREMENTAL,
    MODE_INCREMENTAL_REPAIR,
    CapacityEvent,
    DemandEvent,
    DynamicPlacement,
    FailureEvent,
    IncrementalNodDP,
    IncrementalSingleNod,
    IncrementalUnsupported,
    apply_event,
    instance_salt,
    random_event_trace,
    subtree_fingerprints,
)
from repro.instances import random_tree
from tests.conftest import tree_instances


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
class TestEvents:
    def test_demand_event_changes_one_leaf(self, paper_example):
        client = paper_example.tree.clients[0]
        new, failed = apply_event(paper_example, DemandEvent(client, 7))
        assert failed is None
        assert new.tree.requests(client) == 7
        assert new.capacity == paper_example.capacity

    def test_demand_event_rejects_internal_node(self, paper_example):
        internal = paper_example.tree.internal_nodes[0]
        with pytest.raises(InvalidInstanceError):
            apply_event(paper_example, DemandEvent(internal, 3))

    def test_demand_event_rejects_negative(self, paper_example):
        client = paper_example.tree.clients[0]
        with pytest.raises(InvalidInstanceError):
            apply_event(paper_example, DemandEvent(client, -1))

    def test_failure_event_reports_node(self, paper_example):
        new, failed = apply_event(paper_example, FailureEvent(1))
        assert failed == 1
        assert new.tree == paper_example.tree

    def test_capacity_event_rejects_nonpositive(self, paper_example):
        with pytest.raises(InvalidInstanceError):
            apply_event(paper_example, CapacityEvent(0))

    def test_random_trace_is_deterministic(self, paper_example):
        t1 = random_event_trace(paper_example, steps=10, seed=4, p_fail=0.3)
        t2 = random_event_trace(paper_example, steps=10, seed=4, p_fail=0.3)
        assert t1 == t2

    def test_exhausted_failure_candidates_degrade_to_demand(self):
        # Once every internal node is down, the p_fail probability mass
        # must fall through to demand events — never to capacity events
        # the caller disabled.
        inst = random_tree(3, 6, capacity=8, dmax=None, seed=0)
        trace = random_event_trace(
            inst, steps=200, seed=1, p_fail=0.5, p_capacity=0.0
        )
        flat = [e for batch in trace for e in batch]
        assert not any(isinstance(e, CapacityEvent) for e in flat)
        n_internal = len(inst.tree.internal_nodes) - 1  # root never fails
        assert sum(isinstance(e, FailureEvent) for e in flat) == n_internal

    def test_random_trace_fails_internal_nodes_only(self, paper_example):
        trace = random_event_trace(
            paper_example, steps=40, seed=1, p_fail=0.9
        )
        tree = paper_example.tree
        for batch in trace:
            for e in batch:
                if isinstance(e, FailureEvent):
                    assert tree.is_internal(e.node)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_demand_change_dirties_only_root_path(self, paper_example):
        inst = paper_example
        salt = instance_salt(inst)
        before = subtree_fingerprints(inst.tree, salt)
        client = inst.tree.clients[-1]
        mutated, _ = apply_event(inst, DemandEvent(client, 9))
        after = subtree_fingerprints(mutated.tree, instance_salt(mutated))
        path = set(inst.tree.path_to_root(client))
        for v in range(len(inst.tree)):
            if v in path:
                assert before[v] != after[v]
            else:
                assert before[v] == after[v]

    def test_capacity_change_dirties_everything(self, paper_example):
        inst = paper_example
        before = subtree_fingerprints(inst.tree, instance_salt(inst))
        resized, _ = apply_event(inst, CapacityEvent(inst.capacity + 1))
        after = subtree_fingerprints(resized.tree, instance_salt(resized))
        assert all(b != a for b, a in zip(before, after))

    def test_failure_flag_participates(self, paper_example):
        inst = paper_example
        salt = instance_salt(inst)
        clean = subtree_fingerprints(inst.tree, salt)
        failed = subtree_fingerprints(inst.tree, salt, frozenset({1}))
        path = set(inst.tree.path_to_root(1))
        for v in range(len(inst.tree)):
            assert (clean[v] == failed[v]) == (v not in path)


# ----------------------------------------------------------------------
# Incremental solvers == from-scratch solvers
# ----------------------------------------------------------------------
class TestIncrementalEqualsScratch:
    @settings(max_examples=40, deadline=None)
    @given(inst=tree_instances(with_dmax=False))
    def test_single_nod_identical_placements(self, inst):
        warm, stats = IncrementalSingleNod().solve(inst)
        assert warm == single_nod(inst)
        assert stats.nodes_recomputed == len(inst.tree)

    @settings(max_examples=30, deadline=None)
    @given(inst=tree_instances(max_nodes=16, with_dmax=False))
    def test_nod_dp_same_cost_and_valid(self, inst):
        inst = inst.with_policy(Policy.MULTIPLE)
        warm, _ = IncrementalNodDP().solve(inst)
        assert warm.n_replicas == multiple_nod_dp(inst).n_replicas
        assert placement_violations(inst, warm) == []

    def test_single_nod_rejects_failed_hosts(self):
        inst = random_tree(6, 12, capacity=8, dmax=None, seed=0)
        with pytest.raises(IncrementalUnsupported):
            IncrementalSingleNod().solve(inst, frozenset({1}))

    def test_nod_dp_avoids_failed_hosts(self):
        inst = random_tree(8, 16, capacity=6, dmax=None, seed=2).with_policy(
            Policy.MULTIPLE
        )
        base, _ = IncrementalNodDP().solve(inst)
        victim = sorted(base.replicas)[0]
        placement, _ = IncrementalNodDP().solve(inst, frozenset({victim}))
        assert victim not in placement.replicas
        assert placement_violations(inst, placement) == []
        # Still exact among failure-avoiding placements, so never
        # cheaper than the unconstrained optimum.
        assert placement.n_replicas >= base.n_replicas

    def test_memo_reuses_untouched_subtrees(self):
        inst = random_tree(10, 20, capacity=6, dmax=None, seed=4).with_policy(
            Policy.MULTIPLE
        )
        backend = IncrementalNodDP()
        _p, cold = backend.solve(inst)
        assert cold.nodes_reused == 0
        client = inst.tree.clients[0]
        mutated, _ = apply_event(
            inst, DemandEvent(client, (inst.tree.requests(client) + 1) % 6)
        )
        _p2, warm = backend.solve(mutated)
        dirty = len(inst.tree.path_to_root(client))
        assert warm.nodes_recomputed == dirty
        assert warm.nodes_reused == len(inst.tree) - dirty


# ----------------------------------------------------------------------
# Engine property test: randomized traces, repair == resolve
# ----------------------------------------------------------------------
class TestEngineProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        inst=tree_instances(max_nodes=16, with_dmax=False),
        seed=st.integers(0, 10_000),
        policy=st.sampled_from([Policy.SINGLE, Policy.MULTIPLE]),
    )
    def test_trace_repair_matches_cold_resolve(self, inst, seed, policy):
        inst = inst.with_policy(policy)
        engine = DynamicPlacement(inst)
        trace = random_event_trace(
            inst, steps=6, seed=seed, p_fail=0.15, p_capacity=0.1
        )
        for batch in trace:
            outcome = engine.apply(batch)
            cold, _s = engine.resolve_full()
            if outcome.ok:
                assert cold is not None
                assert outcome.cost == cold.n_replicas
                assert placement_violations(
                    engine.instance, outcome.placement
                ) == []
                assert not (outcome.placement.replicas & engine.failed_hosts)
            else:
                assert cold is None

    def test_single_policy_failure_uses_repair_mode(self):
        inst = random_tree(8, 16, capacity=9, dmax=None, seed=5)
        engine = DynamicPlacement(inst)
        victim = inst.tree.internal_nodes[1]
        outcome = engine.apply([FailureEvent(victim)])
        assert outcome.ok
        assert outcome.mode == MODE_INCREMENTAL_REPAIR
        assert victim not in outcome.placement.replicas
        assert placement_violations(engine.instance, outcome.placement) == []

    def test_dmax_instance_falls_back_to_full_resolve(self):
        inst = random_tree(8, 16, capacity=8, dmax=6.0, seed=2)
        engine = DynamicPlacement(inst)
        assert not engine.incremental
        client = inst.tree.clients[0]
        outcome = engine.apply([DemandEvent(client, 2)])
        assert outcome.mode == MODE_FULL_RESOLVE
        assert "distance constraint" in outcome.fallback_reason
        assert outcome.ok

    def test_capacity_event_recomputes_everything(self):
        inst = random_tree(8, 16, capacity=6, dmax=None, seed=1).with_policy(
            Policy.MULTIPLE
        )
        engine = DynamicPlacement(inst)
        outcome = engine.apply([CapacityEvent(7)])
        assert outcome.ok
        assert outcome.mode == MODE_INCREMENTAL
        assert outcome.stats.nodes_reused == 0
        # A capacity resize is still pure incremental (everything just
        # re-keys), so it must not be labelled a fallback.
        assert outcome.fallback_reason is None

    def test_infeasible_snapshot_reports_failure_then_recovers(self):
        b = TreeBuilder()
        root = b.add_root()
        mid = b.add(root, delta=1.0)
        leaf = b.add(mid, delta=1.0, requests=3)
        inst = ProblemInstance(b.build(), 5, None, Policy.SINGLE)
        engine = DynamicPlacement(inst)
        bad = engine.apply([DemandEvent(leaf, 9)])  # demand > W: no Single placement
        assert not bad.ok and engine.placement is None
        assert engine.stats().repair_failures == 1
        good = engine.apply([DemandEvent(leaf, 4)])
        assert good.ok and engine.placement is not None

    def test_malformed_event_rejects_batch_atomically(self):
        inst = random_tree(6, 12, capacity=8, dmax=None, seed=1)
        engine = DynamicPlacement(inst)
        before = engine.placement
        client = inst.tree.clients[0]
        internal = inst.tree.internal_nodes[0]
        outcome = engine.apply(
            [DemandEvent(client, 3), DemandEvent(internal, 3)]
        )
        assert not outcome.ok and "rejected batch" in outcome.error
        # Nothing was half-applied: snapshot, placement and counters
        # are exactly as before the bad batch.
        assert engine.instance.tree.requests(client) == inst.tree.requests(client)
        assert engine.placement is before
        assert engine.stats().applies == 0

    def test_explicit_non_incremental_solver_forces_fallback(self):
        inst = random_tree(6, 12, capacity=8, dmax=None, seed=3)
        engine = DynamicPlacement(inst, solver="greedy-packing")
        assert not engine.incremental
        outcome = engine.apply([DemandEvent(inst.tree.clients[0], 1)])
        assert outcome.mode == MODE_FULL_RESOLVE
        assert outcome.ok


# ----------------------------------------------------------------------
# ISSUE acceptance: 200+ nodes, ≥50 randomized traces, parity + speedup
# ----------------------------------------------------------------------
class TestAcceptance:
    @pytest.mark.parametrize("policy", [Policy.MULTIPLE, Policy.SINGLE])
    def test_200_node_tree_50_traces_cost_parity(self, policy):
        inst = random_tree(70, 150, capacity=6, dmax=None, seed=11).with_policy(
            policy
        )
        assert len(inst.tree) >= 200
        engine = DynamicPlacement(inst)
        trace = random_event_trace(inst, steps=50, seed=5, p_fail=0.05)
        repair_s = resolve_s = 0.0
        parity = 0
        for batch in trace:
            outcome = engine.apply(batch)
            assert outcome.ok, outcome.error
            cold, cold_s = engine.resolve_full()
            assert outcome.cost == cold.n_replicas
            parity += 1
            repair_s += outcome.repair_s
            resolve_s += cold_s
        assert parity == 50
        # Speedup must be measured and positive; the DP backend shows
        # ~3x, the near-linear greedy is reported but not asserted hard.
        if policy is Policy.MULTIPLE:
            assert resolve_s > repair_s, (repair_s, resolve_s)
