"""Tests for the request-serving simulator (repro.simulate)."""

from __future__ import annotations

import pytest

from repro import Policy
from repro.algorithms import multiple_bin, single_gen
from repro.instances import random_binary_tree, random_tree
from repro.simulate import (
    EventQueue,
    Request,
    deterministic_trace,
    iter_units,
    poisson_trace,
    simulate,
    validate_horizon,
)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [p for _, p in q.drain()] == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        for name in "abc":
            q.push(1.0, name)
        assert [p for _, p in q.drain()] == ["a", "b", "c"]

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, "x")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1
        assert q.peek_time() == 0.0


class TestTraces:
    def test_deterministic_counts(self, paper_example):
        t = paper_example.tree
        trace = deterministic_trace(t, horizon=3)
        assert len(trace) == 3 * t.total_requests
        # Per-unit counts are exact.
        per_unit = {}
        for req in trace:
            per_unit[int(req.time)] = per_unit.get(int(req.time), 0) + 1
        assert per_unit == {0: 14, 1: 14, 2: 14}

    def test_deterministic_sorted(self, paper_example):
        trace = deterministic_trace(paper_example.tree, horizon=2)
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_poisson_seeded(self, paper_example):
        a = poisson_trace(paper_example.tree, 5.0, seed=3)
        b = poisson_trace(paper_example.tree, 5.0, seed=3)
        assert [(r.time, r.client) for r in a] == [(r.time, r.client) for r in b]

    def test_poisson_rate_roughly_matches(self, paper_example):
        t = paper_example.tree
        trace = poisson_trace(t, 200.0, seed=0)
        expected = t.total_requests * 200
        assert 0.9 * expected < len(trace) < 1.1 * expected

    def test_bad_horizon(self, paper_example):
        with pytest.raises(ValueError):
            deterministic_trace(paper_example.tree, 0)
        with pytest.raises(ValueError):
            poisson_trace(paper_example.tree, 0.0)

    def test_iter_units(self, paper_example):
        trace = deterministic_trace(paper_example.tree, horizon=3)
        units = list(iter_units(trace))
        assert len(units) == 3
        assert all(len(u) == 14 for u in units)

    def test_unified_horizon_contract(self, paper_example):
        # Both generators accept ints and integral floats identically.
        t = paper_example.tree
        assert len(deterministic_trace(t, 2)) == len(deterministic_trace(t, 2.0))
        a = poisson_trace(t, 3, seed=1)
        b = poisson_trace(t, 3.0, seed=1)
        assert [(r.time, r.client) for r in a] == [(r.time, r.client) for r in b]
        for bad in (-1, 2.5, float("inf"), float("nan"), "5", True):
            with pytest.raises(ValueError):
                validate_horizon(bad)
        assert validate_horizon(5.0) == 5


class TestIterUnitsWindows:
    """The `iter_units` windows must partition [0, horizon) exactly."""

    def test_leading_gap_not_dropped(self):
        # Regression: a trace starting at t=2.5 used to silently drop
        # units 0-1, misaligning per-unit load with wall clock.
        trace = [Request(2.5, 7), Request(2.75, 8)]
        units = list(iter_units(trace))
        assert [len(u) for u in units] == [0, 0, 2]

    def test_trailing_idle_units_through_horizon(self):
        trace = [Request(0.5, 1)]
        units = list(iter_units(trace, horizon=5))
        assert [len(u) for u in units] == [1, 0, 0, 0, 0]

    def test_interior_gaps_preserved(self):
        trace = [Request(0.1, 1), Request(3.9, 2), Request(4.0, 2)]
        units = list(iter_units(trace, horizon=6))
        assert [len(u) for u in units] == [1, 0, 0, 1, 1, 0]

    def test_empty_trace_with_horizon(self):
        assert [len(u) for u in iter_units([], horizon=3)] == [0, 0, 0]

    def test_empty_trace_without_horizon(self):
        assert list(iter_units([])) == []

    def test_requests_beyond_horizon_excluded(self):
        trace = [Request(0.5, 1), Request(7.5, 2)]
        units = list(iter_units(trace, horizon=3))
        assert [len(u) for u in units] == [1, 0, 0]

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError):
            list(iter_units([Request(2.0, 1), Request(0.5, 2)]))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            list(iter_units([Request(-0.5, 1)]))

    @pytest.mark.parametrize("seed", range(5))
    def test_partition_property(self, seed, paper_example):
        # Counts sum to the trace length (within horizon), window count
        # equals the horizon, and each request lands in window int(t).
        horizon = 6
        trace = poisson_trace(paper_example.tree, horizon, seed=seed)
        units = list(iter_units(trace, horizon=horizon))
        assert len(units) == horizon
        in_horizon = [r for r in trace if r.time < horizon]
        assert sum(len(u) for u in units) == len(in_horizon)
        for k, unit in enumerate(units):
            assert all(int(r.time) == k for r in unit)


class TestSimulation:
    def test_deterministic_trace_never_overloads(self, paper_example):
        """A checker-valid placement must show zero overloaded windows
        on the literal (deterministic) workload — the static capacity
        constraint *is* the per-unit load."""
        p = single_gen(paper_example)
        trace = deterministic_trace(paper_example.tree, horizon=5)
        res = simulate(paper_example, p, trace, horizon=5)
        assert res.overloads == []
        assert res.served == len(trace)

    def test_latency_bounded_by_dmax(self, paper_example):
        p = single_gen(paper_example)
        trace = deterministic_trace(paper_example.tree, horizon=2)
        res = simulate(paper_example, p, trace, horizon=2)
        assert res.max_latency <= paper_example.dmax

    def test_unit_loads_match_static_assignment(self, paper_example):
        p = single_gen(paper_example)
        trace = deterministic_trace(paper_example.tree, horizon=4)
        res = simulate(paper_example, p, trace, horizon=4)
        static = p.loads()
        for s, vec in res.unit_loads.items():
            assert vec == [static[s]] * 4

    def test_multiple_policy_split_served_proportionally(self):
        inst = random_binary_tree(
            5, 6, capacity=8, dmax=5.0, policy=Policy.MULTIPLE,
            seed=1, request_range=(1, 8),
        )
        p = multiple_bin(inst)
        trace = deterministic_trace(inst.tree, horizon=6)
        res = simulate(inst, p, trace, horizon=6)
        assert res.overloads == []
        static = p.loads()
        for s, vec in res.unit_loads.items():
            assert vec == [static[s]] * 6

    def test_poisson_overloads_reported_not_fatal(self, paper_example):
        p = single_gen(paper_example)
        trace = poisson_trace(paper_example.tree, 20.0, seed=2)
        res = simulate(paper_example, p, trace, horizon=20)
        assert res.served == len(trace)
        assert 0.0 <= res.overload_fraction <= 1.0

    def test_summary_strings(self, paper_example):
        p = single_gen(paper_example)
        trace = deterministic_trace(paper_example.tree, horizon=2)
        res = simulate(paper_example, p, trace, horizon=2)
        s = res.summary()
        assert "served" in s and "latency" in s

    @pytest.mark.parametrize("seed", range(4))
    def test_any_valid_placement_simulates_cleanly(self, seed):
        inst = random_tree(
            5, 10, capacity=12, dmax=6.0, policy=Policy.SINGLE,
            seed=seed, max_arity=4,
        )
        p = single_gen(inst)
        trace = deterministic_trace(inst.tree, horizon=3)
        res = simulate(inst, p, trace, horizon=3)
        assert res.overloads == []
        assert res.max_latency <= inst.dmax
