"""Tests for simulation metrics rendering (repro.simulate.metrics)."""

from __future__ import annotations

from repro.algorithms import single_gen
from repro.simulate import deterministic_trace, simulate
from repro.simulate.metrics import (
    ascii_histogram,
    latency_histogram,
    utilisation_table,
)


class TestAsciiHistogram:
    def test_empty(self):
        assert "no data" in ascii_histogram([])

    def test_counts_sum(self):
        out = ascii_histogram([1, 1, 2, 3, 3, 3], bins=3)
        assert "n=6" in out
        # three bins plus the summary line
        assert len(out.splitlines()) == 4

    def test_title(self):
        out = ascii_histogram([1.0], title="demo")
        assert out.splitlines()[0] == "demo"

    def test_summary_stats(self):
        out = ascii_histogram([0.0, 10.0])
        assert "mean=5.00" in out and "max=10.00" in out


class TestSimulationMetrics:
    def _result(self, paper_example):
        p = single_gen(paper_example)
        trace = deterministic_trace(paper_example.tree, horizon=3)
        return p, simulate(paper_example, p, trace, horizon=3)

    def test_latency_histogram(self, paper_example):
        _p, res = self._result(paper_example)
        out = latency_histogram(res)
        assert "request latency" in out
        assert f"n={res.served}" in out

    def test_utilisation_table(self, paper_example):
        p, res = self._result(paper_example)
        out = utilisation_table(res, paper_example.capacity)
        for s in sorted(p.replicas):
            assert f"\n{s:>8} " in "\n" + out
        assert "util%" in out

    def test_no_overloads_reported(self, paper_example):
        _p, res = self._result(paper_example)
        out = utilisation_table(res, paper_example.capacity)
        # deterministic trace of a valid placement: zero overloads.
        assert all(line.rstrip().endswith("0") for line in out.splitlines()[1:])
