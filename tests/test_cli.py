"""End-to-end tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.instances import dump_instance


@pytest.fixture
def inst_file(tmp_path, paper_example):
    path = str(tmp_path / "inst.json")
    dump_instance(paper_example, path)
    return path


class TestGenerate:
    def test_generate_to_file(self, tmp_path):
        out = str(tmp_path / "g.json")
        rc = main(
            [
                "generate", "--kind", "random", "--internal", "5",
                "--clients", "10", "--capacity", "12", "--seed", "7",
                "--out", out,
            ]
        )
        assert rc == 0
        data = json.loads(open(out).read())
        assert data["capacity"] == 12

    def test_generate_stdout(self, capsys):
        rc = main(["generate", "--kind", "star", "--clients", "4", "--capacity", "9"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["capacity"] == 9

    @pytest.mark.parametrize(
        "kind", ["random", "binary", "caterpillar", "broom", "star"]
    )
    def test_all_kinds(self, tmp_path, kind):
        out = str(tmp_path / f"{kind}.json")
        rc = main(
            [
                "generate", "--kind", kind, "--internal", "4",
                "--clients", "5", "--capacity", "10", "--out", out,
            ]
        )
        assert rc == 0


class TestSolveAndCheck:
    def test_solve_writes_valid_placement(self, tmp_path, inst_file):
        out = str(tmp_path / "p.json")
        rc = main(["solve", inst_file, "--algorithm", "single-gen", "--out", out])
        assert rc == 0
        data = json.loads(open(out).read())
        assert data["replicas"]

    def test_solve_check_pipeline(self, tmp_path, inst_file):
        out = str(tmp_path / "p.json")
        assert main(["solve", inst_file, "--out", out]) == 0
        assert main(["check", inst_file, out]) == 0

    def test_check_detects_corruption(self, tmp_path, inst_file, capsys):
        out = str(tmp_path / "p.json")
        main(["solve", inst_file, "--out", out])
        data = json.loads(open(out).read())
        data["assignments"] = data["assignments"][:-1]  # drop one client
        with open(out, "w") as fh:
            json.dump(data, fh)
        assert main(["check", inst_file, out]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_exact_solver_via_cli(self, tmp_path, inst_file):
        out = str(tmp_path / "p.json")
        assert main(["solve", inst_file, "--algorithm", "exact", "--out", out]) == 0
        assert main(["check", inst_file, out]) == 0

    def test_auto_selection_via_cli(self, tmp_path, inst_file, capsys):
        out = str(tmp_path / "p.json")
        rc = main(["solve", inst_file, "--algorithm", "auto", "--out", out])
        assert rc == 0
        # The service picked a solver and reported it on stderr.
        err = capsys.readouterr().err
        assert "replicas" in err and "lower bound" in err
        assert main(["check", inst_file, out]) == 0


class TestRenderAndInfo:
    def test_render(self, inst_file, capsys):
        assert main(["render", inst_file]) == 0
        out = capsys.readouterr().out
        assert "n0" in out

    def test_render_with_placement(self, tmp_path, inst_file, capsys):
        p = str(tmp_path / "p.json")
        main(["solve", inst_file, "--out", p])
        assert main(["render", inst_file, p]) == 0
        out = capsys.readouterr().out
        assert "[R]" in out and "replicas" in out

    def test_info(self, inst_file, capsys):
        assert main(["info", inst_file]) == 0
        out = capsys.readouterr().out
        assert "Single-Bin" in out
        assert "lower bound" in out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # Semantic-version shaped, sourced from package metadata.
        assert out.split()[1].count(".") == 2

    def test_verb_help_points_at_docs(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--help"])
        assert "docs/simulation.md" in capsys.readouterr().out


class TestSimulateOnline:
    def test_online_prints_report(self, tmp_path, capsys):
        from repro import Policy
        from repro.instances import dump_instance, random_tree

        inst = random_tree(8, 16, capacity=6, dmax=None, seed=9).with_policy(
            Policy.MULTIPLE
        )
        path = str(tmp_path / "nod.json")
        dump_instance(inst, path)
        rc = main(
            ["simulate", path, "--online", "--steps", "6", "--p-fail", "0.1"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "Online repair vs full re-solve" in captured.out
        assert "cost parity" in captured.out

    def test_online_rejects_placement_argument(self, inst_file, capsys):
        rc = main(["simulate", inst_file, inst_file, "--online"])
        assert rc == 2

    def test_offline_without_placement_errors(self, inst_file, capsys):
        rc = main(["simulate", inst_file])
        assert rc == 2
        assert "placement file" in capsys.readouterr().err
