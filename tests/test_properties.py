"""Property-based tests (hypothesis) on core invariants.

Strategy-generated random trees and demand profiles exercise:

* solver outputs are always checker-valid;
* the paper's approximation bounds hold against the combinatorial lower
  bound (which never exceeds the optimum);
* exact-solver sandwiching (lower bound ≤ exact ≤ any heuristic);
* data-structure invariants (tree paths, flow conservation, partition
  solver correctness against brute force).
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Policy,
    is_valid,
    lower_bound,
    multiple_greedy,
    single_gen,
    single_nod,
)
from repro.algorithms import multiple_bin
from repro.flow import FlowNetwork, max_flow
from repro.reductions import solve_two_partition, solve_two_partition_equal
from tests.conftest import tree_instances

# ----------------------------------------------------------------------
# Solver invariants
# ----------------------------------------------------------------------

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)


@settings(**COMMON)
@given(tree_instances())
def test_single_gen_always_valid_and_bounded(inst):
    p = single_gen(inst)
    assert is_valid(inst, p)
    lb = lower_bound(inst)
    demanding = sum(1 for c in inst.tree.clients if inst.tree.requests(c) > 0)
    if inst.tree.total_requests > 0:
        assert p.n_replicas >= max(lb, 1)
        # Every replica single-gen opens serves at least one whole
        # client, so |R| never exceeds the demanding-client count.
        assert p.n_replicas <= demanding
    else:
        assert p.n_replicas == 0


@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_single_nod_always_valid(inst):
    p = single_nod(inst)
    assert is_valid(inst, p)


@settings(**COMMON)
@given(tree_instances(with_dmax=False))
def test_single_nod_never_worse_than_all_local(inst):
    p = single_nod(inst)
    demanding = sum(1 for c in inst.tree.clients if inst.tree.requests(c) > 0)
    assert p.n_replicas <= max(demanding, 1) or demanding == 0


@settings(**COMMON)
@given(tree_instances(binary=True))
def test_multiple_bin_always_valid(inst):
    inst = inst.with_policy(Policy.MULTIPLE)
    p = multiple_bin(inst)
    assert is_valid(inst, p)
    if inst.tree.total_requests > 0:
        assert p.n_replicas >= lower_bound(inst)


@settings(**COMMON)
@given(tree_instances())
def test_multiple_greedy_always_valid(inst):
    inst = inst.with_policy(Policy.MULTIPLE)
    p = multiple_greedy(inst)
    assert is_valid(inst, p)


@settings(**COMMON)
@given(tree_instances(binary=True))
def test_multiple_bin_replicas_all_useful(inst):
    """Algorithm 3 never opens a replica that serves nothing, and its
    count respects the combinatorial lower bound."""
    inst = inst.with_policy(Policy.MULTIPLE)
    m = multiple_bin(inst)
    assert m.n_replicas >= lower_bound(inst)
    loads = m.loads()
    assert all(load > 0 for load in loads.values())


# ----------------------------------------------------------------------
# Tree invariants
# ----------------------------------------------------------------------


@settings(**COMMON)
@given(tree_instances())
def test_path_distances_consistent(inst):
    t = inst.tree
    for c in t.clients:
        path = t.path_to_root(c)
        assert path[0] == c and path[-1] == t.root
        # Eligible servers are a prefix of the path under any dmax.
        elig = [s for s, _d in t.eligible_servers(c, inst.dmax)]
        assert elig == path[: len(elig)]
        # Distances accumulate monotonically.
        dists = [d for _s, d in t.eligible_servers(c, None)]
        assert dists == sorted(dists)
        # Same sum, different accumulation order: allow float noise.
        assert abs(dists[-1] - t.depth(c)) < 1e-9


@settings(**COMMON)
@given(tree_instances())
def test_postorder_is_reverse_topological(inst):
    t = inst.tree
    assert list(t.postorder()) == list(reversed(t.topological_order()))


# ----------------------------------------------------------------------
# Flow invariants
# ----------------------------------------------------------------------


@settings(**COMMON)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 9)),
        min_size=1,
        max_size=30,
    )
)
def test_max_flow_conservation_and_bounds(edges):
    g = FlowNetwork(8)
    arcs = []
    for u, v, cap in edges:
        if u != v:
            arcs.append((g.add_edge(u, v, cap), u, v, cap))
    total = max_flow(g, 0, 7)
    assert total >= 0
    net = [0] * 8
    for eid, u, v, cap in arcs:
        f = g.flow_on(eid)
        assert 0 <= f <= cap
        net[u] -= f
        net[v] += f
    assert net[0] == -total and net[7] == total
    assert all(net[v] == 0 for v in range(1, 7))


# ----------------------------------------------------------------------
# Partition solver correctness vs brute force
# ----------------------------------------------------------------------


@settings(**COMMON)
@given(st.lists(st.integers(1, 12), min_size=2, max_size=8))
def test_two_partition_matches_brute_force(a):
    S = sum(a)
    brute = any(
        2 * sum(a[i] for i in c) == S
        for k in range(len(a) + 1)
        for c in combinations(range(len(a)), k)
    )
    got = solve_two_partition(a)
    assert (got is not None) == brute
    if got is not None:
        assert 2 * sum(a[i] for i in got) == S


@settings(**COMMON)
@given(
    st.lists(st.integers(1, 12), min_size=2, max_size=8).filter(
        lambda a: len(a) % 2 == 0
    )
)
def test_two_partition_equal_matches_brute_force(a):
    S = sum(a)
    m = len(a) // 2
    brute = any(
        2 * sum(a[i] for i in c) == S for c in combinations(range(len(a)), m)
    )
    got = solve_two_partition_equal(a)
    assert (got is not None) == brute
    if got is not None:
        assert len(got) == m
        assert 2 * sum(a[i] for i in got) == S
