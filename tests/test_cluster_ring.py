"""Property suite for the consistent-hash ring.

The satellites this file pins:

* routing is a pure function of membership — identical across
  processes and machines (golden blake2b values guard against silent
  hash changes);
* with :data:`~repro.cluster.ring.DEFAULT_VNODES` virtual nodes the key
  distribution stays within 2x of uniform;
* adding or removing one worker remaps at most ``2/N`` of a 1000-key
  sample (the minimal-remap contract the failover and warm-up logic
  relies on).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import DEFAULT_VNODES, HashRing, ring_point

KEYS_1K = [f"key-{i:04d}" for i in range(1000)]


def _workers(n: int) -> list:
    return [f"worker-{i}" for i in range(n)]


class TestRingPoint:
    def test_golden_values_pin_cross_process_stability(self):
        # blake2b of the label, 8-byte digest, big-endian — if any of
        # these move, every deployed router and warm-up planner would
        # disagree with this build.  Update only with a migration plan.
        assert ring_point("worker-0#0") == 0x08BD46191A68A1E4
        assert ring_point("worker-1#0") == 0x1ED61518B754A610
        assert ring_point("") == 0xE4A6A0577479B2B4
        assert ring_point("a") == 0x40F89E395B66422F

    @given(st.text(max_size=64))
    def test_pure_function_of_content(self, label):
        assert ring_point(label) == ring_point(label)
        assert 0 <= ring_point(label) < (1 << 64)


class TestDeterminism:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=40),
    )
    def test_two_rings_same_membership_agree(self, n, keys):
        # The router, the load generator and the warm-up planner each
        # build their own ring; every routing decision must coincide.
        a = HashRing(_workers(n))
        b = HashRing(reversed(_workers(n)))  # insertion order is irrelevant
        for key in keys:
            assert a.route(key) == b.route(key)
            assert a.successors(key) == b.successors(key)

    @given(st.integers(min_value=2, max_value=8))
    def test_successor_head_is_route(self, n):
        ring = HashRing(_workers(n))
        for key in KEYS_1K[:100]:
            succ = ring.successors(key)
            assert succ[0] == ring.route(key)
            assert len(succ) == len(set(succ)) == n

    def test_empty_ring_raises_and_yields_no_successors(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.route("anything")
        assert ring.successors("anything") == []

    def test_membership_ops_idempotent(self):
        ring = HashRing(_workers(3))
        before = [ring.route(k) for k in KEYS_1K[:50]]
        ring.add("worker-1")        # already a member
        ring.remove("worker-99")    # never a member
        assert [ring.route(k) for k in KEYS_1K[:50]] == before

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestBalance:
    @given(st.integers(min_value=2, max_value=8))
    def test_key_distribution_within_2x_of_uniform(self, n):
        ring = HashRing(_workers(n), vnodes=DEFAULT_VNODES)
        counts = {w: 0 for w in _workers(n)}
        for key in KEYS_1K:
            counts[ring.route(key)] += 1
        uniform = len(KEYS_1K) / n
        assert max(counts.values()) <= 2.0 * uniform, counts

    @given(st.integers(min_value=1, max_value=8))
    def test_ownership_sums_to_one(self, n):
        ring = HashRing(_workers(n), vnodes=DEFAULT_VNODES)
        shares = ring.ownership()
        assert set(shares) == set(_workers(n))
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(s > 0 for s in shares.values())

    def test_ownership_tracks_sampled_distribution(self):
        ring = HashRing(_workers(4))
        counts = {w: 0 for w in _workers(4)}
        for key in KEYS_1K:
            counts[ring.route(key)] += 1
        for worker, share in ring.ownership().items():
            assert counts[worker] / len(KEYS_1K) == pytest.approx(
                share, abs=0.05
            )


class TestMinimalRemap:
    @given(st.integers(min_value=2, max_value=8))
    def test_adding_one_worker_remaps_at_most_2_over_n(self, n):
        ring = HashRing(_workers(n))
        before = {k: ring.route(k) for k in KEYS_1K}
        ring.add(f"worker-{n}")
        moved = sum(1 for k in KEYS_1K if ring.route(k) != before[k])
        # Expected 1/(n+1); 2/(n+1) allows hash-placement variance.
        assert moved <= 2 * len(KEYS_1K) / (n + 1), moved
        # Every key that moved now belongs to the newcomer.
        for k in KEYS_1K:
            if ring.route(k) != before[k]:
                assert ring.route(k) == f"worker-{n}"

    @given(st.integers(min_value=3, max_value=8))
    def test_removing_one_worker_remaps_only_its_keys(self, n):
        ring = HashRing(_workers(n))
        before = {k: ring.route(k) for k in KEYS_1K}
        victim = "worker-1"
        ring.remove(victim)
        moved = 0
        for k in KEYS_1K:
            after = ring.route(k)
            if before[k] == victim:
                assert after != victim
            else:
                assert after == before[k]  # survivors keep everything
            if after != before[k]:
                moved += 1
        assert moved <= 2 * len(KEYS_1K) / n, moved

    @given(st.integers(min_value=2, max_value=8))
    def test_leave_then_rejoin_restores_routing(self, n):
        ring = HashRing(_workers(n))
        before = {k: ring.route(k) for k in KEYS_1K[:200]}
        ring.remove("worker-0")
        ring.add("worker-0")
        assert {k: ring.route(k) for k in KEYS_1K[:200]} == before

    def test_failover_order_matches_post_removal_routing(self):
        # successors[1] must be where the key lands if successors[0]
        # leaves — the property the router's failover walk relies on.
        ring = HashRing(_workers(5))
        for key in KEYS_1K[:100]:
            first, second = ring.successors(key, limit=2)
            shrunk = HashRing([w for w in _workers(5) if w != first])
            assert shrunk.route(key) == second
