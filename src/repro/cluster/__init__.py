"""Sharded multi-node placement cluster.

The cluster layer scales ``repro serve`` from one ThreadingHTTPServer
to N of them behind a consistent-hash router, without changing the wire
protocol a client sees::

    client ──► router (repro cluster)
                 │  blake2b ring over instance fingerprints
                 ├──► worker-0  repro serve --data-dir .../worker-0
                 ├──► worker-1  repro serve --data-dir .../worker-1
                 └──► worker-2  repro serve --data-dir .../worker-2

Modules::

    ring      consistent-hash ring (virtual nodes, minimal remap)
    router    HTTP front-end: fingerprint routing, health probes,
              failover with bounded exponential backoff
    workers   worker subprocess lifecycle (spawn / kill -9 / restart)
    warmup    result-cache warm-up from the workers' WAL/snapshot state
    loadtest  deterministic seeded load generator + report
    daemon    the ``repro cluster`` verb entry point

See ``docs/cluster.md`` for the failover contract, the loadtest metrics
glossary and the ops runbook.
"""

from .daemon import run_cluster
from .loadtest import (
    MIXES,
    LoadRequest,
    LoadTestReport,
    WorkerSlice,
    request_mix,
    run_loadtest,
)
from .ring import DEFAULT_VNODES, HashRing, ring_point
from .router import (
    WORKER_HEADER,
    ClusterState,
    RouterServer,
    WorkerView,
    make_router,
)
from .warmup import collect_cache_entries, plan_warmup, warm_worker
from .workers import ClusterManager, WorkerProcess, WorkerSpawnError

__all__ = [
    "HashRing",
    "DEFAULT_VNODES",
    "ring_point",
    "ClusterState",
    "RouterServer",
    "WorkerView",
    "make_router",
    "WORKER_HEADER",
    "WorkerProcess",
    "ClusterManager",
    "WorkerSpawnError",
    "collect_cache_entries",
    "plan_warmup",
    "warm_worker",
    "MIXES",
    "LoadRequest",
    "LoadTestReport",
    "WorkerSlice",
    "request_mix",
    "run_loadtest",
    "run_cluster",
]
