"""The cluster router: consistent-hash request sharding over N workers.

``repro cluster`` runs one :class:`RouterServer` in front of N ordinary
``repro serve`` worker daemons.  The router speaks the *same* wire
protocol as a single worker — clients cannot tell a cluster from one
daemon — and adds:

routing
    ``POST /v1/solve`` and ``POST /v1/dynamic/start`` are routed by the
    request's *instance fingerprint* (content-addressed SHA-256, see
    :mod:`repro.service.fingerprint`) through a consistent-hash ring
    (:mod:`repro.cluster.ring`), so identical instances always land on
    the same worker and its result cache.  ``/v1/dynamic/apply`` and
    ``/v1/dynamic/close`` follow the *session*: the router remembers
    which worker opened each session id and pins the session's traffic
    there (sessions are stateful; they must not wander).

failover
    A worker that refuses connections, times out or answers 5xx is
    retried against the next ring successor with bounded exponential
    backoff (``backoff_base * 2^attempt``, capped).  Safe for
    ``/v1/solve`` because solving is deterministic and idempotent;
    session traffic is only ever retried against its own worker.
    4xx responses are the *caller's* fault and are relayed verbatim,
    never retried.

health
    A background prober hits every worker's ``/v1/healthz`` each
    ``probe_interval`` seconds.  ``down_after`` consecutive failures
    (probe or forward) eject the worker from the ring — its keys remap
    minimally to the ring successors — and a succeeding probe re-adds
    it.  On rejoin, the router warms the worker's result cache from the
    *other* workers' durable WAL/snapshot state
    (:mod:`repro.cluster.warmup`), so recovered workers return warm.

observability
    The router's ``GET /v1/healthz`` reports per-worker ring ownership
    share, aliveness, last-probe latency and forward/retry counters —
    ``status`` is ``"ok"`` with every worker up, ``"degraded"`` while
    serving without some, ``"down"`` with none.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from ..service.fingerprint import instance_fingerprint
from ..service.schema import (
    WIRE_SCHEMA_VERSION,
    ErrorCode,
    SolveRequest,
    WireFormatError,
)
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["ClusterState", "RouterServer", "make_router", "WorkerView"]

_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Response header naming the worker that served a routed request —
#: the load generator uses it for per-worker attribution.
WORKER_HEADER = "X-Repro-Worker"


class WorkerView:
    """Mutable per-worker bookkeeping (guarded by the cluster lock)."""

    def __init__(self, node_id: str, base_url: str) -> None:
        self.node_id = node_id
        self.base_url = base_url.rstrip("/")
        self.alive = True
        self.consecutive_failures = 0
        self.last_probe_ms: Optional[float] = None
        self.last_probe_ok: Optional[bool] = None
        self.requests = 0
        self.retries = 0
        self.warmed_entries = 0

    def to_wire(self, share: float) -> dict:
        return {
            "node_id": self.node_id,
            "url": self.base_url,
            "alive": self.alive,
            "ring_share": share,
            "last_probe_ms": self.last_probe_ms,
            "last_probe_ok": self.last_probe_ok,
            "consecutive_failures": self.consecutive_failures,
            "requests": self.requests,
            "retries": self.retries,
            "warmed_entries": self.warmed_entries,
        }


class ClusterState:
    """Shared, locked cluster membership + routing state.

    Parameters
    ----------
    workers:
        ``node_id -> base_url`` of the worker fleet.
    vnodes:
        Virtual nodes per worker on the hash ring.
    down_after:
        Consecutive failures (probe or forward) before a worker is
        ejected from the ring.
    data_dirs:
        Optional ``node_id -> data_dir`` map for locally managed
        workers; enables cache warm-up on rejoin.  Attached remote
        workers (URLs only) skip warm-up.
    """

    def __init__(
        self,
        workers: Dict[str, str],
        *,
        vnodes: int = DEFAULT_VNODES,
        down_after: int = 2,
        data_dirs: Optional[Dict[str, str]] = None,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        self._lock = threading.Lock()
        self.workers: Dict[str, WorkerView] = {
            node_id: WorkerView(node_id, url)
            for node_id, url in sorted(workers.items())
        }
        self.ring = HashRing(self.workers, vnodes=vnodes)
        self.down_after = max(1, down_after)
        self.data_dirs = dict(data_dirs or {})
        self.sessions: Dict[str, str] = {}  # session_id -> node_id
        self.started = time.monotonic()

    # -- routing -------------------------------------------------------
    def successors(self, key: str) -> List[WorkerView]:
        """Failover order for ``key``: live ring members, then the rest.

        Ejected workers are appended last so that a request arriving
        while *every* worker is marked down still probes the full
        fleet before giving up.
        """
        with self._lock:
            order = self.ring.successors(key)
            out = [self.workers[n] for n in order]
            dead = [w for n, w in sorted(self.workers.items()) if n not in order]
        return out + dead

    def worker_for_session(self, session_id: str) -> Optional[WorkerView]:
        with self._lock:
            node_id = self.sessions.get(session_id)
            return self.workers.get(node_id) if node_id is not None else None

    def bind_session(self, session_id: str, node_id: str) -> None:
        with self._lock:
            self.sessions[session_id] = node_id

    def release_session(self, session_id: str) -> None:
        with self._lock:
            self.sessions.pop(session_id, None)

    def live_workers(self) -> List[WorkerView]:
        with self._lock:
            return [w for w in self.workers.values() if w.alive]

    def all_workers(self) -> List[WorkerView]:
        with self._lock:
            return list(self.workers.values())

    # -- failure accounting --------------------------------------------
    def note_failure(self, worker: WorkerView) -> bool:
        """Record one failed probe/forward; True if this ejected it."""
        with self._lock:
            worker.consecutive_failures += 1
            if worker.alive and worker.consecutive_failures >= self.down_after:
                worker.alive = False
                self.ring.remove(worker.node_id)
                return True
        return False

    def note_success(self, worker: WorkerView) -> bool:
        """Record one success; True if this re-admitted the worker."""
        with self._lock:
            worker.consecutive_failures = 0
            if not worker.alive:
                worker.alive = True
                self.ring.add(worker.node_id)
                return True
        return False

    def healthz(self, version: str) -> dict:
        with self._lock:
            shares = self.ring.ownership()
            views = [
                w.to_wire(shares.get(w.node_id, 0.0))
                for w in sorted(self.workers.values(), key=lambda w: w.node_id)
            ]
            n_alive = sum(1 for w in self.workers.values() if w.alive)
            n_total = len(self.workers)
            sessions = len(self.sessions)
            uptime = time.monotonic() - self.started
        status = (
            "ok" if n_alive == n_total else "degraded" if n_alive else "down"
        )
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "status": status,
            "role": "router",
            "version": version,
            "ring": {
                "vnodes": self.ring.vnodes,
                "workers_alive": n_alive,
                "workers_total": n_total,
            },
            "sessions": sessions,
            "uptime_s": uptime,
            "workers": views,
        }


class _Prober(threading.Thread):
    """Background health prober; drives eject/rejoin + rejoin warm-up."""

    def __init__(
        self, state: ClusterState, interval: float, timeout: float
    ) -> None:
        super().__init__(name="cluster-prober", daemon=True)
        self.state = state
        self.interval = interval
        self.timeout = timeout
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            for worker in self.state.all_workers():
                self.probe(worker)

    def probe(self, worker: WorkerView) -> None:
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(
                worker.base_url + "/v1/healthz", timeout=self.timeout
            ) as resp:
                ok = resp.status == 200
                resp.read()
        except Exception:  # noqa: BLE001 - any transport failure counts
            ok = False
        latency_ms = (time.perf_counter() - t0) * 1e3
        worker.last_probe_ms = latency_ms
        worker.last_probe_ok = ok
        if ok:
            rejoined = self.state.note_success(worker)
            if rejoined:
                self._warm(worker)
        else:
            self.state.note_failure(worker)

    def _warm(self, worker: WorkerView) -> None:
        """Best-effort cache warm-up for a worker that just rejoined."""
        if not self.state.data_dirs:
            return
        from .warmup import plan_warmup, warm_worker

        with self.state._lock:
            ring = HashRing(self.state.ring.nodes, vnodes=self.state.ring.vnodes)
        entries = plan_warmup(worker.node_id, ring, self.state.data_dirs)
        if entries:
            worker.warmed_entries += warm_worker(worker.base_url, entries)


class RouterServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared cluster state."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        state: ClusterState,
        *,
        probe_interval: float = 1.0,
        probe_timeout: float = 5.0,
        forward_timeout: float = 60.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 0.5,
        retry_rounds: int = 2,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.state = state
        self.forward_timeout = forward_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_rounds = max(1, retry_rounds)
        self.verbose = verbose
        self.prober = _Prober(state, probe_interval, probe_timeout)

    def start_prober(self) -> None:
        if not self.prober.is_alive():
            self.prober.start()

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        self.prober.stop_event.set()
        super().server_close()


class _RouterHandler(BaseHTTPRequestHandler):
    server: RouterServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            sys.stderr.write(f"{self.address_string()} - {fmt % args}\n")

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict, *, worker: Optional[str] = None
    ) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode("utf-8"), worker=worker
        )

    def _send_bytes(
        self, status: int, body: bytes, *, worker: Optional[str] = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if worker is not None:
            self.send_header(WORKER_HEADER, worker)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(
            status,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "error": {"code": code, "message": message},
            },
        )

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(
                413 if length > _MAX_BODY_BYTES else 400,
                ErrorCode.BAD_REQUEST,
                f"bad Content-Length {self.headers.get('Content-Length')!r}",
            )
            return None
        return self.rfile.read(length)

    # -- forwarding core -----------------------------------------------
    def _forward_once(
        self, worker: WorkerView, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes]:
        """One upstream attempt; raises on transport failure."""
        req = urllib.request.Request(
            worker.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                req, timeout=self.server.forward_timeout
            ) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            # Worker answered: an HTTP status, not a transport failure.
            return exc.code, exc.read()

    def _forward_failover(
        self, key: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes, Optional[str]]:
        """Forward with ring failover + bounded exponential backoff.

        Walks the key's successor list (live members first) for up to
        ``retry_rounds`` rounds, sleeping ``backoff_base * 2^attempt``
        (capped at ``backoff_cap``) between consecutive failures.  A
        worker that answers — any status — ends the walk: HTTP-level
        errors from a healthy worker are the upstream's verdict, 5xx
        excepted, which triggers failover like a transport failure.
        """
        server = self.server
        state = server.state
        attempt = 0
        last_error = "no workers configured"
        for _round in range(server.retry_rounds):
            for worker in state.successors(key):
                if attempt:
                    delay = min(
                        server.backoff_cap,
                        server.backoff_base * (2 ** (attempt - 1)),
                    )
                    time.sleep(delay)
                attempt += 1
                try:
                    status, payload = self._forward_once(worker, path, body)
                except Exception as exc:  # noqa: BLE001 - transport failure
                    last_error = f"{worker.node_id}: {type(exc).__name__}: {exc}"
                    state.note_failure(worker)
                    continue
                if status >= 500:
                    last_error = f"{worker.node_id}: upstream HTTP {status}"
                    state.note_failure(worker)
                    continue
                state.note_success(worker)
                worker.requests += 1
                if attempt > 1:
                    worker.retries += 1
                return status, payload, worker.node_id
        return (
            503,
            json.dumps({
                "schema": WIRE_SCHEMA_VERSION,
                "error": {
                    "code": ErrorCode.SOLVER_ERROR,
                    "message": f"no worker available for key "
                               f"{key[:16]}… — last error: {last_error}",
                },
            }).encode("utf-8"),
            None,
        )

    def _forward_pinned(
        self, worker: WorkerView, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes, Optional[str]]:
        """Forward to one specific worker (session traffic), with
        bounded backoff retries against the *same* worker only."""
        server = self.server
        last_error = "unreachable"
        for attempt in range(server.retry_rounds + 1):
            if attempt:
                time.sleep(min(
                    server.backoff_cap, server.backoff_base * (2 ** (attempt - 1))
                ))
            try:
                status, payload = self._forward_once(worker, path, body)
            except Exception as exc:  # noqa: BLE001 - transport failure
                last_error = f"{type(exc).__name__}: {exc}"
                server.state.note_failure(worker)
                continue
            server.state.note_success(worker)
            worker.requests += 1
            if attempt:
                worker.retries += 1
            return status, payload, worker.node_id
        return (
            503,
            json.dumps({
                "schema": WIRE_SCHEMA_VERSION,
                "error": {
                    "code": ErrorCode.SOLVER_ERROR,
                    "message": f"session worker {worker.node_id} is "
                               f"unavailable — {last_error}",
                },
            }).encode("utf-8"),
            None,
        )

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/v1/healthz":
            from .. import __version__

            self._send_json(200, self.server.state.healthz(__version__))
        elif self.path == "/v1/solvers":
            # Registry introspection is identical on every worker.
            status, payload, node = self._forward_failover(
                "solvers", "/v1/solvers", None
            )
            self._send_bytes(status, payload, worker=node)
        elif self.path == "/v1/dynamic":
            self._get_dynamic()
        else:
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )

    def _get_dynamic(self) -> None:
        """Fan out to every live worker and merge the session lists."""
        sessions: List[dict] = []
        for worker in self.server.state.live_workers():
            try:
                status, payload = self._forward_once(worker, "/v1/dynamic", None)
            except Exception:  # noqa: BLE001 - skip unreachable workers
                continue
            if status != 200:
                continue
            for item in json.loads(payload).get("sessions", []):
                item["worker"] = worker.node_id
                sessions.append(item)
        sessions.sort(key=lambda s: s.get("session_id", ""))
        self._send_json(
            200, {"schema": WIRE_SCHEMA_VERSION, "sessions": sessions}
        )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        routes = {
            "/v1/solve": self._post_solve,
            "/v1/dynamic/start": self._post_dynamic_start,
            "/v1/dynamic/apply": self._post_dynamic_pinned,
            "/v1/dynamic/close": self._post_dynamic_pinned,
        }
        route = routes.get(self.path)
        if route is None:
            self.close_connection = True
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )
            return
        body = self._read_body()
        if body is None:
            return
        route(body)

    def _post_solve(self, body: bytes) -> None:
        try:
            request = SolveRequest.from_wire(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, f"body is not JSON: {exc}"
            )
            return
        except WireFormatError as exc:
            self._send_error_json(400, ErrorCode.BAD_REQUEST, str(exc))
            return
        key = instance_fingerprint(request.instance)
        status, payload, node = self._forward_failover(key, "/v1/solve", body)
        self._send_bytes(status, payload, worker=node)

    def _post_dynamic_start(self, body: bytes) -> None:
        from ..instances.io import instance_from_dict

        try:
            envelope = json.loads(body or b"null")
            instance = instance_from_dict(envelope["instance"])
        except Exception as exc:  # noqa: BLE001 - normalise codec failures
            self._send_error_json(
                400,
                ErrorCode.BAD_REQUEST,
                f"bad dynamic/start payload — {type(exc).__name__}: {exc}",
            )
            return
        key = instance_fingerprint(instance)
        status, payload, node = self._forward_failover(
            key, "/v1/dynamic/start", body
        )
        if status == 200 and node is not None:
            try:
                session_id = json.loads(payload).get("session_id")
            except json.JSONDecodeError:  # pragma: no cover - worker bug
                session_id = None
            if isinstance(session_id, str):
                self.server.state.bind_session(session_id, node)
        self._send_bytes(status, payload, worker=node)

    def _post_dynamic_pinned(self, body: bytes) -> None:
        try:
            envelope = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, f"body is not JSON: {exc}"
            )
            return
        session_id = (
            envelope.get("session_id") if isinstance(envelope, dict) else None
        )
        if not isinstance(session_id, str):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'session_id' must be a string"
            )
            return
        worker = self.server.state.worker_for_session(session_id)
        if worker is None:
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such session: {session_id}"
            )
            return
        status, payload, node = self._forward_pinned(worker, self.path, body)
        if self.path == "/v1/dynamic/close" and status == 200:
            self.server.state.release_session(session_id)
        self._send_bytes(status, payload, worker=node)


def make_router(
    host: str = "127.0.0.1",
    port: int = 8360,
    *,
    workers: Dict[str, str],
    vnodes: int = DEFAULT_VNODES,
    down_after: int = 2,
    data_dirs: Optional[Dict[str, str]] = None,
    probe_interval: float = 1.0,
    probe_timeout: float = 5.0,
    forward_timeout: float = 60.0,
    backoff_base: float = 0.05,
    backoff_cap: float = 0.5,
    retry_rounds: int = 2,
    verbose: bool = False,
) -> RouterServer:
    """Build (but do not start) a router bound to ``host:port``.

    ``port=0`` binds an ephemeral port, same contract as
    :func:`repro.service.daemon.make_server`.  Call
    :meth:`RouterServer.start_prober` before ``serve_forever`` to begin
    health probing (tests may drive :meth:`_Prober.probe` manually for
    determinism instead).
    """
    state = ClusterState(
        workers, vnodes=vnodes, down_after=down_after, data_dirs=data_dirs
    )
    return RouterServer(
        (host, port),
        state,
        probe_interval=probe_interval,
        probe_timeout=probe_timeout,
        forward_timeout=forward_timeout,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        retry_rounds=retry_rounds,
        verbose=verbose,
    )
