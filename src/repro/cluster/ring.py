"""Consistent-hash ring: stable key -> worker routing with minimal remap.

The cluster shards requests by *content fingerprint* (the SHA-256
instance/request fingerprints from :mod:`repro.service.fingerprint`),
so the routing key space is already uniform hex strings.  The ring maps
that space onto workers with the classic consistent-hashing
construction:

* every worker owns ``vnodes`` points on a 64-bit circle, each point
  the blake2b digest of ``"<node>#<replica>"``;
* a key routes to the owner of the first point clockwise of
  ``blake2b(key)``;
* adding or removing one worker only moves the keys in the arcs that
  worker's points own — an expected ``1/N`` fraction — while every
  other key keeps its owner (the minimal-remap property the failover
  and rebalancing logic relies on).

Everything is derived from the *names* of the members, so two ring
instances built in different processes from the same membership agree
on every routing decision — the property the router, the load
generator and the warm-up planner all depend on (and that the
Hypothesis suite in ``tests/test_cluster_ring.py`` pins).
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Iterable, List, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES", "ring_point"]

#: Virtual nodes per worker.  16 keeps a 3–8 worker ring within 2x of
#: a uniform key split (property-tested) at negligible lookup cost.
DEFAULT_VNODES = 16

_SPACE = 1 << 64


def ring_point(label: str) -> int:
    """The 64-bit ring position of ``label`` (pure function of content).

    blake2b rather than ``hash()``: Python's string hashing is salted
    per process (PYTHONHASHSEED), and routing must agree across the
    router, the workers and any offline planner.
    """
    return int.from_bytes(
        blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over named workers.

    Not thread-safe by itself — the router guards membership changes
    with its own lock and treats lookups on a stale ring as harmless
    (a request routed to a just-removed worker fails over normally).
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        # Sorted, parallel arrays of (point, owner) — rebuilt on change;
        # membership churn is rare, lookups are the hot path.
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, sorted by name."""
        return tuple(sorted(self._nodes))

    def add(self, node: str) -> None:
        """Add a worker (idempotent: re-adding a member is a no-op)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a worker (idempotent: removing a stranger is a no-op)."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs: List[Tuple[int, str]] = []
        for node in self._nodes:
            for replica in range(self.vnodes):
                # Tie-break colliding points by owner name so iteration
                # order — and therefore routing — is deterministic.
                pairs.append((ring_point(f"{node}#{replica}"), node))
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]

    # -- routing -------------------------------------------------------
    def route(self, key: str) -> str:
        """The worker owning ``key`` (raises on an empty ring)."""
        if not self._nodes:
            raise LookupError("cannot route on an empty ring")
        idx = bisect_right(self._points, ring_point(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def successors(self, key: str, limit: int = 0) -> List[str]:
        """Distinct workers in clockwise order from ``key``.

        The first element is :meth:`route`'s answer; the rest are the
        failover order — the worker that *would* own the key if every
        earlier one left the ring.  ``limit=0`` returns all members.
        """
        if not self._nodes:
            return []
        want = len(self._nodes) if limit <= 0 else min(limit, len(self._nodes))
        start = bisect_right(self._points, ring_point(key))
        out: List[str] = []
        seen = set()
        n = len(self._points)
        for off in range(n):
            owner = self._owners[(start + off) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == want:
                    break
        return out

    # -- observability -------------------------------------------------
    def ownership(self) -> Dict[str, float]:
        """Fraction of the hash space each worker owns (sums to 1.0).

        This is the *expected* share of uniformly distributed keys —
        the number the router publishes per worker in ``/v1/healthz``
        so imbalance is observable without sampling.
        """
        if not self._nodes:
            return {}
        shares = {node: 0 for node in self._nodes}
        n = len(self._points)
        for i, point in enumerate(self._points):
            prev = self._points[i - 1] if i else self._points[-1]
            arc = (point - prev) % _SPACE
            if n == 1 or arc == 0:
                arc = _SPACE if n == 1 else arc
            shares[self._owners[i]] += arc
        return {node: arc / _SPACE for node, arc in sorted(shares.items())}
