"""Worker process management for the placement cluster.

A *worker* is an ordinary ``repro serve`` daemon — the whole single-node
service stack, durability included — run as a child process with its own
``--data-dir``.  The cluster layer adds nothing inside the worker: the
router shards traffic across N of them, and this module owns their
lifecycle (spawn, readiness, kill, restart) for the ``repro cluster``
and ``repro loadtest --spawn`` verbs, the fault-injection test suite and
the CI cluster job.

Workers bind ephemeral ports (``--port 0``) and announce the bound
address on stderr; :class:`WorkerProcess` parses it back, so parallel
clusters never collide.  ``kill -9`` is a first-class operation here —
the whole point of giving each worker a data-dir is that a SIGKILLed
worker restarted over the same directory recovers its result cache and
dynamic sessions from the WAL/snapshot state (:mod:`repro.storage`).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = ["WorkerProcess", "ClusterManager", "WorkerSpawnError"]

_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")

#: Seconds a freshly spawned worker gets to announce its address.
_SPAWN_TIMEOUT_S = 60.0


class WorkerSpawnError(RuntimeError):
    """A worker subprocess exited before announcing its address."""


class WorkerProcess:
    """One ``repro serve`` child process with a durable data directory."""

    def __init__(
        self,
        node_id: str,
        data_dir: str,
        *,
        snapshot_interval: int = 64,
        host: str = "127.0.0.1",
    ) -> None:
        self.node_id = node_id
        self.data_dir = data_dir
        self.snapshot_interval = snapshot_interval
        self.host = host
        self.proc: Optional[subprocess.Popen] = None
        self.base_url: Optional[str] = None
        self.stderr_lines: List[str] = []
        # First spawn binds an ephemeral port; restarts re-bind the same
        # one so the router's worker URL stays valid across a crash.
        self._port = 0
        self.start()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn (or respawn) the daemon and wait until it listens."""
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve", "--host", self.host, "--port", str(self._port),
                "--data-dir", self.data_dir,
                "--snapshot-interval", str(self.snapshot_interval),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines = []
        self.base_url = self._await_listening()
        self._port = int(self.base_url.rsplit(":", 1)[1])
        # Keep draining stderr so the pipe never fills and blocks the
        # worker's own logging.
        threading.Thread(
            target=self._pump, name=f"{self.node_id}-stderr", daemon=True
        ).start()

    def _await_listening(self) -> str:
        assert self.proc is not None and self.proc.stderr is not None
        deadline = time.monotonic() + _SPAWN_TIMEOUT_S
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise WorkerSpawnError(
                    f"worker {self.node_id} exited before listening:\n"
                    + "".join(self.stderr_lines)
                )
            self.stderr_lines.append(line)
            match = _LISTENING.search(line)
            if match:
                return match.group(1)
        raise WorkerSpawnError(
            f"worker {self.node_id} never announced a listening address"
        )

    def _pump(self) -> None:
        proc = self.proc
        if proc is None or proc.stderr is None:  # pragma: no cover
            return
        for line in proc.stderr:
            self.stderr_lines.append(line)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def kill9(self) -> None:
        """SIGKILL — no flush, no snapshot; recovery is WAL replay."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=30)

    def terminate(self) -> Optional[int]:
        """SIGTERM — the graceful path: snapshot + compact, then exit."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.proc.kill()
            return self.proc.wait(timeout=30)

    def restart(self) -> None:
        """Stop (hard) if needed and start over the same data-dir."""
        self.kill9()
        self.start()


class ClusterManager:
    """Spawn and track the worker fleet for a locally managed cluster.

    Worker ``i`` is named ``worker-<i>`` and persists under
    ``<data_root>/worker-<i>`` — the data-dir naming the CI job and the
    ops runbook (``docs/cluster.md``) rely on to address workers from a
    shell (``pkill -f 'worker-0'``).
    """

    def __init__(
        self,
        n_workers: int,
        data_root: str,
        *,
        snapshot_interval: int = 64,
        host: str = "127.0.0.1",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        os.makedirs(data_root, exist_ok=True)
        self.data_root = data_root
        self.workers: Dict[str, WorkerProcess] = {}
        try:
            for i in range(n_workers):
                node_id = f"worker-{i}"
                self.workers[node_id] = WorkerProcess(
                    node_id,
                    os.path.join(data_root, node_id),
                    snapshot_interval=snapshot_interval,
                    host=host,
                )
        except Exception:
            self.stop_all()
            raise

    def urls(self) -> Dict[str, str]:
        """``node_id -> base_url`` for every spawned worker."""
        return {
            node_id: w.base_url
            for node_id, w in self.workers.items()
            if w.base_url is not None
        }

    def data_dirs(self) -> Dict[str, str]:
        """``node_id -> data_dir`` (the warm-up planner's input)."""
        return {n: w.data_dir for n, w in self.workers.items()}

    def worker(self, node_id: str) -> WorkerProcess:
        return self.workers[node_id]

    def stop_all(self, *, graceful: bool = True) -> None:
        for w in self.workers.values():
            try:
                if graceful:
                    w.terminate()
                else:
                    w.kill9()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "ClusterManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop_all()
