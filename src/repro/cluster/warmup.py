"""Result-cache warm-up over the durable WAL/snapshot state.

When a worker (re)joins the ring, the keys it now owns were — while it
was away — served and cached by its ring successors, whose caches are
durable (:mod:`repro.storage`).  Rather than letting those keys restart
cold, the router reads the *other* workers' data directories offline
(snapshot + WAL tail, the exact recovery fold a restarting daemon
performs, minus the session replay) and pushes the cache entries the
new ring assigns to the joining worker through its
``POST /v1/cache/warm`` endpoint.

Reading a live worker's data-dir is safe: snapshots are written
atomically (tmp + rename) and the WAL is append-only, so a concurrent
reader sees a consistent prefix at worst — and a torn final frame is
skipped exactly as crash recovery would skip it.
"""

from __future__ import annotations

import json
import os
import urllib.request
from typing import Dict, Iterable, List, Optional

from ..service.schema import WIRE_SCHEMA_VERSION
from ..storage import (
    CachePut,
    CacheRemove,
    RecoveryError,
    decode_record,
    load_latest_snapshot,
    scan_wal,
)
from ..storage.store import WAL_FILENAME
from .ring import HashRing

__all__ = ["collect_cache_entries", "plan_warmup", "warm_worker"]


def collect_cache_entries(data_dir: str) -> List[dict]:
    """The durable result-cache entries of one worker's data directory.

    Folds ``newest snapshot -> WAL tail`` exactly as service recovery
    does, but only for the cache records (sessions are worker-private
    and never migrate).  Returns ``{"key", "instance_fp", "response"}``
    wire dicts — the ``/v1/cache/warm`` request shape.  A missing or
    structurally damaged directory yields no entries rather than an
    error: warm-up is an optimisation, never a correctness dependency.
    """
    entries: Dict[str, dict] = {}
    snap_seq = 0
    try:
        snap = load_latest_snapshot(data_dir)
        if snap is not None:
            snap_seq, state = snap
            inner = state if isinstance(state, dict) else {}
            for item in list(inner.get("cache", [])):
                entries[str(item["key"])] = {
                    "key": str(item["key"]),
                    "instance_fp": str(item.get("instance_fp", "")),
                    "response": item["response"],
                }
        scan = scan_wal(os.path.join(data_dir, WAL_FILENAME))
        for seq, payload in scan.records:
            if seq <= snap_seq:
                continue
            record = decode_record(payload)
            if isinstance(record, CachePut):
                entries[record.key] = {
                    "key": record.key,
                    "instance_fp": record.instance_fp,
                    "response": record.response,
                }
            elif isinstance(record, CacheRemove):
                for key in record.keys:
                    entries.pop(key, None)
    except (RecoveryError, OSError, KeyError, TypeError, ValueError):
        return []
    return list(entries.values())


def plan_warmup(
    node_id: str,
    ring: HashRing,
    data_dirs: Dict[str, str],
) -> List[dict]:
    """Entries other workers hold that ``ring`` now routes to ``node_id``.

    Scans every data directory *except* the target's own (a restarted
    worker recovers its own entries during boot) and keeps the entries
    whose instance fingerprint the current ring assigns to ``node_id``.
    Entries without an instance fingerprint cannot be routed and are
    skipped.
    """
    planned: Dict[str, dict] = {}
    for owner, data_dir in sorted(data_dirs.items()):
        if owner == node_id:
            continue
        for entry in collect_cache_entries(data_dir):
            fp = entry.get("instance_fp")
            if not fp:
                continue
            if node_id in ring and ring.route(fp) == node_id:
                planned[entry["key"]] = entry
    return list(planned.values())


def warm_worker(
    base_url: str,
    entries: Iterable[dict],
    *,
    timeout: float = 30.0,
    batch_size: int = 64,
) -> int:
    """POST ``entries`` to a worker's ``/v1/cache/warm``; warmed count.

    Batched so a large accumulated cache never produces one giant
    request body.  Transport failures abort the remaining batches and
    return what was warmed so far — the worker simply stays (partially)
    cold, which is always correct.
    """
    batch: List[dict] = []
    warmed = 0

    def _flush(chunk: List[dict]) -> Optional[int]:
        body = json.dumps(
            {"schema": WIRE_SCHEMA_VERSION, "entries": chunk}
        ).encode("utf-8")
        req = urllib.request.Request(
            base_url + "/v1/cache/warm",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return int(json.loads(resp.read()).get("warmed", 0))

    for entry in entries:
        batch.append(entry)
        if len(batch) >= batch_size:
            try:
                warmed += _flush(batch) or 0
            except Exception:  # noqa: BLE001 - warm-up is best-effort
                return warmed
            batch = []
    if batch:
        try:
            warmed += _flush(batch) or 0
        except Exception:  # noqa: BLE001 - warm-up is best-effort
            return warmed
    return warmed
