"""``repro loadtest`` — deterministic concurrent load against a cluster.

The load generator turns "millions of users" from a slogan into a
measured number: it drives a router (or a single daemon — they speak
the same protocol) with a *seeded, reproducible* request mix and
reports client-side p50/p99 latency, error rate, throughput and
cache-hit throughput, per worker and in aggregate.

Determinism contract (test-gated in ``tests/test_cluster_loadtest.py``):
``request_mix(seed, n, mix)`` produces the identical sequence of
request fingerprints on every machine and process — instances come from
:data:`repro.instances.GENERATORS` specs with pinned seeds, repetition
comes from a seeded Zipf-style draw (so result caches see realistic
re-request traffic), and nothing depends on wall clock, PYTHONHASHSEED
or thread scheduling.  Only the *latencies* vary between runs; the
*work* never does.
"""

from __future__ import annotations

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

from ..instances import make_instance
from ..service.fingerprint import instance_fingerprint
from ..service.schema import SolveRequest
from .router import WORKER_HEADER

__all__ = [
    "MIXES",
    "LoadRequest",
    "LoadTestReport",
    "WorkerSlice",
    "request_mix",
    "run_loadtest",
]

#: Named request mixes: a pool of generator specs each mix draws from.
#: Sizes are service-shaped — thousands of small solves, not one huge
#: one — and every spec pins its own seed so the pool is reproducible.
MIXES: Dict[str, List[dict]] = {
    # The default mix: varied small topologies across both policies.
    "default": [
        {"kind": "random_tree", "n_internal": 8, "n_clients": 16,
         "capacity": 12, "dmax": 6.0, "seed": 101},
        {"kind": "random_tree", "n_internal": 10, "n_clients": 20,
         "capacity": 16, "dmax": 7.0, "seed": 102},
        {"kind": "random_tree", "n_internal": 6, "n_clients": 14,
         "capacity": 10, "dmax": 5.0, "policy": "multiple", "seed": 103},
        {"kind": "caterpillar", "length": 12, "capacity": 9,
         "dmax": 6.0, "seed": 104},
        {"kind": "broom", "handle": 5, "n_clients": 12, "capacity": 8,
         "dmax": 5.0, "seed": 105},
        {"kind": "star", "n_clients": 18, "capacity": 9, "seed": 106},
        {"kind": "random_binary_tree", "n_internal": 9, "n_clients": 10,
         "capacity": 14, "dmax": 8.0, "seed": 107},
        {"kind": "random_tree", "n_internal": 7, "n_clients": 15,
         "capacity": 11, "dmax": 6.0, "policy": "multiple", "seed": 108},
        {"kind": "caterpillar", "length": 9, "capacity": 7,
         "dmax": 5.0, "seed": 109},
        {"kind": "broom", "handle": 6, "n_clients": 10, "capacity": 7,
         "dmax": 4.0, "seed": 110},
        {"kind": "star", "n_clients": 14, "capacity": 7, "seed": 111},
        {"kind": "random_tree", "n_internal": 12, "n_clients": 24,
         "capacity": 18, "dmax": 8.0, "seed": 112},
    ],
    # Adversarial topologies from the scenario library.
    "scenario": [
        {"kind": "scenario", "family": "star/uniform", "size": 16,
         "capacity": 8, "seed": 1},
        {"kind": "scenario", "family": "star/zipf", "size": 16,
         "capacity": 8, "seed": 2},
        {"kind": "scenario", "family": "caterpillar/uniform", "size": 16,
         "capacity": 10, "dmax": 8.0, "seed": 3},
        {"kind": "scenario", "family": "broom/heavy_tailed", "size": 16,
         "capacity": 12, "seed": 4},
        {"kind": "scenario", "family": "deep_chain/uniform", "size": 12,
         "capacity": 10, "dmax": 10.0, "seed": 5},
        {"kind": "scenario", "family": "random_attachment/zipf", "size": 16,
         "capacity": 12, "seed": 6},
    ],
    # Tiny pool for smoke runs: high repetition, high cache-hit rate.
    "quick": [
        {"kind": "random_tree", "n_internal": 5, "n_clients": 10,
         "capacity": 8, "dmax": 5.0, "seed": 201},
        {"kind": "caterpillar", "length": 7, "capacity": 6,
         "dmax": 5.0, "seed": 202},
        {"kind": "star", "n_clients": 12, "capacity": 6, "seed": 203},
        {"kind": "broom", "handle": 4, "n_clients": 8, "capacity": 6,
         "dmax": 4.0, "seed": 204},
    ],
}


@dataclass(frozen=True)
class LoadRequest:
    """One request of the mix: spec, fingerprint and wire payload."""

    index: int
    spec: dict
    instance_fp: str
    wire: dict


def request_mix(
    seed: int, n_requests: int, mix: str = "default"
) -> List[LoadRequest]:
    """The deterministic request sequence for ``(seed, n_requests, mix)``.

    Draws from the mix's spec pool with a Zipf-style bias (spec ``i``
    of the shuffled pool has weight ``1/(i+1)``), so a minority of
    instances dominates the traffic — the shape that makes result
    caches and consistent-hash shard affinity measurable.  Everything
    is derived from ``seed`` via :class:`random.Random`; wall clock and
    process identity never participate.
    """
    try:
        pool_specs = MIXES[mix]
    except KeyError:
        known = ", ".join(sorted(MIXES))
        raise KeyError(f"unknown mix {mix!r}; known: {known}") from None
    rng = Random(seed)
    order = list(range(len(pool_specs)))
    rng.shuffle(order)
    weights = [1.0 / (rank + 1) for rank in range(len(order))]
    # Fingerprint each pool entry once; requests reuse the wire dicts.
    pool = []
    for pos in order:
        spec = dict(pool_specs[pos])
        instance = make_instance(spec)
        pool.append((
            spec,
            instance_fingerprint(instance),
            SolveRequest(instance=instance).to_wire(),
        ))
    choices = rng.choices(range(len(pool)), weights=weights, k=n_requests)
    return [
        LoadRequest(index=i, spec=pool[c][0], instance_fp=pool[c][1],
                    wire=pool[c][2])
        for i, c in enumerate(choices)
    ]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[idx]


@dataclass
class WorkerSlice:
    """Per-worker attribution of the load (from the router's header)."""

    requests: int = 0
    cache_hits: int = 0
    errors: int = 0
    latency_ms_sum: float = 0.0

    @property
    def latency_ms_mean(self) -> float:
        return self.latency_ms_sum / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "latency_ms_mean": self.latency_ms_mean,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerSlice":
        out = cls(
            requests=int(data.get("requests", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            errors=int(data.get("errors", 0)),
        )
        out.latency_ms_sum = (
            float(data.get("latency_ms_mean", 0.0)) * out.requests
        )
        return out


@dataclass
class LoadTestReport:
    """Everything ``repro loadtest`` measured, JSON round-trippable."""

    url: str
    mix: str
    seed: int
    n_requests: int
    concurrency: int
    wall_s: float = 0.0
    ok: int = 0
    failed: int = 0          # transport failures + non-2xx/4xx envelopes
    solver_errors: int = 0   # well-formed responses with status != ok
    cache_hits: int = 0
    distinct_instances: int = 0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    per_worker: Dict[str, WorkerSlice] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        total = self.ok + self.failed + self.solver_errors
        return self.failed / total if total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.ok if self.ok else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rps(self) -> float:
        return self.cache_hits / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "url": self.url,
            "mix": self.mix,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "concurrency": self.concurrency,
            "wall_s": self.wall_s,
            "ok": self.ok,
            "failed": self.failed,
            "solver_errors": self.solver_errors,
            "cache_hits": self.cache_hits,
            "distinct_instances": self.distinct_instances,
            "error_rate": self.error_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "throughput_rps": self.throughput_rps,
            "cache_hit_rps": self.cache_hit_rps,
            "latency_ms": dict(self.latency_ms),
            "per_worker": {
                node: s.to_dict() for node, s in sorted(self.per_worker.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadTestReport":
        report = cls(
            url=str(data["url"]),
            mix=str(data["mix"]),
            seed=int(data["seed"]),
            n_requests=int(data["n_requests"]),
            concurrency=int(data["concurrency"]),
            wall_s=float(data.get("wall_s", 0.0)),
            ok=int(data.get("ok", 0)),
            failed=int(data.get("failed", 0)),
            solver_errors=int(data.get("solver_errors", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            distinct_instances=int(data.get("distinct_instances", 0)),
            latency_ms={
                k: float(v) for k, v in dict(data.get("latency_ms", {})).items()
            },
        )
        report.per_worker = {
            str(node): WorkerSlice.from_dict(s)
            for node, s in dict(data.get("per_worker", {})).items()
        }
        return report


def run_loadtest(
    url: str,
    *,
    n_requests: int = 200,
    concurrency: int = 8,
    seed: int = 0,
    mix: str = "default",
    timeout: float = 60.0,
) -> LoadTestReport:
    """Drive ``url`` with the deterministic mix; measure client-side.

    ``url`` may be a router or a plain ``repro serve`` daemon — both
    answer ``POST /v1/solve`` identically; per-worker attribution is
    simply empty against a single daemon (no ``X-Repro-Worker``
    header).  Thread-pool concurrency only affects *timing*: the
    request sequence itself is fixed by ``(seed, n_requests, mix)``.
    """
    requests = request_mix(seed, n_requests, mix)
    report = LoadTestReport(
        url=url,
        mix=mix,
        seed=seed,
        n_requests=n_requests,
        concurrency=concurrency,
        distinct_instances=len({r.instance_fp for r in requests}),
    )
    solve_url = url.rstrip("/") + "/v1/solve"
    results: List[tuple] = [None] * len(requests)  # type: ignore[list-item]

    def _one(load_req: LoadRequest) -> None:
        body = json.dumps(load_req.wire).encode("utf-8")
        t0 = time.perf_counter()
        worker = None
        try:
            req = urllib.request.Request(
                solve_url, data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                payload = json.loads(resp.read())
                worker = resp.headers.get(WORKER_HEADER)
                http_status = resp.status
        except Exception:  # noqa: BLE001 - transport failure = failed req
            results[load_req.index] = (
                (time.perf_counter() - t0) * 1e3, "transport", False, None
            )
            return
        latency_ms = (time.perf_counter() - t0) * 1e3
        status = payload.get("status") if isinstance(payload, dict) else None
        if http_status != 200 or status is None:
            results[load_req.index] = (latency_ms, "transport", False, worker)
            return
        diag = payload.get("diagnostics") or {}
        hit = bool(diag.get("cache_hit"))
        results[load_req.index] = (latency_ms, status, hit, worker)

    t_start = time.perf_counter()
    if concurrency <= 1:
        for r in requests:
            _one(r)
    else:
        with ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="loadtest"
        ) as pool:
            list(pool.map(_one, requests))
    report.wall_s = time.perf_counter() - t_start

    latencies: List[float] = []
    for latency_ms, status, hit, worker in results:
        node = worker or "_single"
        worker_slice = report.per_worker.setdefault(node, WorkerSlice())
        worker_slice.requests += 1
        worker_slice.latency_ms_sum += latency_ms
        if status == "transport":
            report.failed += 1
            worker_slice.errors += 1
            continue
        latencies.append(latency_ms)
        if status == "ok":
            report.ok += 1
            if hit:
                report.cache_hits += 1
                worker_slice.cache_hits += 1
        else:
            report.solver_errors += 1
            worker_slice.errors += 1
    latencies.sort()
    report.latency_ms = {
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50": _percentile(latencies, 0.50),
        "p90": _percentile(latencies, 0.90),
        "p99": _percentile(latencies, 0.99),
        "max": latencies[-1] if latencies else 0.0,
    }
    return report
