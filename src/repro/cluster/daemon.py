"""``repro cluster`` — run a router plus a locally managed worker fleet.

One process-tree: N ``repro serve`` worker subprocesses (each with its
own durable ``--data-dir`` under ``--data-root``) and the consistent-
hash router in the foreground.  SIGTERM/SIGINT stop the router, then
terminate the workers gracefully (each snapshots + compacts its own
state), so the next ``repro cluster`` over the same ``--data-root``
restarts warm.

Attach mode (``worker_urls``) skips the fleet management entirely and
routes across daemons someone else operates — then cache warm-up on
rejoin is disabled (the router cannot read remote data directories) and
shutdown leaves the workers running.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Dict, Optional

from .ring import DEFAULT_VNODES
from .router import RouterServer, make_router
from .workers import ClusterManager

__all__ = ["run_cluster"]


def _install_graceful_shutdown(server: RouterServer) -> dict:
    """SIGTERM/SIGINT -> stop the serve loop (main thread only)."""
    if threading.current_thread() is not threading.main_thread():
        return {}

    def _graceful(signum: int, frame: object) -> None:
        name = signal.Signals(signum).name
        print(
            f"repro cluster: {name} received — stopping router and workers",
            file=sys.stderr,
        )
        threading.Thread(
            target=server.shutdown, name="repro-cluster-shutdown", daemon=True
        ).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _graceful)
    return previous


def run_cluster(
    host: str = "127.0.0.1",
    port: int = 8360,
    *,
    n_workers: int = 3,
    data_root: Optional[str] = None,
    worker_urls: Optional[Dict[str, str]] = None,
    vnodes: int = DEFAULT_VNODES,
    probe_interval: float = 1.0,
    down_after: int = 2,
    snapshot_interval: int = 64,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
) -> int:
    """Run the cluster until interrupted; returns a process exit code.

    Either spawns ``n_workers`` locally (``data_root`` required — each
    worker persists under ``<data_root>/worker-<i>``) or attaches to
    ``worker_urls`` (``node_id -> base_url``).  ``ready`` is set once
    the router socket is bound, for test harnesses.
    """
    manager: Optional[ClusterManager] = None
    if worker_urls:
        workers = dict(worker_urls)
        data_dirs: Dict[str, str] = {}
    else:
        if data_root is None:
            raise ValueError("data_root is required when spawning workers")
        manager = ClusterManager(
            n_workers, data_root, snapshot_interval=snapshot_interval, host=host
        )
        workers = manager.urls()
        data_dirs = manager.data_dirs()
    try:
        server = make_router(
            host,
            port,
            workers=workers,
            vnodes=vnodes,
            down_after=down_after,
            data_dirs=data_dirs,
            probe_interval=probe_interval,
            verbose=verbose,
        )
    except Exception:
        if manager is not None:
            manager.stop_all()
        raise
    bound_host, bound_port = server.server_address[:2]
    managed = (
        f"{len(workers)} managed worker(s) under {data_root}"
        if manager is not None
        else f"{len(workers)} attached worker(s)"
    )
    print(
        f"repro cluster: router listening on http://{bound_host}:{bound_port} "
        f"({managed}; vnodes={vnodes}, probe every {probe_interval}s)",
        file=sys.stderr,
    )
    for node_id, url in sorted(workers.items()):
        print(f"repro cluster:   {node_id} -> {url}", file=sys.stderr)
    previous_handlers = _install_graceful_shutdown(server)
    server.start_prober()
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro cluster: shutting down", file=sys.stderr)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        server.server_close()
        if manager is not None:
            manager.stop_all()
            print(
                "repro cluster: workers stopped (state snapshotted per "
                "data-dir)",
                file=sys.stderr,
            )
    return 0
