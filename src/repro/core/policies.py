"""Access policies for replica placement.

The paper studies two ways requests of a client may be assigned:

* :data:`Policy.SINGLE` — all ``r_i`` requests of client ``i`` are served
  by one server (``|servers(i)| = 1``).
* :data:`Policy.MULTIPLE` — the requests of a client may be split across
  several servers on its root path (``Σ_s r_{i,s} = r_i``).

The policy choice changes the complexity landscape dramatically:
``Single`` is NP-hard even with no distance constraint on binary trees
(Theorem 1), whereas ``Multiple`` on binary trees with distance
constraints is polynomial as long as each client fits a server
(Theorem 6).
"""

from __future__ import annotations

import enum

__all__ = ["Policy"]


class Policy(enum.Enum):
    """Client-to-server assignment policy."""

    SINGLE = "single"
    MULTIPLE = "multiple"

    @property
    def splits_allowed(self) -> bool:
        """True iff a client's requests may be spread over several servers."""
        return self is Policy.MULTIPLE

    def __str__(self) -> str:
        return self.value
