"""Lower bounds on the optimal number of replicas.

These bounds are used by the branch-and-bound exact solver
(:mod:`repro.algorithms.exact`) for pruning, and by the analysis layer to
sandwich solutions when instances are too large for the exact solver.

Three bounds are provided:

* :func:`volume_lower_bound` — ``⌈W_tot / W⌉``: every server processes at
  most ``W`` requests.
* :func:`subtree_lower_bound` — a recursive bound exploiting the tree and
  the distance constraint: requests whose *entire* eligible server set
  lies inside ``subtree(v)`` must be served by servers inside
  ``subtree(v)``; disjoint children subtrees add up.
* :func:`big_item_lower_bound` (Single only) — clients with
  ``r_i > W/2`` can never share a server pairwise, so they need one
  server each.

:func:`lower_bound` combines them.
"""

from __future__ import annotations

import math
from typing import Dict, List

from .instance import ProblemInstance
from .policies import Policy

__all__ = [
    "volume_lower_bound",
    "big_item_lower_bound",
    "subtree_lower_bound",
    "lower_bound",
]


def volume_lower_bound(instance: ProblemInstance) -> int:
    """``⌈Σ_i r_i / W⌉`` — the pure capacity bound."""
    total = instance.tree.total_requests
    if total == 0:
        return 0
    return -(-total // instance.capacity)


def big_item_lower_bound(instance: ProblemInstance) -> int:
    """Number of clients with ``r_i > W/2`` (Single policy only).

    Two such clients can never share a server, so any Single placement
    needs at least one server per big client.  Under the Multiple policy
    requests can be split, so the bound degenerates to the volume bound
    and this function returns 0 to avoid overstating.
    """
    if instance.policy is not Policy.SINGLE:
        return 0
    t = instance.tree
    half = instance.capacity / 2
    return sum(1 for c in t.clients if t.requests(c) > half)


def _highest_eligible(instance: ProblemInstance) -> Dict[int, int]:
    """For each client with requests, the highest ancestor allowed to
    serve it (the last node on its root path within ``dmax``)."""
    t = instance.tree
    out: Dict[int, int] = {}
    for c in t.clients:
        if t.requests(c) == 0:
            continue
        eligible = t.eligible_servers(c, instance.dmax)
        out[c] = eligible[-1][0]
    return out


def subtree_lower_bound(instance: ProblemInstance) -> int:
    """Recursive subtree bound.

    Let ``must(v)`` be the total demand of clients in ``subtree(v)`` whose
    highest eligible server lies in ``subtree(v)`` — these requests cannot
    escape the subtree, so it must contain at least ``⌈must(v)/W⌉``
    servers (and, under Single, at least one per trapped big client).
    Children subtrees are disjoint, hence::

        LB(v) = max( ⌈must(v)/W⌉, big(v), Σ_{c ∈ children(v)} LB(c) )

    and ``LB(root)`` is a valid global lower bound (at the root,
    ``must(root) = W_tot``).
    """
    t = instance.tree
    W = instance.capacity
    highest = _highest_eligible(instance)

    # For each node v: demand trapped at exactly v (clients whose highest
    # eligible ancestor is v).
    trapped_here: List[int] = [0] * len(t)
    big_here: List[int] = [0] * len(t)
    half = W / 2
    single = instance.policy is Policy.SINGLE
    for c, h in highest.items():
        trapped_here[h] += t.requests(c)
        if single and t.requests(c) > half:
            big_here[h] += 1

    lb: List[int] = [0] * len(t)
    must: List[int] = [0] * len(t)
    big: List[int] = [0] * len(t)
    for v in t.postorder():
        m = trapped_here[v]
        b = big_here[v]
        child_sum = 0
        for u in t.children(v):
            m += must[u]
            b += big[u]
            child_sum += lb[u]
        must[v] = m
        big[v] = b
        vol = -(-m // W) if m else 0
        lb[v] = max(vol, b if single else 0, child_sum)
    return lb[t.root]


def lower_bound(instance: ProblemInstance) -> int:
    """Best available lower bound on the optimal replica count."""
    return max(
        volume_lower_bound(instance),
        big_item_lower_bound(instance),
        subtree_lower_bound(instance),
    )
