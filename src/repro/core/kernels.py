"""Step-function DP kernels: one contract, two backends, one batch form.

Every table the NoD dynamic programs manipulate is a **non-increasing
step function over an integer domain** (forwarding more requests can
never require more replicas), with an optional ``inf`` prefix and small
non-negative integer values (replica counts).  This module is the single
home for the kernels that exploit that structure:

* the **monotone min-plus convolution** :func:`min_plus_mono` (child
  table ⊞ pool) and its general quadratic reference :func:`min_plus`;
* the **absorb-window step** :func:`absorb_step` (``g(u) = min(h(u),
  1 + min_{u<U≤u+W} h(U))`` read off the pool's level structure);
* the **leaf table** builder :func:`leaf_table`;
* small fold helpers shared by the greedy solvers
  (:func:`stable_argsort`, :func:`prefix_fit`, :func:`capacity_split`).

Backends
--------
Two element-wise backends implement the same contract **bit-identically**
— same costs, same argmin tie-breaks (toward the smallest split / absorb
index), same ``-1`` no-choice sentinel:

* a pure-Python backend (always available, no dependencies);
* a NumPy backend, selected at import time when NumPy is importable and
  not disabled via ``REPRO_NO_NUMPY=1``.

Dispatch is by operand size: NumPy wins only once tables outgrow its
per-call overhead, so :func:`min_plus_mono` and :func:`absorb_step`
switch backends at ``REPRO_KERNEL_NUMPY_MIN`` elements (default 512).
Because both backends are exactly equal (property-tested in
``tests/test_kernel_conformance.py``), the threshold is a pure
performance knob — it can never change a result.

Batched threshold form
----------------------
For ``solve_many`` the kernels drop the dense table representation
entirely: a non-increasing integer step function is fully described by
its **threshold vector** ``T[v] = min{u : g(u) ≤ v}`` (``SENTINEL`` when
no such ``u`` exists).  In that form, over a whole batch at once:

* min-plus convolution becomes a short min-plus over the *value* axis:
  ``T_out[v] = min_{v1+v2=v} T_a[v1] + T_b[v2]`` (:func:`batch_min_plus_t`);
* the absorb step collapses to three array ops:
  ``T_out[v] = min(T_pool[v], max(T_pool[v-1] - W, 0))`` with window
  validity masks (:func:`batch_absorb_t`).

The batched path is NumPy-only; callers fall back to per-instance solves
when NumPy is unavailable.  ``tests/test_kernel_conformance.py`` pins
both backends and the batched form to
:mod:`repro.algorithms.reference` bit-for-bit.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "HAVE_NUMPY",
    "NUMPY_MIN_LEN",
    "SENTINEL",
    "backend_name",
    "levels",
    "min_plus",
    "min_plus_mono",
    "absorb_step",
    "leaf_table",
    "stable_argsort",
    "prefix_fit",
    "capacity_split",
    "table_to_thresholds",
    "thresholds_to_table",
    "batch_min_plus_t",
    "batch_absorb_t",
    "batch_leaf_thresholds",
]

_INF = float("inf")

#: Threshold-form sentinel for "value unreachable" — large enough that a
#: sum of two sentinels stays far below any integer-precision limit.
SENTINEL = 1 << 20

np = None
if os.environ.get("REPRO_NO_NUMPY", "").strip().lower() not in (
    "1",
    "true",
    "yes",
):
    try:  # pragma: no cover - exercised via the no-NumPy CI leg
        import numpy as np  # type: ignore[no-redef]
    except Exception:  # pragma: no cover - numpy is a baked-in dependency
        np = None

HAVE_NUMPY = np is not None

#: Dense-kernel dispatch threshold: below this many table elements the
#: pure-Python loops beat NumPy's per-call overhead.
NUMPY_MIN_LEN = int(os.environ.get("REPRO_KERNEL_NUMPY_MIN", "512"))


def backend_name() -> str:
    """Active dense-kernel backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if HAVE_NUMPY else "python"


# ----------------------------------------------------------------------
# Level decomposition (shared by both backends' reasoning).
# ----------------------------------------------------------------------


def levels(table: Sequence[float]) -> List[Tuple[int, int, float]]:
    """Constant runs of a non-increasing table, infinite prefix dropped.

    Parameters
    ----------
    table:
        A non-increasing cost table (every DP table is one).

    Returns
    -------
    ``[(start, end, value), ...]`` with inclusive index bounds, ordered
    by ascending ``start`` (hence strictly descending finite ``value``).
    """
    out: List[Tuple[int, int, float]] = []
    prev = _INF
    start = 0
    for j, v in enumerate(table):
        if v != prev:
            if prev != _INF:
                out.append((start, j - 1, prev))
            prev = v
            start = j
    if prev != _INF:
        out.append((start, len(table) - 1, prev))
    return out


# ----------------------------------------------------------------------
# Dense kernels — pure-Python backend.
# ----------------------------------------------------------------------


def min_plus(
    a: Sequence[float], b: Sequence[float], cap: int
) -> Tuple[List[float], List[int]]:
    """Min-plus convolution ``c(U) = min_j a(j) + b(U-j)``, ``U ≤ cap``.

    The general quadratic kernel: no assumption on ``a`` or ``b``.
    Reference implementation for the monotone fast paths; used directly
    only by tests.

    Parameters
    ----------
    a, b:
        Cost tables (``inf`` marks infeasible entries).
    cap:
        Largest ``U`` of interest; the output is truncated to it.

    Returns
    -------
    ``(out, arg)`` — the convolved table and, for reconstruction, the
    argmin split point (the amount taken from ``a``) for each ``U``;
    ties break toward the smallest split.  ``arg[U] == -1`` marks an
    infeasible entry.
    """
    n = min(len(a) + len(b) - 1, cap + 1)
    out = [_INF] * n
    arg = [-1] * n
    for j, aj in enumerate(a):
        if aj == _INF or j >= n:
            continue
        hi = min(len(b), n - j)
        for k in range(hi):
            val = aj + b[k]
            if val < out[j + k]:
                out[j + k] = val
                arg[j + k] = j
    return out, arg


def _min_plus_mono_py(
    a: Sequence[float], b: Sequence[float], cap: int
) -> Tuple[List[float], List[int]]:
    """Pure-Python monotone min-plus kernel (see :func:`min_plus_mono`)."""
    n = min(len(a) + len(b) - 1, cap + 1)
    out = [_INF] * n
    arg = [-1] * n
    b_last = len(b) - 1
    for (j0, j1, av) in levels(a):
        if j0 >= n:
            break
        # Unclamped: split j0 serves U = j0 .. j0 + b_last.
        hi_k = b_last if b_last <= n - 1 - j0 else n - 1 - j0
        for k in range(hi_k + 1):
            val = av + b[k]
            U = j0 + k
            if val < out[U]:
                out[U] = val
                arg[U] = j0
        # Clamped: for U beyond j0 + b_last the split must move right
        # with U (j = U - b_last) while it stays inside this level.
        u_hi = j1 + b_last
        if u_hi > n - 1:
            u_hi = n - 1
        if b_last >= 0:
            vb = av + b[b_last]
            for U in range(j0 + b_last + 1, u_hi + 1):
                if vb < out[U]:
                    out[U] = vb
                    arg[U] = U - b_last
    return out, arg


def _absorb_step_py(
    pool: Sequence[float], u_cap: int, W: int, can_host: bool = True
) -> Tuple[List[float], List[int]]:
    """Pure-Python absorb kernel (see :func:`absorb_step`)."""
    table = [_INF] * (u_cap + 1)
    chose = [-1] * (u_cap + 1)
    lp = len(pool)
    if not can_host:
        for u in range(u_cap + 1 if u_cap + 1 < lp else lp):
            table[u] = pool[u]
        return table, chose

    plevels = levels(pool)
    nlev = len(plevels)
    li = 0
    for u in range(u_cap + 1):
        best = pool[u] if u < lp else _INF
        pick = -1
        hi = u + W
        if hi > lp - 1:
            hi = lp - 1
        if hi >= u + 1:
            while li < nlev and plevels[li][1] < hi:
                li += 1
            if li < nlev and plevels[li][0] <= hi:
                s, _e, pv = plevels[li]
                val = pv + 1.0
                if val < best:
                    best = val
                    pick = s if s > u else u + 1
        table[u] = best
        chose[u] = pick
    return table, chose


# ----------------------------------------------------------------------
# Dense kernels — NumPy backend.
# ----------------------------------------------------------------------


def _min_plus_mono_numpy(
    a: Sequence[float], b: Sequence[float], cap: int
) -> Tuple[List[float], List[int]]:
    """NumPy monotone min-plus kernel, bit-identical to the Python one.

    Iterates the (few) constant levels of ``a`` and applies each as one
    vectorised strict-``<`` update over the output span, in the same
    ascending-level order as the Python loop — so every tie resolves to
    the same (smallest) split.
    """
    n = min(len(a) + len(b) - 1, cap + 1)
    if n <= 0:
        return [], []
    arr_b = np.asarray(b, dtype=np.float64)
    out = np.full(n, _INF)
    arg = np.full(n, -1, dtype=np.int64)
    b_last = len(b) - 1
    for (j0, j1, av) in levels(a):
        if j0 >= n:
            break
        hi_k = b_last if b_last <= n - 1 - j0 else n - 1 - j0
        seg = out[j0 : j0 + hi_k + 1]
        cand = av + arr_b[: hi_k + 1]
        mask = cand < seg
        seg[mask] = cand[mask]
        arg[j0 : j0 + hi_k + 1][mask] = j0
        u_hi = j1 + b_last
        if u_hi > n - 1:
            u_hi = n - 1
        lo = j0 + b_last + 1
        if b_last >= 0 and lo <= u_hi:
            vb = av + b[b_last]
            seg = out[lo : u_hi + 1]
            mask = vb < seg
            seg[mask] = vb
            arg[lo : u_hi + 1][mask] = (
                np.arange(lo, u_hi + 1, dtype=np.int64)[mask] - b_last
            )
    return out.tolist(), arg.tolist()


def _absorb_step_numpy(
    pool: Sequence[float], u_cap: int, W: int, can_host: bool = True
) -> Tuple[List[float], List[int]]:
    """NumPy absorb kernel, bit-identical to the Python one.

    The window minimum of a non-increasing pool sits at the window's
    right edge ``min(u+W, len-1)``; the chosen absorb index is that
    edge's level start clamped into the window — all computed as whole
    arrays, with the level starts derived by a ``maximum.accumulate``
    over the change points.
    """
    lp = len(pool)
    width = u_cap + 1
    p = np.asarray(pool, dtype=np.float64)
    if not can_host:
        table = np.full(width, _INF)
        table[: min(width, lp)] = p[: min(width, lp)]
        return table.tolist(), [-1] * width

    u = np.arange(width, dtype=np.int64)
    base = np.full(width, _INF)
    m = min(width, lp)
    base[:m] = p[:m]
    if lp == 0:
        return base.tolist(), [-1] * width
    redge = np.minimum(u + W, lp - 1)
    valid = redge >= u + 1
    pv = p[redge]
    val = pv + 1.0
    # Level start of every pool index: the change points carry their own
    # index, a running maximum propagates them across each level.
    change = np.empty(lp, dtype=bool)
    change[0] = True
    if lp > 1:
        change[1:] = p[1:] != p[:-1]
    starts = np.maximum.accumulate(np.where(change, np.arange(lp), 0))
    s = starts[redge]
    pick = np.where(s > u, s, u + 1)
    choose = valid & (val < base)
    table = np.where(choose, val, base)
    chose = np.where(choose, pick, -1)
    return table.tolist(), chose.tolist()


# ----------------------------------------------------------------------
# Dispatching entry points (the solver-facing contract).
# ----------------------------------------------------------------------


def min_plus_mono(
    a: Sequence[float], b: Sequence[float], cap: int
) -> Tuple[List[float], List[int]]:
    """:func:`min_plus` specialised to **non-increasing** ``a``.

    Decomposes ``a`` into its constant levels: within one level the
    cheapest split is always the level's left edge (a smaller ``j``
    leaves more to ``b``, whose cost is non-increasing), so only level
    starts — clamped to ``b``'s reach — compete per output index.

    Parameters
    ----------
    a:
        Non-increasing cost table (infinite prefix allowed).  **The
        caller guarantees monotonicity**; it is not checked.  As with
        :func:`absorb_step`, non-increasing means every ``inf`` is a
        prefix — infinite entries *after* a finite one break the level
        decomposition and yield silently wrong minima.
    b, cap:
        As in :func:`min_plus`; ``b`` need not be monotone for
        correctness of the minima, but tie-breaking identity with the
        general kernel additionally requires non-increasing ``b``
        (both hold for every DP pool).

    Returns
    -------
    ``(out, arg)`` — exactly what ``min_plus(a, b, cap)`` returns,
    including tie-breaking toward the smallest split (``-1`` marks an
    infeasible entry).  The backend (NumPy above ``NUMPY_MIN_LEN``
    elements, pure Python otherwise) never changes the result.
    """
    if HAVE_NUMPY and len(a) + len(b) >= NUMPY_MIN_LEN:
        return _min_plus_mono_numpy(a, b, cap)
    return _min_plus_mono_py(a, b, cap)


def absorb_step(
    pool: Sequence[float], u_cap: int, W: int, can_host: bool = True
) -> Tuple[List[float], List[int]]:
    """The DP's absorb step over a **non-increasing** pool.

    Computes ``table[u] = min(pool[u], 1 + min_{u < U ≤ u+W} pool[U])``
    in O(1) amortised per ``u``: the pool is non-increasing, so the
    window minimum over ``(u, u+W]`` sits at its right edge, and the
    *first* index holding that value is the start of that edge's level
    (clamped into the window) — exactly the argmin the ascending scan
    of the object-graph formulation settles on.

    Parameters
    ----------
    pool:
        The children pool (non-increasing; **not checked**).  Note that
        non-increasing implies every ``inf`` entry forms a *prefix*: a
        pool with an infinite entry after a finite one violates the
        precondition, and the level scan would then silently skip
        absorb candidates whose window edge lands past the finite
        region.  All DP pools satisfy the invariant by construction
        (min-plus of inf-prefix monotone tables is inf-prefix
        monotone).
    u_cap:
        Largest forward amount of interest (table length − 1).
    W:
        Server capacity — the absorb window width.
    can_host:
        False forbids a replica here (the incremental DP's failed-host
        case): the table is the pool truncated to ``u_cap``, with every
        ``chose`` entry ``-1``.

    Returns
    -------
    ``(table, chose)`` — the node table and the chosen absorb source
    per ``u`` (``-1`` = no replica at this node), bit-identical to
    the original quadratic scan in either backend.
    """
    if HAVE_NUMPY and u_cap + 1 >= NUMPY_MIN_LEN:
        return _absorb_step_numpy(pool, u_cap, W, can_host)
    return _absorb_step_py(pool, u_cap, W, can_host)


def leaf_table(r: int, u_cap: int, W: int) -> List[float]:
    """The DP leaf table: serving ``r − u`` locally takes one replica.

    ``g(u) = 0`` for ``u ≥ r``, ``1`` for ``r − W ≤ u < r`` and ``inf``
    below, truncated to ``u ≤ u_cap``.
    """
    table: List[float] = []
    for u in range(u_cap + 1):
        if u >= r:
            table.append(0.0)
        elif r - u <= W:
            table.append(1.0)
        else:
            table.append(_INF)
    return table


# ----------------------------------------------------------------------
# Fold helpers for the greedy solvers.
# ----------------------------------------------------------------------


def stable_argsort(keys: Sequence) -> List[int]:
    """Indices that stably sort ``keys`` ascending.

    Equal keys keep their input order — the tie-break every greedy fold
    in this repository relies on.  NumPy's stable argsort and Python's
    ``sorted`` are interchangeable here by definition of stability.
    """
    if HAVE_NUMPY and len(keys) >= NUMPY_MIN_LEN:
        return np.argsort(np.asarray(keys), kind="stable").tolist()
    return sorted(range(len(keys)), key=keys.__getitem__)


def prefix_fit(demands: Sequence[int], W: int) -> int:
    """Longest prefix of ``demands`` whose sum fits a server.

    Returns the first index ``k`` with ``demands[0] + … + demands[k] >
    W`` (``len(demands)`` if the whole list fits) — the packing scan of
    Algorithm 2: ``demands[:k]`` are packed, ``demands[k]`` is the
    overflow entry.
    """
    if HAVE_NUMPY and len(demands) >= NUMPY_MIN_LEN:
        c = np.cumsum(np.asarray(demands, dtype=np.int64))
        return int(np.searchsorted(c, W, side="right"))
    acc = 0
    for k, d in enumerate(demands):
        acc += d
        if acc > W:
            return k
    return len(demands)


def capacity_split(weights: Sequence[int], W: int) -> Tuple[int, int]:
    """How a capacity-``W`` absorb consumes a weight list FIFO.

    Returns ``(k_full, partial)``: the first ``k_full`` entries are
    absorbed whole, then ``partial`` units (possibly 0) of entry
    ``k_full`` — the consumption pattern of ``multiple-greedy``'s
    replica-opening scan.
    """
    if HAVE_NUMPY and len(weights) >= NUMPY_MIN_LEN:
        c = np.cumsum(np.asarray(weights, dtype=np.int64))
        k_full = int(np.searchsorted(c, W, side="right"))
        if k_full >= len(weights):
            return k_full, 0
        before = int(c[k_full - 1]) if k_full else 0
        return k_full, max(W - before, 0)
    acc = 0
    for k, w in enumerate(weights):
        if acc + w > W:
            return k, W - acc
        acc += w
    return len(weights), 0


# ----------------------------------------------------------------------
# Batched threshold form (NumPy only).
# ----------------------------------------------------------------------


def table_to_thresholds(table: Sequence[float], n_values: int) -> List[int]:
    """Threshold vector of a dense table: ``T[v] = min{u : g(u) ≤ v}``.

    ``SENTINEL`` marks values the table never reaches.  Pure-Python
    conversion helper for tests and per-instance reconstruction.
    """
    out = [SENTINEL] * n_values
    for u in range(len(table) - 1, -1, -1):
        v = table[u]
        if v == _INF:
            break
        iv = int(v)
        if iv < n_values:
            out[iv] = u
    # A threshold for value v also covers every larger value.
    best = SENTINEL
    for v in range(n_values):
        if out[v] < best:
            best = out[v]
        out[v] = best
    return out


def thresholds_to_table(t: Sequence[int], length: int) -> List[float]:
    """Dense table from a threshold vector (inverse of the above)."""
    out = [_INF] * length
    for v in range(len(t) - 1, -1, -1):
        tv = t[v]
        if tv >= length or tv >= SENTINEL:
            continue
        for u in range(tv, length):
            if out[u] > v:
                out[u] = float(v)
    return out


def batch_leaf_thresholds(r, u_cap, W: int):
    """Leaf thresholds for a whole batch: ``(B, 2)`` int32.

    ``T[·,0] = r`` (zero replicas ⇔ forward everything) and
    ``T[·,1] = max(r − W, 0)`` (one replica), both ``SENTINEL`` when
    past the leaf's ``u_cap``.
    """
    r = np.asarray(r, dtype=np.int32)
    u_cap = np.asarray(u_cap, dtype=np.int32)
    t0 = np.where(r <= u_cap, r, SENTINEL)
    t1 = np.maximum(r - W, 0)
    t1 = np.where(t1 <= u_cap, t1, SENTINEL)
    return np.stack([t0, np.minimum(t0, t1)], axis=1).astype(np.int32)


def batch_min_plus_t(ta, len_a, tb, len_b, cap):
    """Batched min-plus convolution in threshold form.

    ``T_out[b, v] = min_{v1+v2=v} T_a[b, v1] + T_b[b, v2]`` — a short
    min-plus over the *value* axis (table values are replica counts, so
    the axis is tiny) — clipped to each instance's output length
    ``min(len_a + len_b − 1, cap + 1)``.

    Parameters
    ----------
    ta, tb:
        ``(B, Va)`` / ``(B, Vb)`` int32 threshold matrices.
    len_a, len_b:
        ``(B,)`` dense lengths of the underlying tables.
    cap:
        ``(B,)`` per-instance output caps.

    Returns
    -------
    ``(t_out, len_out)`` — ``(B, Va+Vb−1)`` thresholds and ``(B,)``
    dense output lengths.
    """
    B, va = ta.shape
    vb = tb.shape[1]
    out = np.full((B, va + vb - 1), 2 * SENTINEL, dtype=np.int32)
    for v1 in range(va):
        seg = out[:, v1 : v1 + vb]
        np.minimum(seg, ta[:, v1 : v1 + 1] + tb, out=seg)
    len_out = np.minimum(len_a + len_b - 1, cap + 1)
    np.minimum(out, SENTINEL, out=out)
    out[out > (len_out - 1)[:, None]] = SENTINEL
    return out, len_out


def batch_absorb_t(t_pool, len_pool, u_cap, W: int):
    """Batched absorb step in threshold form.

    Reaching value ``v`` with a replica here means the pool reaches
    ``v − 1`` somewhere in the window ``(u, u+W]``: the earliest such
    ``u`` is ``max(T_pool[v−1] − W, 0)``, valid while the pool's
    threshold lies inside the pool and the window is non-empty.

    Parameters
    ----------
    t_pool:
        ``(B, Vp)`` int32 pool thresholds.
    len_pool:
        ``(B,)`` dense pool lengths.
    u_cap:
        ``(B,)`` per-instance table caps.
    W:
        Server capacity (shared across the batch — the bucket key).

    Returns
    -------
    ``(t_tab, len_tab)`` — ``(B, Vp+1)`` thresholds and ``(B,)`` dense
    table lengths (``u_cap + 1``).
    """
    B, vp = t_pool.shape
    t_tab = np.empty((B, vp + 1), dtype=np.int32)
    t_tab[:, :vp] = t_pool
    # The widened top value inherits the pool's last threshold: a table
    # reaching value vp−1 at u also reaches every larger value there.
    t_tab[:, vp] = t_pool[:, vp - 1]
    lo = np.maximum(t_pool - W, 0)
    ok = (t_pool <= (len_pool - 1)[:, None]) & (lo <= (len_pool - 2)[:, None])
    cand = np.where(ok, lo, SENTINEL).astype(np.int32)
    np.minimum(t_tab[:, 1:], cand, out=t_tab[:, 1:])
    t_tab[t_tab > u_cap[:, None]] = SENTINEL
    return t_tab, u_cap + 1
