"""Problem-instance model.

A :class:`ProblemInstance` bundles the distribution tree with the server
capacity ``W``, the distance bound ``dmax`` (``None`` encodes the *NoD*
variants with no distance constraint), and the access policy.  It also
provides the paper's variant naming scheme (``Single-NoD-Bin`` etc.) and
cheap necessary feasibility checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .errors import InvalidInstanceError
from .policies import Policy
from .tree import Tree

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """A replica-placement problem instance.

    Attributes
    ----------
    tree:
        The distribution tree (clients at leaves).
    capacity:
        Server capacity ``W`` — the number of requests a replica can
        process per time unit.
    dmax:
        Maximum client→server distance, or ``None`` for no constraint.
    policy:
        :class:`~repro.core.policies.Policy` (Single or Multiple).
    """

    tree: Tree
    capacity: int
    dmax: Optional[float] = None
    policy: Policy = Policy.SINGLE
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise InvalidInstanceError(
                f"server capacity must be positive, got {self.capacity}"
            )
        if self.dmax is not None and (
            not math.isfinite(self.dmax) or self.dmax < 0
        ):
            raise InvalidInstanceError(
                f"dmax must be a non-negative finite number or None, got {self.dmax}"
            )

    # ------------------------------------------------------------------
    @property
    def has_distance_constraint(self) -> bool:
        """True for the constrained variants, False for *NoD*."""
        return self.dmax is not None

    @property
    def is_binary(self) -> bool:
        """True iff the tree arity is at most 2 (the *Bin* variants)."""
        return self.tree.is_binary

    @property
    def variant(self) -> str:
        """The paper's name for this problem variant.

        Examples: ``Single``, ``Single-NoD``, ``Single-NoD-Bin``,
        ``Multiple-Bin``.
        """
        parts = ["Single" if self.policy is Policy.SINGLE else "Multiple"]
        if not self.has_distance_constraint:
            parts.append("NoD")
        if self.is_binary:
            parts.append("Bin")
        return "-".join(parts)

    # ------------------------------------------------------------------
    def client_fits_server(self) -> bool:
        """True iff every client demand fits one server (``r_i ≤ W``).

        This is the precondition of Theorem 6 (optimality of
        ``multiple-bin``) and a necessary condition for *any* Single
        placement to exist.
        """
        return self.tree.max_request <= self.capacity

    def trivially_infeasible(self) -> Optional[str]:
        """Cheap necessary feasibility checks.

        Returns a human-readable reason if the instance provably has no
        solution, else ``None``.  Note this is *necessary*, not
        sufficient: it never proves feasibility.
        """
        t = self.tree
        if self.policy is Policy.SINGLE and t.max_request > self.capacity:
            big = max(t.clients, key=t.requests)
            return (
                f"client {big} demands {t.requests(big)} > W={self.capacity}; "
                "under the Single policy it cannot be served"
            )
        if self.policy is Policy.MULTIPLE:
            # A client's requests can only go to ancestors within dmax; the
            # client itself is always eligible, so the available capacity
            # for client i is (number of eligible servers) * W.
            for c in t.clients:
                if t.requests(c) == 0:
                    continue
                k = len(t.eligible_servers(c, self.dmax))
                if t.requests(c) > k * self.capacity:
                    return (
                        f"client {c} demands {t.requests(c)} but only {k} "
                        f"eligible servers of capacity {self.capacity} exist "
                        "within dmax"
                    )
        return None

    # ------------------------------------------------------------------
    def with_policy(self, policy: Policy) -> "ProblemInstance":
        """Same instance under the other access policy."""
        return ProblemInstance(self.tree, self.capacity, self.dmax, policy, self.name)

    def without_distance(self) -> "ProblemInstance":
        """The *NoD* relaxation of this instance."""
        return ProblemInstance(self.tree, self.capacity, None, self.policy, self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = "NoD" if self.dmax is None else f"dmax={self.dmax}"
        return (
            f"ProblemInstance({self.variant}, n={len(self.tree)}, "
            f"W={self.capacity}, {d})"
        )
