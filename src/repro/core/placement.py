"""Solution model: replica sets and request assignments.

A :class:`Placement` is the full output of a solver: the replica set
``R`` plus, for every client, how many of its requests each server
processes (``r_{i,s}`` in the paper).  Keeping explicit assignments —
rather than just the replica set — lets the independent checker verify
capacity, distance and policy constraints without trusting the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from .errors import InvalidPlacementError

__all__ = ["Placement", "Assignment"]


@dataclass(frozen=True)
class Assignment:
    """``amount`` requests of ``client`` are served by ``server``."""

    client: int
    server: int
    amount: int


class Placement:
    """An (immutable) replica placement with explicit assignments.

    Parameters
    ----------
    replicas:
        The replica set ``R``.
    assignments:
        Mapping ``(client, server) -> amount``.  Amounts must be positive
        integers; the checker enforces everything else.
    """

    __slots__ = ("_replicas", "_assignments", "_hash")

    def __init__(
        self,
        replicas: Iterable[int],
        assignments: Mapping[Tuple[int, int], int],
    ) -> None:
        amap: Dict[Tuple[int, int], int] = {}
        for (client, server), amount in assignments.items():
            amount = int(amount)
            if amount <= 0:
                raise InvalidPlacementError(
                    f"assignment ({client}->{server}) has non-positive "
                    f"amount {amount}"
                )
            amap[(int(client), int(server))] = amount
        self._replicas: FrozenSet[int] = frozenset(int(r) for r in replicas)
        self._assignments: Dict[Tuple[int, int], int] = amap
        self._hash: int | None = None

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> FrozenSet[int]:
        """The replica set ``R``."""
        return self._replicas

    @property
    def n_replicas(self) -> int:
        """The objective value ``|R|``."""
        return len(self._replicas)

    @property
    def assignments(self) -> Dict[Tuple[int, int], int]:
        """A copy of the ``(client, server) -> amount`` mapping."""
        return dict(self._assignments)

    def iter_assignments(self) -> Iterable[Assignment]:
        """Iterate over all assignments as :class:`Assignment` records."""
        for (c, s), a in sorted(self._assignments.items()):
            yield Assignment(c, s, a)

    # ------------------------------------------------------------------
    def servers_of(self, client: int) -> List[int]:
        """``servers(i)``: the servers handling at least one request of
        ``client``."""
        return sorted(s for (c, s) in self._assignments if c == client)

    def served_amount(self, client: int) -> int:
        """Total requests of ``client`` that are assigned somewhere."""
        return sum(a for (c, _s), a in self._assignments.items() if c == client)

    def load(self, server: int) -> int:
        """Total requests processed by ``server``."""
        return sum(a for (_c, s), a in self._assignments.items() if s == server)

    def loads(self) -> Dict[int, int]:
        """Load of every replica (0 for idle replicas)."""
        out: Dict[int, int] = {r: 0 for r in self._replicas}
        for (_c, s), a in self._assignments.items():
            out[s] = out.get(s, 0) + a
        return out

    def used_servers(self) -> FrozenSet[int]:
        """Servers with at least one assignment."""
        return frozenset(s for (_c, s) in self._assignments)

    # ------------------------------------------------------------------
    def restricted_to(self, clients: Iterable[int]) -> "Placement":
        """Sub-placement covering only the given clients (for analysis)."""
        cset = set(clients)
        amap = {
            (c, s): a for (c, s), a in self._assignments.items() if c in cset
        }
        used = frozenset(s for (_c, s) in amap)
        return Placement(used, amap)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return (
            self._replicas == other._replicas
            and self._assignments == other._assignments
        )

    def __hash__(self) -> int:
        # Cached: placements are immutable, and the service-layer result
        # cache hashes the same placement on every lookup.
        if self._hash is None:
            self._hash = hash(
                (self._replicas, tuple(sorted(self._assignments.items())))
            )
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(self._replicas)[:8]
        ellipsis = ", ..." if self.n_replicas > 8 else ""
        served = sum(self._assignments.values())
        return (
            f"Placement(|R|={self.n_replicas}, "
            f"replicas=[{', '.join(map(str, shown))}{ellipsis}], "
            f"served={served}, assignments={len(self._assignments)})"
        )
