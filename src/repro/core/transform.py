"""Instance preprocessing: pruning and chain collapsing.

Two rewrites shrink instances before solving, with placement mappings
back to the original tree:

* **prune** (:func:`prune_zero_demand`) — remove subtrees containing no
  requests.  **Optimum-preserving**: a replica inside a demand-free
  subtree serves nothing and can be dropped; every ancestor of a
  demanding client survives, so placements map node-for-node in both
  directions.
* **collapse** (:func:`collapse_unary_chains`) — contract runs of unary
  internal nodes, re-parenting each run's child to the ancestor above
  the run with the accumulated edge length.  **Conservative, not always
  optimum-preserving**: every placement on the collapsed tree is valid
  on the original (surviving nodes exist there with identical client
  sets and distances), so ``opt(original) ≤ opt(collapsed)`` and
  solving the collapsed instance yields a feasible solution and an
  upper bound.  Chain nodes, however, are candidate replica *hosts*:
  under a distance constraint a solution may need several replicas
  stacked along one chain (instance *I6* does exactly this), and then
  the inequality is strict.  Equality holds whenever no optimal
  solution hosts a replica on a removed node — in particular when each
  chain's subtree demand fits one server, and empirically on typical
  random instances (see the transform tests).

:func:`preprocess` applies both and returns the reduced instance plus
a :class:`NodeMap` that lifts placements back to the original node ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .instance import ProblemInstance
from .placement import Placement
from .tree import NO_PARENT, Tree

__all__ = ["NodeMap", "preprocess", "prune_zero_demand", "collapse_unary_chains"]


@dataclass(frozen=True)
class NodeMap:
    """Mapping between a reduced instance and its original.

    ``to_original[v]`` gives the original node id of reduced node ``v``.
    """

    to_original: Tuple[int, ...]

    def lift(self, placement: Placement) -> Placement:
        """Re-express a placement on the reduced tree in original ids."""
        replicas = [self.to_original[r] for r in placement.replicas]
        assignments = {
            (self.to_original[c], self.to_original[s]): a
            for (c, s), a in placement.assignments.items()
        }
        return Placement(replicas, assignments)

    def compose(self, earlier: "NodeMap") -> "NodeMap":
        """Map through ``self`` then ``earlier``."""
        return NodeMap(
            tuple(earlier.to_original[v] for v in self.to_original)
        )


def _rebuild(
    tree: Tree, keep: List[bool], new_parent: Dict[int, int],
    new_delta: Dict[int, float],
) -> Tuple[Tree, NodeMap]:
    """Construct the reduced tree from keep-flags and parent overrides."""
    old_ids = [v for v in tree.topological_order() if keep[v]]
    index = {v: i for i, v in enumerate(old_ids)}
    parents = []
    deltas = []
    requests = []
    for v in old_ids:
        p = new_parent.get(v, tree.parent(v))
        parents.append(NO_PARENT if p == NO_PARENT else index[p])
        deltas.append(new_delta.get(v, tree.delta(v)))
        requests.append(tree.requests(v))
    return Tree(parents, deltas, requests), NodeMap(tuple(old_ids))


def prune_zero_demand(instance: ProblemInstance) -> Tuple[ProblemInstance, NodeMap]:
    """Drop every subtree with no requests (keeping the root)."""
    tree = instance.tree
    demand = [0] * len(tree)
    for v in tree.postorder():
        demand[v] = tree.requests(v) + sum(
            demand[c] for c in tree.children(v)
        )
    keep = [demand[v] > 0 or v == tree.root for v in range(len(tree))]
    reduced, nmap = _rebuild(tree, keep, {}, {})
    return (
        ProblemInstance(
            reduced, instance.capacity, instance.dmax, instance.policy,
            name=instance.name,
        ),
        nmap,
    )


def collapse_unary_chains(
    instance: ProblemInstance,
) -> Tuple[ProblemInstance, NodeMap]:
    """Contract runs of unary internal nodes (see module docstring).

    Every non-root internal node with exactly one child is removed; its
    edge length is folded into the child's edge.  Returns the reduced
    instance and the node map.  Conservative: solutions of the reduced
    instance lift to valid solutions of the original.
    """
    tree = instance.tree
    keep = [True] * len(tree)
    new_parent: Dict[int, int] = {}
    new_delta: Dict[int, float] = {}
    for v in tree.topological_order():
        if v == tree.root:
            continue
        p = tree.parent(v)
        # Walk up over removed unary ancestors, accumulating distance.
        delta = tree.delta(v)
        while p != tree.root and not keep[p]:
            delta += tree.delta(p)
            p = tree.parent(p)
        if p != tree.parent(v):
            new_parent[v] = p
            new_delta[v] = delta
        # Mark v for removal if it is a non-root unary internal node.
        if (
            tree.is_internal(v)
            and len(tree.children(v)) == 1
            and v != tree.root
        ):
            keep[v] = False
    # Nodes marked unary but childless-after... cannot happen: unary
    # means exactly one child, which survives or was re-parented through.
    reduced, nmap = _rebuild(tree, keep, new_parent, new_delta)
    return (
        ProblemInstance(
            reduced, instance.capacity, instance.dmax, instance.policy,
            name=instance.name,
        ),
        nmap,
    )


def preprocess(instance: ProblemInstance) -> Tuple[ProblemInstance, NodeMap]:
    """Prune demand-free subtrees, then collapse unary chains."""
    pruned, m1 = prune_zero_demand(instance)
    collapsed, m2 = collapse_unary_chains(pruned)
    return collapsed, m2.compose(m1)
