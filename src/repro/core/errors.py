"""Exception hierarchy for the replica-placement library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish structural problems (bad tree), modelling
problems (bad instance), and solution problems (invalid placement).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidTreeError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "InfeasibleInstanceError",
    "NotBinaryTreeError",
    "PolicyError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class InvalidTreeError(ReproError):
    """The distribution tree is structurally malformed.

    Examples: a node whose parent index is out of range, a cycle in the
    parent relation, a negative edge distance, requests attached to an
    internal node.
    """


class InvalidInstanceError(ReproError):
    """The problem instance parameters are malformed.

    Examples: non-positive server capacity, negative ``dmax``.
    """


class InvalidPlacementError(ReproError):
    """A placement violates the model constraints.

    Raised by the independent checker in :mod:`repro.core.validation` when
    a solution breaks ancestry, distance, capacity, policy or completeness
    constraints.  The offending constraint is described in the message.
    """


class InfeasibleInstanceError(ReproError):
    """No valid placement exists for the instance.

    For the Single policy this happens when some client has more requests
    than the server capacity ``W``; with distance constraints, a client
    whose requests cannot legally reach any node (including itself) also
    makes the instance infeasible.
    """


class NotBinaryTreeError(ReproError):
    """An algorithm restricted to binary trees received a wider tree.

    ``multiple-bin`` (Algorithm 3 of the paper) is only defined — and only
    proven optimal — for trees of arity at most two.
    """


class PolicyError(ReproError):
    """An algorithm was invoked with an access policy it does not support."""


class SolverError(ReproError):
    """Internal solver failure (budget exhausted, invariant broken)."""
