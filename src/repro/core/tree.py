"""Distribution-tree substrate.

The paper's platform is a *distribution tree* ``T = C ∪ N``: internal
nodes ``N`` may host a replica of the database, leaves ``C`` are clients
issuing requests.  Each non-root node ``j`` is at distance ``δ_j`` from
its parent, and a server can only process requests of clients located in
its own subtree, at path distance at most ``dmax``.

:class:`Tree` stores the topology in flat arrays (parent index, edge
distance, request count, children adjacency) so that node metadata access
is O(1) and traversals are allocation-free index loops.  Trees are
immutable once built; use :class:`TreeBuilder` or the class-method
constructors to create them.

All traversals are iterative (explicit stacks / precomputed orders), so
arbitrarily deep trees — e.g. the caterpillar chains used by the scaling
benchmarks — do not hit Python's recursion limit.

Invariants
----------
* Node 0 is the root; every parent pointer points at an existing node
  and the relation is acyclic (validated at construction).
* Only leaves carry requests; edge distances are non-negative and the
  root's distance is ``+∞`` (the paper's ``δ_r`` convention).
* Immutability backs the cached flat-array compilation
  (:mod:`repro.core.arrays`): solver hot loops run on the
  :class:`~repro.core.arrays.FlatTree` layout compiled at most once
  per tree, and their results are bit-identical to walking this
  object graph directly — see ``docs/performance.md``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import InvalidTreeError

__all__ = ["Tree", "TreeBuilder", "NO_PARENT"]

#: Sentinel parent index of the root node.
NO_PARENT = -1


class Tree:
    """An immutable rooted tree with edge distances and leaf requests.

    Nodes are integers ``0 .. n-1``.  The root is node ``0``.  Leaves are
    the clients ``C``; internal nodes are ``N``.  Only leaves may carry a
    non-zero request count (the paper attaches requests to clients only).

    Parameters
    ----------
    parents:
        ``parents[v]`` is the parent of ``v``; ``parents[0]`` must be
        :data:`NO_PARENT`.
    deltas:
        ``deltas[v]`` is the distance from ``v`` to its parent (``δ_v``).
        The root's entry is ignored and reported as ``math.inf`` to match
        the paper's convention ``δ_r = +∞``.
    requests:
        ``requests[v]`` is ``r_v`` for leaves, and must be 0 for internal
        nodes.

    Returns
    -------
    Tree
        A frozen topology; all derived orders (topological, weighted
        depths) are precomputed here so accessors are O(1).

    Raises
    ------
    InvalidTreeError
        If the parent relation is not a tree rooted at 0, a distance is
        negative, or an internal node carries requests.
    """

    __slots__ = (
        "_parents",
        "_deltas",
        "_requests",
        "_children",
        "_order",
        "_depth_weighted",
        "_n",
        "_flat",
    )

    def __init__(
        self,
        parents: Sequence[int],
        deltas: Sequence[float],
        requests: Sequence[int],
    ) -> None:
        n = len(parents)
        if n == 0:
            raise InvalidTreeError("a tree must contain at least one node")
        if len(deltas) != n or len(requests) != n:
            raise InvalidTreeError(
                "parents, deltas and requests must have the same length "
                f"(got {n}, {len(deltas)}, {len(requests)})"
            )
        parents = [int(p) for p in parents]
        if parents[0] != NO_PARENT:
            raise InvalidTreeError("node 0 must be the root (parent == -1)")

        children: List[List[int]] = [[] for _ in range(n)]
        for v in range(1, n):
            p = parents[v]
            if not 0 <= p < n:
                raise InvalidTreeError(f"node {v} has out-of-range parent {p}")
            if p == v:
                raise InvalidTreeError(f"node {v} is its own parent")
            children[p].append(v)
        for v in range(1, n):
            if parents[v] == NO_PARENT:
                raise InvalidTreeError(f"non-root node {v} has no parent")

        # Topological (root-first) order; also detects unreachable nodes,
        # i.e. cycles in the parent relation.
        order: List[int] = [0]
        for v in order:
            order.extend(children[v])
            if len(order) > n:  # pragma: no cover - defensive
                break
        if len(order) != n:
            raise InvalidTreeError("parent relation contains a cycle")

        dl = [float(d) for d in deltas]
        dl[0] = math.inf
        for v in range(1, n):
            if not dl[v] >= 0:
                raise InvalidTreeError(
                    f"edge distance of node {v} must be non-negative, got {dl[v]}"
                )

        req = [int(r) for r in requests]
        for v in range(n):
            if req[v] < 0:
                raise InvalidTreeError(f"node {v} has negative requests {req[v]}")
            if children[v] and req[v] != 0:
                raise InvalidTreeError(
                    f"internal node {v} carries {req[v]} requests; only "
                    "leaves (clients) may issue requests"
                )

        depth_w = [0.0] * n
        for v in order[1:]:
            depth_w[v] = depth_w[parents[v]] + dl[v]

        self._parents: Tuple[int, ...] = tuple(parents)
        self._deltas: Tuple[float, ...] = tuple(dl)
        self._requests: Tuple[int, ...] = tuple(req)
        self._children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in children
        )
        self._order: Tuple[int, ...] = tuple(order)
        self._depth_weighted: Tuple[float, ...] = tuple(depth_w)
        self._n = n
        # Lazily-compiled flat (CSR-style) layout; see core/arrays.py.
        # Trees are immutable, so the compiled layout never goes stale.
        self._flat = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of nodes ``|T| = |C| + |N|``."""
        return self._n

    @property
    def n_nodes(self) -> int:
        """Total number of nodes."""
        return self._n

    @property
    def root(self) -> int:
        """The root node (always 0)."""
        return 0

    def parent(self, v: int) -> int:
        """Parent of ``v`` (:data:`NO_PARENT` for the root)."""
        return self._parents[v]

    def delta(self, v: int) -> float:
        """Distance ``δ_v`` from ``v`` to its parent (``inf`` at the root)."""
        return self._deltas[v]

    def requests(self, v: int) -> int:
        """Requests ``r_v`` issued by node ``v`` (0 for internal nodes)."""
        return self._requests[v]

    def children(self, v: int) -> Tuple[int, ...]:
        """Children of ``v`` in insertion order."""
        return self._children[v]

    def is_leaf(self, v: int) -> bool:
        """True iff ``v`` is a client (leaf node)."""
        return not self._children[v]

    def is_internal(self, v: int) -> bool:
        """True iff ``v`` is an internal node (member of ``N``)."""
        return bool(self._children[v])

    # ------------------------------------------------------------------
    # Derived sets and quantities
    # ------------------------------------------------------------------
    @property
    def clients(self) -> Tuple[int, ...]:
        """All leaves, in topological order."""
        return tuple(v for v in self._order if not self._children[v])

    @property
    def internal_nodes(self) -> Tuple[int, ...]:
        """All internal nodes, in topological order."""
        return tuple(v for v in self._order if self._children[v])

    @property
    def arity(self) -> int:
        """Maximum number of children over all nodes (``Δ``)."""
        return max((len(c) for c in self._children), default=0)

    @property
    def is_binary(self) -> bool:
        """True iff every node has at most two children."""
        return self.arity <= 2

    @property
    def total_requests(self) -> int:
        """Sum of all client requests (``W_tot``)."""
        return sum(self._requests)

    @property
    def max_request(self) -> int:
        """Largest single client demand ``max_i r_i``."""
        return max(self._requests, default=0)

    def depth(self, v: int) -> float:
        """Weighted distance from ``v`` up to the root."""
        return self._depth_weighted[v]

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def topological_order(self) -> Tuple[int, ...]:
        """Nodes ordered root-first (every node after its parent)."""
        return self._order

    def postorder(self) -> Iterator[int]:
        """Nodes ordered children-first (every node before its parent)."""
        return reversed(self._order)

    def subtree(self, v: int) -> List[int]:
        """All nodes of ``subtree(v)``, including ``v`` (iterative DFS)."""
        out = [v]
        for u in out:
            out.extend(self._children[u])
        return out

    def subtree_clients(self, v: int) -> List[int]:
        """Clients located in ``subtree(v)``."""
        return [u for u in self.subtree(v) if not self._children[u]]

    def path_to_root(self, v: int) -> List[int]:
        """Nodes on the unique path ``v → root``, inclusive at both ends."""
        path = [v]
        while self._parents[path[-1]] != NO_PARENT:
            path.append(self._parents[path[-1]])
        return path

    def distance_to_ancestor(self, v: int, a: int) -> float:
        """Weighted path distance from ``v`` up to its ancestor ``a``.

        Raises :class:`InvalidTreeError` if ``a`` is not an ancestor of
        ``v`` (a node is an ancestor of itself, at distance 0).
        """
        dist = 0.0
        node = v
        while node != a:
            p = self._parents[node]
            if p == NO_PARENT:
                raise InvalidTreeError(f"{a} is not an ancestor of {v}")
            dist += self._deltas[node]
            node = p
        return dist

    def is_ancestor(self, a: int, v: int) -> bool:
        """True iff ``a`` lies on the path from ``v`` to the root.

        Every node is an ancestor of itself.
        """
        node = v
        while node != NO_PARENT:
            if node == a:
                return True
            node = self._parents[node]
        return False

    def eligible_servers(self, client: int, dmax: Optional[float]) -> List[Tuple[int, float]]:
        """Ancestors of ``client`` (itself included) within distance ``dmax``.

        Returns ``(node, distance)`` pairs ordered from the client upward.
        ``dmax=None`` means no distance constraint: the whole root path is
        eligible.  These are exactly the nodes allowed to serve requests
        of ``client`` in the paper's model.
        """
        out: List[Tuple[int, float]] = []
        dist = 0.0
        node = client
        while node != NO_PARENT:
            if dmax is not None and dist > dmax:
                break
            out.append((node, dist))
            if self._parents[node] != NO_PARENT:
                dist += self._deltas[node]
            node = self._parents[node]
        return out

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int, float]],
        requests: Dict[int, int],
    ) -> "Tree":
        """Build a tree from ``(parent, child, distance)`` edges.

        ``requests`` maps leaf node ids to their demand; omitted nodes get
        zero requests.
        """
        parents = [NO_PARENT] * n
        deltas = [0.0] * n
        seen = set()
        for p, c, d in edges:
            if c in seen:
                raise InvalidTreeError(f"node {c} has two parents")
            seen.add(c)
            parents[c] = p
            deltas[c] = d
        reqs = [requests.get(v, 0) for v in range(n)]
        return cls(parents, deltas, reqs)

    def with_requests(self, requests: Sequence[int]) -> "Tree":
        """Return a copy of this tree with different client demands."""
        return Tree(self._parents, self._deltas, requests)

    def with_deltas(self, deltas: Sequence[float]) -> "Tree":
        """Return a copy of this tree with different edge distances."""
        return Tree(self._parents, deltas, self._requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tree(n={self._n}, clients={len(self.clients)}, "
            f"arity={self.arity}, total_requests={self.total_requests})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self._parents == other._parents
            and self._deltas == other._deltas
            and self._requests == other._requests
        )

    def __hash__(self) -> int:
        return hash((self._parents, self._deltas, self._requests))


class TreeBuilder:
    """Incremental construction of a :class:`Tree`.

    Nodes are added one at a time; the first added node is the root.
    ``add`` returns the node id, which is then usable as a parent handle:

    >>> b = TreeBuilder()
    >>> root = b.add_root()
    >>> mid = b.add(root, delta=2.0)
    >>> leaf = b.add(mid, delta=1.0, requests=5)
    >>> tree = b.build()
    >>> tree.requests(leaf)
    5
    """

    def __init__(self) -> None:
        self._parents: List[int] = []
        self._deltas: List[float] = []
        self._requests: List[int] = []

    def add_root(self) -> int:
        """Add the root node (must be called first, exactly once)."""
        if self._parents:
            raise InvalidTreeError("root already added")
        self._parents.append(NO_PARENT)
        self._deltas.append(math.inf)
        self._requests.append(0)
        return 0

    def add(self, parent: int, delta: float = 1.0, requests: int = 0) -> int:
        """Add a node under ``parent`` at distance ``delta``.

        ``requests`` may only be non-zero if the node stays a leaf.
        """
        if not self._parents:
            raise InvalidTreeError("add the root before other nodes")
        if not 0 <= parent < len(self._parents):
            raise InvalidTreeError(f"unknown parent node {parent}")
        self._parents.append(parent)
        self._deltas.append(float(delta))
        self._requests.append(int(requests))
        return len(self._parents) - 1

    def add_chain(self, parent: int, deltas: Sequence[float]) -> List[int]:
        """Add a descending chain of nodes; returns their ids top-down."""
        out = []
        for d in deltas:
            parent = self.add(parent, d)
            out.append(parent)
        return out

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._parents)

    @property
    def parents(self) -> Tuple[int, ...]:
        """Parent pointers of the nodes added so far (root is -1)."""
        return tuple(self._parents)

    def build(self) -> Tree:
        """Validate and freeze into an immutable :class:`Tree`."""
        return Tree(self._parents, self._deltas, self._requests)
