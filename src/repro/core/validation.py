"""Independent placement checker.

This module verifies every model constraint of the paper's framework
(Section 2) against a :class:`~repro.core.placement.Placement`:

1. **Completeness** — every client's requests are fully assigned
   (``Σ_s r_{i,s} = r_i``).
2. **Policy** — under Single, ``|servers(i)| = 1`` for every client with
   requests.
3. **Ancestry** — a server only processes requests of clients in its own
   subtree (servers lie on the client's root path).
4. **Distance** — ``dist(i, s) ≤ dmax`` for every assignment.
5. **Capacity** — ``Σ_i r_{i,s} ≤ W`` for every server.
6. **Registration** — every used server belongs to the replica set
   ``R``, and replicas are valid tree nodes.

It shares no code with the solvers, so it can be used as an oracle in
tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .errors import InvalidPlacementError
from .instance import ProblemInstance
from .placement import Placement
from .policies import Policy

__all__ = ["check_placement", "placement_violations", "is_valid"]


def placement_violations(
    instance: ProblemInstance, placement: Placement
) -> List[str]:
    """Return a list of human-readable constraint violations (empty if valid).

    One pass over the (sorted) assignments covers the per-assignment
    constraints and accumulates the per-client totals the completeness
    and policy checks read afterwards — O(R + A + C) instead of the
    former O(C · A) of summing each client's share separately.  The
    violation strings and their order are unchanged.
    """
    tree = instance.tree
    W = instance.capacity
    dmax = instance.dmax
    problems: List[str] = []

    n = len(tree)
    replicas = placement.replicas
    for r in replicas:
        if not 0 <= r < n:
            problems.append(f"replica {r} is not a node of the tree")

    # Registration + ancestry + distance, per assignment; totals and
    # per-client server sets accumulate unconditionally (completeness
    # counts every assigned unit, valid or not).
    served: Dict[int, int] = {}
    client_servers: Dict[int, Set[int]] = {}
    single = instance.policy is Policy.SINGLE
    for (c, s), amount in sorted(placement.assignments.items()):
        served[c] = served.get(c, 0) + amount
        if single:
            client_servers.setdefault(c, set()).add(s)
        if not 0 <= c < n or not tree.is_leaf(c):
            problems.append(f"assignment client {c} is not a leaf client")
            continue
        if not 0 <= s < n:
            problems.append(f"assignment server {s} is not a tree node")
            continue
        if s not in replicas:
            problems.append(
                f"server {s} serves client {c} but is not in R"
            )
        if not tree.is_ancestor(s, c):
            problems.append(
                f"server {s} is not on the root path of client "
                f"{c} (subtree constraint violated)"
            )
            continue
        if dmax is not None:
            d = tree.distance_to_ancestor(c, s)
            if d > dmax:
                problems.append(
                    f"client {c} served by {s} at distance "
                    f"{d} > dmax={dmax}"
                )

    # Completeness and policy, per client.
    for c in tree.clients:
        r = tree.requests(c)
        got = served.get(c, 0)
        if got != r:
            problems.append(
                f"client {c} has {r} requests but {got} are assigned"
            )
        if single and r > 0:
            servers = sorted(client_servers.get(c, ()))
            if len(servers) > 1:
                problems.append(
                    f"Single policy violated: client {c} uses servers {servers}"
                )

    # Capacity, per server.
    for s, load in placement.loads().items():
        if load > W:
            problems.append(f"server {s} processes {load} > W={W} requests")

    return problems


def check_placement(instance: ProblemInstance, placement: Placement) -> None:
    """Raise :class:`InvalidPlacementError` if the placement is invalid."""
    problems = placement_violations(instance, placement)
    if problems:
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise InvalidPlacementError(
            f"invalid placement for {instance.variant}: {preview}{more}"
        )


def is_valid(instance: ProblemInstance, placement: Placement) -> bool:
    """True iff the placement satisfies every constraint."""
    return not placement_violations(instance, placement)
