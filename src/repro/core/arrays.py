"""Flat-array (CSR-style) tree substrate for solver hot loops.

:class:`Tree` already stores its *metadata* in arrays, but its
traversal API hands out per-node tuples and method calls — fine for
model code, costly inside solver hot loops that visit every node and
every child edge.  :class:`FlatTree` compiles a tree once into a fully
index-addressed layout:

* nodes are renumbered into **post-order positions** ``0 .. n-1`` (the
  root is ``n-1``), so "iterate children before parents" is the plain
  loop ``for p in range(n)`` with no iterator or stack;
* the topology is three contiguous int arrays — ``parent``,
  ``first_child``, ``next_sibling`` (CSR-style child chaining, original
  child order preserved) — so child iteration is integer chasing with
  no tuple allocation;
* per-node data (``delta``, ``demand``) and derived quantities
  (``depth``, ``subtree_demand``, ``subtree_begin``) are plain lists
  indexed by post position, precomputed once;
* ``subtree(v)`` is the contiguous span ``[subtree_begin[v], v]`` —
  the post-order numbering makes every subtree an index interval, which
  is what lets the DP recurrences sweep subtrees without pointer
  chasing.

Compilation is **cached on the tree**: :func:`flat_tree` compiles at
most once per :class:`Tree` object (trees are immutable, so the result
can never go stale) and returns the cached layout afterwards.  The
solvers rewritten on this substrate — ``multiple-nod-dp``,
``single-nod``, ``multiple-greedy`` and the incremental re-fold paths —
are **bit-identical** to their original object-graph formulations; the
equivalence is property-tested in ``tests/test_arrays.py`` and the
speedup is tracked by ``repro bench`` (see ``docs/performance.md``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List

from .tree import NO_PARENT, Tree

__all__ = ["FlatTree", "flat_tree", "flat_cache_stats", "reset_flat_cache_stats"]

#: Sentinel for "no node" in ``parent`` / ``first_child`` / ``next_sibling``.
_NONE = -1

_STATS: Dict[str, int] = {"compiles": 0, "hits": 0, "nodes_compiled": 0}


def flat_cache_stats() -> Dict[str, int]:
    """Process-wide FlatTree compilation-cache counters.

    Returns
    -------
    dict
        ``compiles`` (trees compiled), ``hits`` (cached layouts
        returned) and ``nodes_compiled`` (total nodes across all
        compilations).  ``repro bench`` snapshots these to show how
        often the hot paths re-derive the layout versus reuse it.
    """
    return dict(_STATS)


def reset_flat_cache_stats() -> None:
    """Zero the cache counters (bench harness and tests only)."""
    for k in _STATS:
        _STATS[k] = 0


class FlatTree:
    """A :class:`Tree` compiled to contiguous post-order arrays.

    All arrays are indexed by **post position** ``p`` (``0 .. n-1``,
    children before parents, the root at ``n-1``); ``post_to_orig`` /
    ``orig_to_post`` translate to and from the tree's original node
    ids.  Sibling order is the tree's original child order, so
    tie-breaking-sensitive solvers see children in exactly the sequence
    ``Tree.children`` would report.

    Attributes
    ----------
    n:
        Number of nodes.
    root:
        Post position of the root (always ``n - 1``).
    post_to_orig / orig_to_post:
        Node renumbering maps (lists of ints).
    parent:
        ``parent[p]`` is the parent's post position (``-1`` at the
        root).  Post-order guarantees ``parent[p] > p``.
    first_child / next_sibling:
        CSR-style child chaining in post positions (``-1`` terminated);
        a node is a leaf iff ``first_child[p] == -1``.
    delta:
        Edge distance to the parent (``math.inf`` at the root).
    demand:
        Requests ``r_v`` (0 for internal nodes).
    depth:
        Number of proper ancestors (node-count depth, 0 at the root).
    subtree_begin:
        Start of the subtree span: ``subtree(p)`` occupies exactly the
        post positions ``subtree_begin[p] .. p``.
    subtree_demand:
        Total requests inside ``subtree(p)``.

    Invariants
    ----------
    ``FlatTree(tree).to_tree() == tree`` (lossless round-trip), and for
    every ``p``: ``subtree_demand[p] == sum(demand[subtree_begin[p]:p+1])``.
    """

    __slots__ = (
        "n",
        "root",
        "post_to_orig",
        "orig_to_post",
        "parent",
        "first_child",
        "next_sibling",
        "delta",
        "demand",
        "depth",
        "subtree_begin",
        "subtree_demand",
    )

    def __init__(self, tree: Tree) -> None:
        n = len(tree)
        # Reverse-preorder trick: a DFS that pops the *last*-pushed
        # child first visits "node, then children right-to-left"; its
        # reverse is a proper post-order with children left-to-right.
        visit: List[int] = [tree.root]
        out: List[int] = []
        while visit:
            v = visit.pop()
            out.append(v)
            visit.extend(tree.children(v))
        out.reverse()

        post_to_orig = out
        orig_to_post = [0] * n
        for p, v in enumerate(post_to_orig):
            orig_to_post[v] = p

        parent = [_NONE] * n
        first_child = [_NONE] * n
        next_sibling = [_NONE] * n
        delta = [0.0] * n
        demand = [0] * n
        for p, v in enumerate(post_to_orig):
            pv = tree.parent(v)
            parent[p] = orig_to_post[pv] if pv != NO_PARENT else _NONE
            delta[p] = tree.delta(v)
            demand[p] = tree.requests(v)
            kids = tree.children(v)
            if kids:
                first_child[p] = orig_to_post[kids[0]]
                for a, b in zip(kids, kids[1:]):
                    next_sibling[orig_to_post[a]] = orig_to_post[b]

        # Children come before parents, so one ascending pass folds
        # subtree sizes and demands; one descending pass folds depths.
        size = [1] * n
        subtree_demand = list(demand)
        for p in range(n - 1):
            q = parent[p]
            size[q] += size[p]
            subtree_demand[q] += subtree_demand[p]
        subtree_begin = [p - size[p] + 1 for p in range(n)]
        depth = [0] * n
        for p in range(n - 2, -1, -1):
            depth[p] = depth[parent[p]] + 1

        self.n = n
        self.root = n - 1
        self.post_to_orig = post_to_orig
        self.orig_to_post = orig_to_post
        self.parent = parent
        self.first_child = first_child
        self.next_sibling = next_sibling
        self.delta = delta
        self.demand = demand
        self.depth = depth
        self.subtree_begin = subtree_begin
        self.subtree_demand = subtree_demand

    # ------------------------------------------------------------------
    def children(self, p: int) -> Iterator[int]:
        """Post positions of ``p``'s children, in original child order.

        Convenience for cold paths and tests; hot loops inline the
        ``first_child`` / ``next_sibling`` chase instead.
        """
        c = self.first_child[p]
        while c != _NONE:
            yield c
            c = self.next_sibling[c]

    def is_leaf(self, p: int) -> bool:
        """True iff the node at post position ``p`` has no children."""
        return self.first_child[p] == _NONE

    def subtree_span(self, p: int) -> range:
        """The contiguous post positions of ``subtree(p)``, inclusive."""
        return range(self.subtree_begin[p], p + 1)

    # ------------------------------------------------------------------
    def to_tree(self) -> Tree:
        """Rebuild the original :class:`Tree` (numbering included).

        Returns
        -------
        Tree
            A tree equal to the one this layout was compiled from —
            the round-trip property the equivalence tests rely on.
        """
        n = self.n
        parents = [NO_PARENT] * n
        deltas = [0.0] * n
        requests = [0] * n
        for p in range(n):
            v = self.post_to_orig[p]
            q = self.parent[p]
            parents[v] = self.post_to_orig[q] if q != _NONE else NO_PARENT
            deltas[v] = self.delta[p] if p != self.root else math.inf
            requests[v] = self.demand[p]
        return Tree(parents, deltas, requests)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlatTree(n={self.n}, total_demand={self.subtree_demand[self.root]})"


def flat_tree(tree: Tree) -> FlatTree:
    """The cached flat layout of ``tree``, compiling it on first use.

    Parameters
    ----------
    tree:
        Any :class:`Tree`.  Immutability makes the cache sound: the
        layout is attached to the tree object and can never go stale.

    Returns
    -------
    FlatTree
        The same object on every call for the same tree instance —
        callers may rely on identity for their own keying.
    """
    ft = tree._flat
    if ft is None:
        ft = FlatTree(tree)
        tree._flat = ft
        _STATS["compiles"] += 1
        _STATS["nodes_compiled"] += ft.n
    else:
        _STATS["hits"] += 1
    return ft
