"""Core model: trees, instances, placements, validation, bounds."""

from .arrays import FlatTree, flat_cache_stats, flat_tree, reset_flat_cache_stats
from .bounds import (
    big_item_lower_bound,
    lower_bound,
    subtree_lower_bound,
    volume_lower_bound,
)
from .errors import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidPlacementError,
    InvalidTreeError,
    NotBinaryTreeError,
    PolicyError,
    ReproError,
    SolverError,
)
from .instance import ProblemInstance
from .placement import Assignment, Placement
from .policies import Policy
from .transform import (
    NodeMap,
    collapse_unary_chains,
    preprocess,
    prune_zero_demand,
)
from .tree import NO_PARENT, Tree, TreeBuilder
from .validation import check_placement, is_valid, placement_violations

__all__ = [
    "Tree",
    "TreeBuilder",
    "NO_PARENT",
    "FlatTree",
    "flat_tree",
    "flat_cache_stats",
    "reset_flat_cache_stats",
    "NodeMap",
    "preprocess",
    "prune_zero_demand",
    "collapse_unary_chains",
    "ProblemInstance",
    "Placement",
    "Assignment",
    "Policy",
    "check_placement",
    "is_valid",
    "placement_violations",
    "lower_bound",
    "volume_lower_bound",
    "big_item_lower_bound",
    "subtree_lower_bound",
    "ReproError",
    "InvalidTreeError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "InfeasibleInstanceError",
    "NotBinaryTreeError",
    "PolicyError",
    "SolverError",
]
