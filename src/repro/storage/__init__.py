"""Durable, crash-safe persistence for the service layer.

The storage package is the operational-durability subsystem beneath
``repro serve``: everything the long-lived daemon holds in memory —
dynamic re-placement sessions and the content-addressed result cache —
is write-ahead logged to disk *before* being applied, periodically
folded into an atomic snapshot, and replayed on startup, so a restarted
(or ``kill -9``'d) daemon resumes exactly where the old one stopped.

Modules, bottom up::

    fsutil     fsync/atomic-rename/durable-append primitives
    wal        CRC-framed, length-prefixed append-only log
    records    typed log records for the service's mutations
    snapshot   atomic snapshot files, newest-wins discovery
    store      StateStore: WAL + snapshot + compaction + recovery

The correctness contract — *recover(state) equals the never-killed
in-memory state, for any crash point including mid-record torn writes*
— is property-tested in ``tests/test_service_persistence.py`` with the
dynamic engine's blake2b fingerprints as the equality oracle.  See
``docs/durability.md`` for the record format, the snapshot/compaction
lifecycle and the ops runbook.
"""

from .fsutil import atomic_write_bytes, durable_append_line, fsync_dir
from .records import (
    CachePut,
    CacheRemove,
    LogRecord,
    SessionClose,
    SessionEvents,
    SessionStart,
    decode_record,
    encode_record,
)
from .snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    list_snapshots,
    load_latest_snapshot,
    snapshot_path,
    write_snapshot,
)
from .store import DurabilityStats, RecoveredState, StateStore
from .wal import MAX_RECORD_BYTES, RecoveryError, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "StateStore",
    "DurabilityStats",
    "RecoveredState",
    "RecoveryError",
    "WriteAheadLog",
    "WalScan",
    "scan_wal",
    "MAX_RECORD_BYTES",
    "CachePut",
    "CacheRemove",
    "SessionStart",
    "SessionEvents",
    "SessionClose",
    "LogRecord",
    "encode_record",
    "decode_record",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_path",
    "write_snapshot",
    "load_latest_snapshot",
    "list_snapshots",
    "fsync_dir",
    "atomic_write_bytes",
    "durable_append_line",
]
