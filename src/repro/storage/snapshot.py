"""Atomic service-state snapshot files.

A snapshot is the service's materialised state (open dynamic sessions,
result-cache entries, the session-id counter) as of one WAL sequence
number ``S``, serialised as one JSON document and written atomically —
temp file, ``fsync``, :func:`os.replace`, directory ``fsync`` — so a
crash at any instant leaves either the previous snapshot or the new one,
never a torn file.  The filename carries the sequence number
(``snapshot-<seq 16 digits>.json``), so the newest snapshot is found by
name alone and recovery can check the snapshot/log sequence relationship
before trusting either.

After a snapshot at ``S`` lands, the WAL is compacted: every frame with
``seq <= S`` is redundant (its effect is inside the snapshot) and is
dropped.  Recovery is then ``load(snapshot) + replay(frames > S)``.

Older snapshots are pruned after a successful write; a crash between
write and prune leaves extras, which recovery ignores (newest wins) and
the next successful snapshot removes.
"""

from __future__ import annotations

import json
import os
import re
from typing import List, Optional, Tuple

from .fsutil import atomic_write_bytes
from .wal import RecoveryError

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_path",
    "write_snapshot",
    "load_latest_snapshot",
    "list_snapshots",
    "clean_temp_files",
]

SNAPSHOT_SCHEMA_VERSION = 1

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{16})\.json$")


def snapshot_path(data_dir: str, seq: int) -> str:
    return os.path.join(data_dir, f"snapshot-{seq:016d}.json")


def list_snapshots(data_dir: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every snapshot file, newest first."""
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(data_dir)
    except FileNotFoundError:
        return out
    for name in names:
        m = _SNAPSHOT_NAME.match(name)
        if m is not None:
            out.append((int(m.group(1)), os.path.join(data_dir, name)))
    out.sort(reverse=True)
    return out


def write_snapshot(
    data_dir: str, seq: int, state: dict, *, fsync: bool = True
) -> str:
    """Atomically persist ``state`` as the snapshot for sequence ``seq``.

    Prunes every older snapshot after the new one is durable; returns
    the new snapshot's path.
    """
    payload = json.dumps(
        {"schema": SNAPSHOT_SCHEMA_VERSION, "seq": int(seq), "state": state},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    path = snapshot_path(data_dir, seq)
    atomic_write_bytes(path, payload, fsync=fsync)
    for old_seq, old_path in list_snapshots(data_dir):
        if old_path != path and old_seq <= seq:
            try:
                os.remove(old_path)
            except OSError:  # pragma: no cover - already gone
                pass
    return path


def load_latest_snapshot(data_dir: str) -> Optional[Tuple[int, dict]]:
    """``(seq, state)`` of the newest snapshot, or ``None`` when absent.

    Raises
    ------
    RecoveryError
        If the newest snapshot file cannot be parsed or its embedded
        sequence number disagrees with its filename.  Snapshots are
        written atomically, so a damaged one is real corruption, not
        crash residue — recovery must not silently fall back to an
        older state.
    """
    snaps = list_snapshots(data_dir)
    if not snaps:
        return None
    seq, path = snaps[0]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"{path}: unreadable snapshot: {exc}") from None
    if not isinstance(data, dict) or data.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise RecoveryError(
            f"{path}: unsupported snapshot schema "
            f"{data.get('schema') if isinstance(data, dict) else type(data).__name__!r}"
        )
    if int(data.get("seq", -1)) != seq:
        raise RecoveryError(
            f"{path}: embedded seq {data.get('seq')!r} disagrees with filename"
        )
    state = data.get("state")
    if not isinstance(state, dict):
        raise RecoveryError(f"{path}: snapshot state is not an object")
    return seq, state


def clean_temp_files(data_dir: str) -> int:
    """Remove write-temporaries a crash may have stranded; returns count."""
    removed = 0
    try:
        names = os.listdir(data_dir)
    except FileNotFoundError:
        return 0
    for name in names:
        if ".tmp." in name:
            try:
                os.remove(os.path.join(data_dir, name))
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
    return removed
