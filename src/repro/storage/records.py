"""Typed WAL records for the placement service's mutable state.

Each record is one *logical* service mutation — the unit of crash
atomicity.  A record is logged (and fsynced) before the mutation is
applied in memory, so every state the service ever exposed is
reconstructible as ``snapshot + replay(tail)``:

=====================  =============================================
record                 mutation
=====================  =============================================
:class:`CachePut`      a deterministic solve response entered the
                       result cache (``repro serve`` ``POST /v1/solve``)
:class:`SessionStart`  a dynamic re-placement session opened
:class:`SessionEvents` one event batch folded into a session — replay
                       re-derives the cache invalidation/seeding the
                       live call performed, through the same code path
:class:`SessionClose`  a session dropped
=====================  =============================================

Payloads are canonical JSON (sorted keys, no whitespace) built from the
repository's existing wire codecs — instances via
:mod:`repro.instances.io`, responses via
:class:`~repro.service.schema.SolveResponse`, events via
:func:`repro.dynamic.events.event_to_wire` — so the log speaks the same
dialect as the HTTP API and stays greppable with ``python -m json.tool``
piping.  :func:`encode_record` / :func:`decode_record` are the only
codec entry points; unknown kinds raise
:class:`~repro.storage.wal.RecoveryError` (never a silent skip).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type, Union

from ..instances.io import canonical_json
from .wal import RecoveryError

__all__ = [
    "CachePut",
    "CacheRemove",
    "SessionStart",
    "SessionEvents",
    "SessionClose",
    "LogRecord",
    "encode_record",
    "decode_record",
]


@dataclass(frozen=True)
class CachePut:
    """A deterministic solve response was cached under ``key``."""

    key: str
    instance_fp: str
    response: dict

    kind = "cache-put"

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "key": self.key,
            "instance_fp": self.instance_fp,
            "response": self.response,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CachePut":
        return cls(
            key=str(data["key"]),
            instance_fp=str(data["instance_fp"]),
            response=dict(data["response"]),
        )


@dataclass(frozen=True)
class CacheRemove:
    """Cache keys explicitly invalidated (offline tooling / future use).

    The live service derives invalidation from :class:`SessionEvents`
    replay; this record exists so external tools can retract entries
    from a log without understanding session semantics.
    """

    keys: List[str] = field(default_factory=list)

    kind = "cache-remove"

    def to_wire(self) -> dict:
        return {"kind": self.kind, "keys": list(self.keys)}

    @classmethod
    def from_wire(cls, data: dict) -> "CacheRemove":
        return cls(keys=[str(k) for k in data["keys"]])


@dataclass(frozen=True)
class SessionStart:
    """A dynamic session opened on ``instance`` with ``solver``."""

    session_id: str
    instance: dict
    solver: Optional[str] = None

    kind = "session-start"

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "session_id": self.session_id,
            "instance": self.instance,
            "solver": self.solver,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SessionStart":
        solver = data.get("solver")
        return cls(
            session_id=str(data["session_id"]),
            instance=dict(data["instance"]),
            solver=None if solver is None else str(solver),
        )


@dataclass(frozen=True)
class SessionEvents:
    """One change-event batch folded into session ``session_id``."""

    session_id: str
    events: List[dict] = field(default_factory=list)

    kind = "session-events"

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "session_id": self.session_id,
            "events": list(self.events),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SessionEvents":
        return cls(
            session_id=str(data["session_id"]),
            events=[dict(e) for e in data["events"]],
        )


@dataclass(frozen=True)
class SessionClose:
    """Session ``session_id`` was closed."""

    session_id: str

    kind = "session-close"

    def to_wire(self) -> dict:
        return {"kind": self.kind, "session_id": self.session_id}

    @classmethod
    def from_wire(cls, data: dict) -> "SessionClose":
        return cls(session_id=str(data["session_id"]))


LogRecord = Union[CachePut, CacheRemove, SessionStart, SessionEvents, SessionClose]

_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (CachePut, CacheRemove, SessionStart, SessionEvents, SessionClose)
}


def encode_record(record: LogRecord) -> bytes:
    """Canonical-JSON payload bytes for one record."""
    return canonical_json(record.to_wire()).encode("utf-8")


def decode_record(payload: bytes) -> LogRecord:
    """Inverse of :func:`encode_record`.

    Raises
    ------
    RecoveryError
        For undecodable JSON, a missing/unknown ``kind`` tag, or a
        record body missing required fields — a frame whose CRC passed
        but whose content is foreign is corruption, not a torn write.
    """
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"record payload is not JSON: {exc}") from None
    if not isinstance(data, dict):
        raise RecoveryError(
            f"record payload must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise RecoveryError(f"unknown record kind {kind!r}")
    try:
        return cls.from_wire(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(
            f"malformed {kind!r} record: {type(exc).__name__}: {exc}"
        ) from None
