"""Low-level durable-filesystem helpers shared by the storage layer.

Three primitives, each encapsulating one crash-safety idiom:

* :func:`fsync_dir` — flush a *directory* entry so a just-created or
  just-renamed file survives a power cut (on POSIX, creating a file is
  durable only once its parent directory is synced);
* :func:`atomic_write_bytes` — write-to-temp + ``fsync`` + atomic
  :func:`os.replace`, so readers only ever observe the old bytes or the
  complete new bytes, never a half-written file;
* :func:`durable_append_line` — append one newline-terminated text row
  with flush + ``fsync``, *repairing* a torn tail first: if a previous
  crash left the file ending mid-row (no trailing newline), the partial
  row is terminated so it can be skipped by line-oriented readers
  instead of silently merging with the next append.

The write-ahead log (:mod:`repro.storage.wal`), snapshot files
(:mod:`repro.storage.snapshot`) and the sweep runner's JSON-lines
:class:`~repro.runner.store.ResultStore` are all built on these.
"""

from __future__ import annotations

import os

__all__ = ["fsync_dir", "atomic_write_bytes", "durable_append_line"]


def fsync_dir(path: str) -> None:
    """``fsync`` the directory at ``path`` (best effort off-POSIX).

    Needed after creating, renaming or deleting files inside it: the
    file's own ``fsync`` makes the *content* durable, the directory's
    makes the *name* durable.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows disallows dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    The bytes go to a temporary sibling first (same directory, so the
    final :func:`os.replace` stays within one filesystem and is atomic),
    are fsynced, and only then renamed over the destination.  A crash at
    any point leaves either the old complete file or the new complete
    file — never a torn mixture.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    fh = open(tmp, "wb")
    try:
        fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    finally:
        fh.close()
    try:
        os.replace(tmp, path)
    except OSError:
        # Leave no temp litter behind a failed rename.
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(parent)


def durable_append_line(path: str, text: str, *, fsync: bool = True) -> None:
    """Durably append one line (``text`` must not contain newlines).

    Opens in ``a+b`` so the tail can be inspected: when the last byte is
    not a newline — the signature of an append torn by a crash — a
    terminator is written first, confining the damage to that one
    unparseable row.  The new row is then appended, flushed and fsynced,
    so once this function returns the row survives a crash.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    created = not os.path.exists(path)
    with open(path, "a+b") as fh:
        fh.seek(0, os.SEEK_END)
        if fh.tell() > 0:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                # Terminate the torn row a previous crash left behind.
                fh.write(b"\n")
        fh.write(text.encode("utf-8") + b"\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    if created and fsync:
        fsync_dir(parent)
