"""The :class:`StateStore` — durable, crash-safe service state.

One ``StateStore`` owns one data directory::

    <data_dir>/
        wal.log                    append-only record log (repro.storage.wal)
        snapshot-<seq 16d>.json    newest materialised state (atomic rename)

and implements the classic WAL + snapshot/compaction discipline:

* **log before apply** — the service appends a typed record
  (:mod:`repro.storage.records`) and only then mutates memory; the
  append fsyncs, so an acknowledged mutation survives ``kill -9``;
* **applied watermark** — :meth:`note_applied` tracks the highest
  sequence number ``W`` such that *every* record ``<= W`` has been
  applied in memory; snapshots are only ever taken at such a ``W``,
  so a snapshot never claims a record whose effect it is missing;
* **snapshot + compact** — every ``snapshot_interval`` applied records
  (or on demand via :meth:`snapshot_now`, e.g. at graceful shutdown),
  the service's state is written atomically and the WAL is truncated to
  frames ``> W``;
* **recover** — :meth:`recover` loads the newest snapshot, scans the
  log tail tolerating a torn final record, and hands both to the
  caller for replay.  Structural damage raises
  :class:`~repro.storage.wal.RecoveryError`; a torn tail is truncated
  away so future appends start from a clean end of file.

All methods are thread-safe.  The store knows nothing about the service
— state capture is a callback returning a JSON-able dict — so it is
reusable for any component with loggable mutations.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from .records import LogRecord, decode_record, encode_record
from .snapshot import (
    clean_temp_files,
    load_latest_snapshot,
    write_snapshot,
)
from .wal import RecoveryError, WriteAheadLog, scan_wal

__all__ = ["DurabilityStats", "RecoveredState", "StateStore"]

WAL_FILENAME = "wal.log"


@dataclass(frozen=True)
class DurabilityStats:
    """Point-in-time durability counters for health checks and reports."""

    data_dir: str
    last_seq: int = 0
    last_snapshot_seq: int = 0
    wal_bytes: int = 0
    records_appended: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    snapshots_written: int = 0
    recovery_s: float = 0.0
    torn_tail_recovered: bool = False

    def to_wire(self) -> dict:
        return {
            "data_dir": self.data_dir,
            "last_seq": self.last_seq,
            "last_snapshot_seq": self.last_snapshot_seq,
            "wal_bytes": self.wal_bytes,
            "records_appended": self.records_appended,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "snapshots_written": self.snapshots_written,
            "recovery_s": self.recovery_s,
            "torn_tail_recovered": self.torn_tail_recovered,
        }


@dataclass
class RecoveredState:
    """What :meth:`StateStore.recover` hands back for replay."""

    snapshot: Optional[dict] = None
    snapshot_seq: int = 0
    records: List[Tuple[int, LogRecord]] = field(default_factory=list)
    torn_tail: bool = False


class StateStore:
    """WAL + snapshot persistence for one data directory.

    Parameters
    ----------
    data_dir:
        Created if missing.  One store (and one service process) per
        directory; concurrent writers are not supported.
    snapshot_interval:
        Auto-snapshot (and compact) after this many applied records
        since the last snapshot; ``0`` disables automatic snapshots
        (explicit :meth:`snapshot_now` still works).
    fsync:
        ``False`` drops the per-operation ``fsync`` calls — only for
        tests that simulate crashes at the file level.
    """

    #: Log filename inside ``data_dir`` (exposed for offline tooling).
    WAL_FILENAME = WAL_FILENAME

    def __init__(
        self,
        data_dir: str,
        *,
        snapshot_interval: int = 256,
        fsync: bool = True,
    ) -> None:
        self.data_dir = str(data_dir)
        self.snapshot_interval = int(snapshot_interval)
        self._fsync = fsync
        self._wal = WriteAheadLog(
            os.path.join(self.data_dir, WAL_FILENAME), fsync=fsync
        )
        self._lock = threading.Lock()
        self._recovered = False
        self._next_seq = 1
        self._watermark = 0
        self._applied: Set[int] = set()
        self._last_snapshot_seq = 0
        self._snapshotting = False
        # lifetime counters
        self._records_appended = 0
        self._records_replayed = 0
        self._records_skipped = 0
        self._snapshots_written = 0
        self._recovery_s = 0.0
        self._torn_tail_recovered = False

    # -- recovery ------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Load snapshot + intact log tail; prepare the store for appends.

        Idempotent per store instance (second call raises).  Returns the
        newest snapshot state (if any) plus every decoded record newer
        than it, in sequence order — the caller replays them and then
        calls :meth:`note_applied` is *not* required for replayed
        records (the store treats everything recovered as applied).

        Raises
        ------
        RecoveryError
            Structural damage: corrupt snapshot, CRC mismatch mid-log,
            duplicate/regressing sequence numbers, a gap between the
            snapshot's sequence number and the log's first record, or a
            log that starts past 1 with no snapshot covering the gap.
        """
        t0 = time.perf_counter()
        with self._lock:
            if self._recovered:
                raise RuntimeError("StateStore.recover() called twice")
            os.makedirs(self.data_dir, exist_ok=True)
            clean_temp_files(self.data_dir)

            snap = load_latest_snapshot(self.data_dir)
            snap_seq, snap_state = (snap if snap is not None else (0, None))

            scan = scan_wal(self._wal.path)
            if scan.torn_tail:
                self._torn_tail_recovered = True
                scan = self._wal.truncate_to_valid(scan)

            out = RecoveredState(
                snapshot=snap_state,
                snapshot_seq=snap_seq,
                torn_tail=self._torn_tail_recovered,
            )
            prev = snap_seq
            for seq, payload in scan.records:
                if seq <= snap_seq:
                    # The snapshot is newer than (part of) the log: a
                    # crash between snapshot write and WAL compaction
                    # left stale frames behind.  Their effects are in
                    # the snapshot; skip them, never replay them twice.
                    self._records_skipped += 1
                    continue
                if prev and seq != prev + 1:
                    raise RecoveryError(
                        f"{self._wal.path}: record {seq} follows {prev} — "
                        "records covering the gap are missing"
                    )
                if not prev and seq != 1:
                    raise RecoveryError(
                        f"{self._wal.path}: log starts at seq {seq} with no "
                        "snapshot covering earlier records"
                    )
                out.records.append((seq, decode_record(payload)))
                prev = seq

            last = max(snap_seq, scan.last_seq)
            self._next_seq = last + 1
            self._watermark = last
            self._last_snapshot_seq = snap_seq
            self._records_replayed = len(out.records)
            self._recovered = True
            self._recovery_s = time.perf_counter() - t0
            return out

    # -- the write path ------------------------------------------------
    def append(self, record: LogRecord) -> int:
        """Durably log one record; returns its sequence number.

        Must be called *before* the mutation it describes is applied;
        pair with :meth:`note_applied` afterwards.
        """
        payload = encode_record(record)
        with self._lock:
            if not self._recovered:
                raise RuntimeError(
                    "StateStore.append() before recover() — always recover "
                    "first, even on a fresh data directory"
                )
            seq = self._next_seq
            self._next_seq += 1
            self._wal.append(seq, payload)
            self._records_appended += 1
        return seq

    def note_applied(
        self, seq: int, state_fn: Optional[Callable[[], dict]] = None
    ) -> None:
        """Mark record ``seq`` as applied in memory.

        Advances the contiguous applied watermark and, when
        ``snapshot_interval`` records have accumulated past the last
        snapshot and ``state_fn`` is given, takes an automatic snapshot.
        """
        do_snapshot = False
        with self._lock:
            self._applied.add(seq)
            while self._watermark + 1 in self._applied:
                self._watermark += 1
                self._applied.discard(self._watermark)
            if (
                state_fn is not None
                and self.snapshot_interval > 0
                and not self._snapshotting
                and self._watermark - self._last_snapshot_seq
                >= self.snapshot_interval
            ):
                self._snapshotting = True
                do_snapshot = True
        if do_snapshot:
            try:
                self.snapshot_now(state_fn)
            finally:
                with self._lock:
                    self._snapshotting = False

    def snapshot_now(self, state_fn: Callable[[], dict]) -> int:
        """Snapshot at the current applied watermark and compact the WAL.

        The watermark is pinned *before* ``state_fn`` runs: every record
        at or below it is already applied, so the captured state can
        only contain *more* than the snapshot claims — and every record
        kind is an absolute (idempotent) mutation, so replaying a
        not-yet-compacted frame over a slightly-ahead snapshot converges
        to the same state.  Returns the snapshot's sequence number.
        """
        with self._lock:
            watermark = self._watermark
        state = state_fn()
        write_snapshot(self.data_dir, watermark, state, fsync=self._fsync)
        self._wal.compact(watermark)
        with self._lock:
            self._last_snapshot_seq = watermark
            self._snapshots_written += 1
        return watermark

    # -- introspection -------------------------------------------------
    def status(self) -> DurabilityStats:
        with self._lock:
            return DurabilityStats(
                data_dir=self.data_dir,
                last_seq=self._next_seq - 1,
                last_snapshot_seq=self._last_snapshot_seq,
                wal_bytes=self._wal.size_bytes(),
                records_appended=self._records_appended,
                records_replayed=self._records_replayed,
                records_skipped=self._records_skipped,
                snapshots_written=self._snapshots_written,
                recovery_s=self._recovery_s,
                torn_tail_recovered=self._torn_tail_recovered,
            )

    def close(self) -> None:
        """Release file handles (no implicit snapshot — crash-equivalent)."""
        self._wal.close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
