"""Append-only write-ahead log with CRC-framed, length-prefixed records.

File layout::

    +----------------------------- file header (12 bytes) ----+
    | magic "RPROWAL1" (8) | version u32 LE (4)               |
    +------------------------------- record frame -------------+
    | length u32 | crc32 u32 | seq u64 | payload (length bytes)|
    +----------------------------------------------------------+
    | ... more frames, strictly increasing seq ...             |

``crc32`` covers ``seq`` (8 bytes little-endian) plus the payload, so a
frame whose length field survived a crash but whose payload did not is
still detected.  Writers append one frame per committed record and
``fsync`` before reporting success — a record the caller saw committed
survives ``kill -9`` and power loss.

Reading (:func:`scan_wal`) distinguishes *torn tails* from *corruption*:

* an incomplete final frame (header or payload cut short by a crash
  mid-append), a final frame whose CRC fails, or a tail of zero bytes
  (a pre-allocated region never written) are **expected** crash residue
  — the scan stops there, reports ``torn_tail=True``, and recovery
  proceeds with every complete record;
* the same defects *mid-log* — followed by more data — mean the log was
  damaged after being written (bit rot, concurrent writers, manual
  edits) and raise a typed :class:`RecoveryError`, never a silent skip;
* non-increasing sequence numbers (duplicates, regressions) and
  sequence gaps are structural corruption and always raise.

Compaction (:meth:`WriteAheadLog.compact`) atomically rewrites the file
keeping only frames newer than a snapshot's sequence number, via
:func:`~repro.storage.fsutil.atomic_write_bytes` — a crash mid-compact
leaves the old complete log.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import ReproError
from .fsutil import atomic_write_bytes, fsync_dir

__all__ = ["RecoveryError", "WalScan", "WriteAheadLog", "scan_wal"]

MAGIC = b"RPROWAL1"
VERSION = 1
_FILE_HEADER = MAGIC + struct.pack("<I", VERSION)
_FRAME = struct.Struct("<IIQ")  # length, crc32, seq
#: Upper bound on one record's payload; a larger length field mid-log is
#: corruption, not a real record (service records are a few KB).
MAX_RECORD_BYTES = 64 * 1024 * 1024


class RecoveryError(ReproError):
    """The persisted state cannot be recovered without guessing.

    Raised for structural damage — CRC mismatch mid-log, duplicate or
    regressing sequence numbers, a sequence gap between snapshot and
    log, an unreadable snapshot, a foreign file where the WAL should be.
    Torn *tails* (the residue of a crash mid-append) are not errors;
    they are reported on :class:`WalScan` and recovery continues.
    """


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<Q", seq) + payload) & 0xFFFFFFFF


@dataclass
class WalScan:
    """Result of scanning a WAL file front to back."""

    records: List[Tuple[int, bytes]] = field(default_factory=list)
    torn_tail: bool = False
    #: Byte offset just past the last intact frame — the truncation
    #: point a repair would cut at.
    valid_bytes: int = len(_FILE_HEADER)

    @property
    def last_seq(self) -> int:
        return self.records[-1][0] if self.records else 0


def scan_wal(path: str) -> WalScan:
    """Parse every intact frame of the WAL at ``path``.

    Missing file ⇒ empty scan.  Torn tails are tolerated (see module
    docstring); structural corruption raises :class:`RecoveryError`.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return WalScan(valid_bytes=0)

    scan = WalScan()
    if len(data) < len(_FILE_HEADER):
        # A crash while writing the very header: nothing committed yet.
        scan.torn_tail = bool(data)
        scan.valid_bytes = 0
        return scan
    if data[: len(MAGIC)] != MAGIC:
        raise RecoveryError(
            f"{path}: not a repro write-ahead log (bad magic "
            f"{data[:len(MAGIC)]!r})"
        )
    (version,) = struct.unpack_from("<I", data, len(MAGIC))
    if version != VERSION:
        raise RecoveryError(
            f"{path}: unsupported WAL version {version} "
            f"(this build reads version {VERSION})"
        )

    off = len(_FILE_HEADER)
    size = len(data)
    prev_seq = 0
    while off < size:
        rest = data[off:]
        if not any(rest):
            # Zero-filled tail: a pre-allocated or zero-padded region
            # that never received a frame.  Crash residue, not damage.
            scan.torn_tail = True
            break
        if size - off < _FRAME.size:
            scan.torn_tail = True
            break
        length, crc, seq = _FRAME.unpack_from(data, off)
        payload_off = off + _FRAME.size
        if length > MAX_RECORD_BYTES:
            if payload_off + length > size:
                # Garbage length in a torn final header.
                scan.torn_tail = True
                break
            raise RecoveryError(
                f"{path}: frame at byte {off} declares an absurd length "
                f"{length} mid-log — the log is corrupt"
            )
        if payload_off + length > size:
            scan.torn_tail = True
            break
        payload = data[payload_off : payload_off + length]
        end = payload_off + length
        if _crc(seq, payload) != crc:
            if end == size:
                # The final frame's bytes were partially persisted.
                scan.torn_tail = True
                break
            raise RecoveryError(
                f"{path}: CRC mismatch in frame seq={seq} at byte {off} "
                f"with {size - end} bytes following — mid-log corruption"
            )
        if seq <= prev_seq:
            raise RecoveryError(
                f"{path}: sequence number {seq} at byte {off} does not "
                f"increase past {prev_seq} (duplicate or reordered record)"
            )
        if prev_seq and seq != prev_seq + 1:
            raise RecoveryError(
                f"{path}: sequence gap — record {prev_seq} is followed "
                f"by {seq}"
            )
        scan.records.append((seq, payload))
        scan.valid_bytes = end
        prev_seq = seq
        off = end
    return scan


class WriteAheadLog:
    """One append handle over the framed log file.

    Parameters
    ----------
    path:
        The log file; created (with its header) on first append if
        missing.
    fsync:
        ``False`` skips the per-append ``fsync`` — only for tests that
        simulate crashes at the file level, where the OS view is all
        that matters.
    """

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = str(path)
        self._fsync = fsync
        self._fh = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _ensure_open(self):
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path)) or "."
            os.makedirs(parent, exist_ok=True)
            created = not os.path.exists(self.path)
            self._fh = open(self.path, "ab")
            if created or self._fh.tell() == 0:
                self._fh.write(_FILE_HEADER)
                self._fh.flush()
                if self._fsync:
                    os.fsync(self._fh.fileno())
                    fsync_dir(parent)
        return self._fh

    def append(self, seq: int, payload: bytes) -> None:
        """Durably append one frame; returns once it is on disk."""
        frame = _FRAME.pack(len(payload), _crc(seq, payload), seq) + payload
        with self._lock:
            fh = self._ensure_open()
            fh.write(frame)
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())

    def truncate_to_valid(self, scan: Optional[WalScan] = None) -> WalScan:
        """Cut a torn tail off the file so future appends start clean.

        Appending after a torn tail without truncating would bury crash
        residue mid-log, turning tolerated tail damage into a hard
        :class:`RecoveryError` on the *next* recovery.
        """
        with self._lock:
            self._close_locked()
            if scan is None:
                scan = scan_wal(self.path)
            if scan.torn_tail and os.path.exists(self.path):
                # A tail torn inside the 12-byte file header means nothing
                # was ever committed: cut to empty so the next append
                # rewrites a clean header instead of zero-extending.
                cut = scan.valid_bytes if scan.valid_bytes >= len(_FILE_HEADER) else 0
                with open(self.path, "r+b") as fh:
                    fh.truncate(cut)
                    fh.flush()
                    if self._fsync:
                        os.fsync(fh.fileno())
                scan.torn_tail = False
            return scan

    def compact(self, keep_after_seq: int) -> int:
        """Atomically drop every frame with ``seq <= keep_after_seq``.

        Returns the number of frames kept.  The log is rewritten through
        an fsynced temp file + rename, so a crash mid-compact leaves the
        previous complete log (recovery then simply skips the stale
        frames against the snapshot's sequence number).
        """
        with self._lock:
            self._close_locked()
            scan = scan_wal(self.path)
            kept = [(s, p) for (s, p) in scan.records if s > keep_after_seq]
            out = bytearray(_FILE_HEADER)
            for seq, payload in kept:
                out += _FRAME.pack(len(payload), _crc(seq, payload), seq)
                out += payload
            atomic_write_bytes(self.path, bytes(out), fsync=self._fsync)
            return len(kept)

    def size_bytes(self) -> int:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def _close_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
