"""Replica placement with distance constraints in tree networks.

A complete implementation of Benoit, Larchevêque & Renaud-Goud,
*"Optimal algorithms and approximation algorithms for replica placement
with distance constraints in tree networks"* (INRIA RR-7750 / IPDPS
2012): the model, the paper's three algorithms, exact optimality
oracles, the hardness-proof reductions, tight worst-case families,
generators, a request-serving simulator and an analysis harness.

Quick start::

    from repro import ProblemInstance, Policy, single_gen, check_placement
    from repro.instances import random_tree

    inst = random_tree(20, 40, capacity=50, dmax=6.0, seed=1)
    placement = single_gen(inst)
    check_placement(inst, placement)        # independent validation
    print(placement.n_replicas)
"""

from .algorithms import (
    exact_multiple,
    exact_optimal,
    exact_single,
    improve_single,
    local_placement,
    multiple_assignment,
    multiple_bin,
    multiple_greedy,
    multiple_nod_dp,
    single_assignment,
    single_gen,
    single_greedy_packing,
    single_nod,
    single_nod_bestfit,
    single_push,
)
from .core import (
    Assignment,
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidPlacementError,
    InvalidTreeError,
    NotBinaryTreeError,
    Placement,
    Policy,
    PolicyError,
    ProblemInstance,
    ReproError,
    SolverError,
    Tree,
    TreeBuilder,
    check_placement,
    is_valid,
    lower_bound,
    placement_violations,
)
from .runner import (
    SolveResult,
    available_solvers,
    register_solver,
    solvers_for,
)
from .runner import solve as solve_registered

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # model
    "Tree",
    "TreeBuilder",
    "ProblemInstance",
    "Placement",
    "Assignment",
    "Policy",
    "check_placement",
    "is_valid",
    "placement_violations",
    "lower_bound",
    # algorithms
    "single_gen",
    "single_nod",
    "single_nod_bestfit",
    "single_push",
    "multiple_bin",
    "multiple_nod_dp",
    "exact_single",
    "exact_multiple",
    "exact_optimal",
    "single_assignment",
    "multiple_assignment",
    "local_placement",
    "single_greedy_packing",
    "multiple_greedy",
    "improve_single",
    # solver registry
    "SolveResult",
    "register_solver",
    "available_solvers",
    "solvers_for",
    "solve_registered",
    # errors
    "ReproError",
    "InvalidTreeError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "InfeasibleInstanceError",
    "NotBinaryTreeError",
    "PolicyError",
    "SolverError",
]
