"""Replica placement with distance constraints in tree networks.

A complete implementation of Benoit, Larchevêque & Renaud-Goud,
*"Optimal algorithms and approximation algorithms for replica placement
with distance constraints in tree networks"* (INRIA RR-7750 / IPDPS
2012): the model, the paper's three algorithms, exact optimality
oracles, the hardness-proof reductions, tight worst-case families,
generators, a request-serving simulator and an analysis harness —
fronted by a typed, cached, concurrent service layer.

The front door is :class:`~repro.service.PlacementService`: it
auto-selects a solver from the registry (or honours an explicit name),
caches results by content-addressed instance fingerprint, validates
every placement with the independent checker and normalises all
failures into typed responses::

    from repro import PlacementService
    from repro.instances import random_tree

    inst = random_tree(20, 40, capacity=50, dmax=6.0, seed=1)
    svc = PlacementService()
    resp = svc.solve_instance(inst)          # auto-selected solver
    assert resp.ok
    print(resp.solver, resp.n_replicas, resp.diagnostics.cache_hit)

The same API is served over HTTP by ``repro serve`` (POST
``/v1/solve``), and kept current under changing traffic by the online
re-placement engine (:class:`~repro.dynamic.DynamicPlacement`, see
``docs/simulation.md``).  Every registered solver is cross-validated
against solver-independent invariants on an adversarial scenario grid
by the conformance harness (:mod:`repro.scenarios`, ``repro stress``,
see ``docs/scenarios.md``).  Algorithm functions remain importable for
direct use::

    from repro import single_gen, check_placement

    placement = single_gen(inst)
    check_placement(inst, placement)        # independent validation
"""

from .algorithms import (
    exact_multiple,
    exact_optimal,
    exact_single,
    improve_single,
    local_placement,
    multiple_assignment,
    multiple_bin,
    multiple_greedy,
    multiple_nod_dp,
    single_assignment,
    single_gen,
    single_greedy_packing,
    single_nod,
    single_nod_bestfit,
    single_push,
)
from .core import (
    Assignment,
    FlatTree,
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidPlacementError,
    InvalidTreeError,
    NotBinaryTreeError,
    Placement,
    Policy,
    PolicyError,
    ProblemInstance,
    ReproError,
    SolverError,
    Tree,
    TreeBuilder,
    check_placement,
    flat_tree,
    is_valid,
    lower_bound,
    placement_violations,
)
from .runner import (
    SolveResult,
    available_solvers,
    register_solver,
    solvers_for,
)
from .runner import solve as solve_registered

__version__ = "1.9.0"

# Service- and dynamic-layer names are re-exported lazily (PEP 562) so
# lightweight consumers — `repro generate`, plain algorithm imports —
# don't pay for http.server / concurrent.futures until those layers are
# actually used.
_SERVICE_EXPORTS = frozenset({
    "Diagnostics",
    "ErrorInfo",
    "PlacementService",
    "ServiceStats",
    "SolveRequest",
    "SolveResponse",
})

_DYNAMIC_EXPORTS = frozenset({
    "CapacityEvent",
    "DemandEvent",
    "DynamicPlacement",
    "FailureEvent",
    "RepairOutcome",
    "random_event_trace",
})


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    if name in _DYNAMIC_EXPORTS:
        from . import dynamic

        return getattr(dynamic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SERVICE_EXPORTS | _DYNAMIC_EXPORTS)

__all__ = [
    "__version__",
    # model
    "Tree",
    "TreeBuilder",
    "FlatTree",
    "flat_tree",
    "ProblemInstance",
    "Placement",
    "Assignment",
    "Policy",
    "check_placement",
    "is_valid",
    "placement_violations",
    "lower_bound",
    # algorithms
    "single_gen",
    "single_nod",
    "single_nod_bestfit",
    "single_push",
    "multiple_bin",
    "multiple_nod_dp",
    "exact_single",
    "exact_multiple",
    "exact_optimal",
    "single_assignment",
    "multiple_assignment",
    "local_placement",
    "single_greedy_packing",
    "multiple_greedy",
    "improve_single",
    # solver registry
    "SolveResult",
    "register_solver",
    "available_solvers",
    "solvers_for",
    "solve_registered",
    # service layer (the front door)
    "PlacementService",
    "ServiceStats",
    "SolveRequest",
    "SolveResponse",
    "Diagnostics",
    "ErrorInfo",
    # dynamic layer (online re-placement)
    "DynamicPlacement",
    "RepairOutcome",
    "DemandEvent",
    "FailureEvent",
    "CapacityEvent",
    "random_event_trace",
    # errors
    "ReproError",
    "InvalidTreeError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "InfeasibleInstanceError",
    "NotBinaryTreeError",
    "PolicyError",
    "SolverError",
]
