"""Approximation-ratio measurement harness.

Runs a solver against an optimality reference (the exact solver, a
hand-crafted optimum, or a lower bound) over a collection of instances
and aggregates the observed ratios.  This is the workhorse behind
benchmarks E3/E4 (tight families), E7/E8 (random sweeps) and E10
(policy gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.validation import placement_violations

__all__ = ["RatioSample", "RatioReport", "measure_ratios", "policy_gap"]

Solver = Callable[[ProblemInstance], Placement]


@dataclass(frozen=True)
class RatioSample:
    """One instance's outcome: solver value, reference value, ratio."""

    name: str
    solver_value: int
    reference_value: int
    valid: bool

    @property
    def ratio(self) -> float:
        if self.reference_value == 0:
            return 1.0 if self.solver_value == 0 else float("inf")
        return self.solver_value / self.reference_value


@dataclass
class RatioReport:
    """Aggregated ratio statistics over a sweep."""

    samples: List[RatioSample] = field(default_factory=list)

    @property
    def ratios(self) -> np.ndarray:
        return np.array([s.ratio for s in self.samples], dtype=float)

    @property
    def max_ratio(self) -> float:
        return float(self.ratios.max()) if self.samples else float("nan")

    @property
    def mean_ratio(self) -> float:
        return float(self.ratios.mean()) if self.samples else float("nan")

    @property
    def optimal_fraction(self) -> float:
        """Fraction of instances solved exactly optimally."""
        if not self.samples:
            return float("nan")
        r = self.ratios
        return float(np.mean(np.isclose(r, 1.0)))

    @property
    def all_valid(self) -> bool:
        return all(s.valid for s in self.samples)

    def table(self) -> str:
        """Fixed-width table of per-instance results."""
        lines = [f"{'instance':<32} {'algo':>6} {'ref':>6} {'ratio':>7} valid"]
        for s in self.samples:
            lines.append(
                f"{s.name:<32} {s.solver_value:>6} {s.reference_value:>6} "
                f"{s.ratio:>7.3f} {'yes' if s.valid else 'NO'}"
            )
        lines.append(
            f"-- mean {self.mean_ratio:.3f}, max {self.max_ratio:.3f}, "
            f"optimal on {self.optimal_fraction * 100:.0f}%"
        )
        return "\n".join(lines)


def measure_ratios(
    instances: Iterable[ProblemInstance],
    solver: Solver,
    reference: Callable[[ProblemInstance], int],
    names: Optional[Sequence[str]] = None,
) -> RatioReport:
    """Run ``solver`` on each instance and compare to ``reference``.

    ``reference(instance)`` returns the optimal (or lower-bound) replica
    count.  Every solver output is independently validated; invalid
    placements are flagged in the report rather than silently counted.
    """
    report = RatioReport()
    for idx, inst in enumerate(instances):
        placement = solver(inst)
        ok = not placement_violations(inst, placement)
        ref = reference(inst)
        name = (
            names[idx]
            if names is not None
            else (inst.name or f"instance-{idx}")
        )
        report.samples.append(
            RatioSample(name, placement.n_replicas, ref, ok)
        )
    return report


def policy_gap(
    instances: Iterable[ProblemInstance],
    single_solver: Solver,
    multiple_solver: Solver,
) -> List[dict]:
    """Single-vs-Multiple comparison on the same trees (benchmark E10).

    Each instance is solved under both policies; returns one record per
    instance with both replica counts and the gap.  The Multiple count
    can never legitimately exceed the Single count for exact solvers
    (any Single placement is a valid Multiple placement).
    """
    from ..core.policies import Policy

    rows = []
    for inst in instances:
        s = single_solver(inst.with_policy(Policy.SINGLE))
        m = multiple_solver(inst.with_policy(Policy.MULTIPLE))
        rows.append(
            {
                "name": inst.name,
                "single": s.n_replicas,
                "multiple": m.n_replicas,
                "gap": s.n_replicas - m.n_replicas,
            }
        )
    return rows
