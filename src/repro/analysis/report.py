"""Self-contained reproduction report generator.

Produces a markdown report regenerating the paper's headline numbers
directly from the library (no pytest involved), for embedding in docs
or CI artifacts:

* tight-family tables (Theorems 3 and 4);
* a Multiple-Bin optimality sweep against the exact solver (Theorem 6,
  including the F1 near-miss accounting);
* the reduction equivalences on small certified inputs (Theorems 1, 2
  and 5).

Exposed through ``replica-placement report`` on the CLI.  Kept
deliberately smaller than the benchmark suite — minutes of compute at
most — so it can run anywhere the library is installed.
"""

from __future__ import annotations

from typing import List

from ..algorithms import exact_multiple, exact_single, multiple_bin, single_gen, single_nod
from ..core.policies import Policy
from ..core.validation import is_valid
from ..instances import (
    random_binary_tree,
    single_gen_tight_instance,
    single_nod_tight_instance,
)
from ..reductions import (
    build_i2,
    build_i4,
    build_i6,
    i6_decision,
    solve_three_partition,
    solve_two_partition,
    solve_two_partition_equal,
)

__all__ = [
    "tight_family_report",
    "optimality_report",
    "reduction_report",
    "sweep_report",
    "service_report",
    "full_report",
]


def service_report(stats) -> str:
    """Markdown section summarising placement-service traffic.

    ``stats`` is a :class:`~repro.service.facade.ServiceStats` snapshot
    (``PlacementService.stats()``).  Rendered by ``repro serve`` on
    shutdown and embeddable in any report next to the sweep section.
    """
    lines = ["## Placement service", ""]
    if stats.requests == 0:
        lines += ["_(no requests served)_", ""]
        return "\n".join(lines)
    c = stats.cache
    lines.append(
        f"{stats.requests} requests in {stats.uptime_s:.1f}s "
        f"({stats.requests / stats.uptime_s:.1f} req/s) — cache "
        f"{c.hits}/{c.lookups} hits ({c.hit_rate:.0%}), "
        f"{c.evictions} evictions, {c.size}/{c.max_entries} resident."
    )
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|--------|------:|")
    for status in sorted(stats.by_status):
        lines.append(f"| status `{status}` | {stats.by_status[status]} |")
    lines.append(f"| latency mean (ms) | {stats.latency_ms_mean:.2f} |")
    lines.append(f"| latency p50 (ms) | {stats.latency_ms_p50:.2f} |")
    lines.append(f"| latency p95 (ms) | {stats.latency_ms_p95:.2f} |")
    lines.append(f"| latency max (ms) | {stats.latency_ms_max:.2f} |")
    lines.append("")
    d = getattr(stats, "durability", None)
    if d is not None:
        lines += ["### Durability", ""]
        lines.append(
            f"State persisted in `{d.data_dir}` (see `docs/durability.md`): "
            f"WAL at seq {d.last_seq} ({d.wal_bytes} bytes), last snapshot "
            f"at seq {d.last_snapshot_seq}."
        )
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|--------|------:|")
        lines.append(f"| records appended | {d.records_appended} |")
        lines.append(f"| records replayed at startup | {d.records_replayed} |")
        lines.append(f"| stale records skipped | {d.records_skipped} |")
        lines.append(f"| snapshots written | {d.snapshots_written} |")
        lines.append(f"| recovery time (s) | {d.recovery_s:.3f} |")
        torn = "yes" if d.torn_tail_recovered else "no"
        lines.append(f"| torn tail truncated | {torn} |")
        lines.append("")
    return "\n".join(lines)


def sweep_report(results) -> str:
    """Markdown section summarising persisted sweep results.

    ``results`` is an iterable of :class:`~repro.runner.result.SolveResult`
    (typically ``ResultStore(path).latest().values()``), so the report
    regenerates from the same JSON-lines rows that ``repro compare``
    reads — no ad-hoc dicts in between.
    """
    from .experiments import summarize_sweep

    rows = list(results)
    summaries = summarize_sweep(rows)
    lines = ["## Solver sweep", ""]
    if not summaries:
        lines.append("_(empty result store)_")
        lines.append("")
        return "\n".join(lines)
    n_instances = len({f"{r.instance}@{r.seed}" for r in rows})
    lines.append(
        f"{len(rows)} rows over {n_instances} instances and "
        f"{len(summaries)} solvers."
    )
    lines.append("")
    lines.append(
        "| solver | solved | wins | mean ratio | mean time (ms) "
        "| timeouts | errors |"
    )
    lines.append("|--------|-------:|-----:|-----------:|---------------:"
                 "|---------:|-------:|")
    for s in summaries:
        ratio = f"{s.mean_ratio:.3f}" if s.mean_ratio is not None else "—"
        lines.append(
            f"| {s.solver} | {s.solved}/{s.runs} | {s.wins} | {ratio} "
            f"| {s.mean_time * 1e3:.1f} | {s.timeouts} | {s.errors} |"
        )
    lines.append("")
    return "\n".join(lines)


def tight_family_report(max_m: int = 6, arity: int = 3, max_k: int = 20) -> str:
    """Markdown tables for the Theorem 3 / Theorem 4 tight families."""
    lines: List[str] = ["## Tight families (Theorems 3 & 4)", ""]
    lines.append(f"### single-gen on I_m (Δ = {arity}; bound Δ+1 = {arity + 1})")
    lines.append("")
    lines.append("| m | single-gen | optimal | ratio |")
    lines.append("|---|-----------:|--------:|------:|")
    for m in range(1, max_m + 1):
        inst, opt = single_gen_tight_instance(m, arity)
        p = single_gen(inst)
        assert is_valid(inst, p) and is_valid(inst, opt)
        lines.append(
            f"| {m} | {p.n_replicas} | {opt.n_replicas} | "
            f"{p.n_replicas / opt.n_replicas:.3f} |"
        )
    lines.append("")
    lines.append("### single-nod on the Fig. 4 family (bound 2)")
    lines.append("")
    lines.append("| K | single-nod | optimal | ratio |")
    lines.append("|---|-----------:|--------:|------:|")
    K = 2
    while K <= max_k:
        inst, opt = single_nod_tight_instance(K)
        p = single_nod(inst)
        assert is_valid(inst, p) and is_valid(inst, opt)
        lines.append(
            f"| {K} | {p.n_replicas} | {opt.n_replicas} | "
            f"{p.n_replicas / opt.n_replicas:.3f} |"
        )
        K *= 2
    lines.append("")
    return "\n".join(lines)


def optimality_report(trials: int = 20, seed0: int = 0) -> str:
    """Theorem 6 sweep: multiple-bin vs exact, per distance regime."""
    lines = [
        "## Theorem 6 sweep (multiple-bin vs exact optimum)",
        "",
        "| regime | optimal | max gap |",
        "|--------|--------:|--------:|",
    ]
    for name, dmax in (("NoD", None), ("tight", 3.0), ("mid", 6.0), ("loose", 12.0)):
        hits, gap = 0, 0
        for s in range(trials):
            inst = random_binary_tree(
                6, 7, capacity=8, dmax=dmax, policy=Policy.MULTIPLE,
                seed=seed0 + s, request_range=(1, 8),
            )
            p = multiple_bin(inst)
            e = exact_multiple(inst).n_replicas
            hits += p.n_replicas == e
            gap = max(gap, p.n_replicas - e)
        lines.append(f"| {name} (dmax={dmax}) | {hits}/{trials} | {gap} |")
    lines.append("")
    lines.append(
        "Gaps > 0 reflect reproduction finding F1 (see EXPERIMENTS.md): "
        "the literal Algorithm 3 is occasionally one replica above the "
        "optimum in the intermediate-dmax regime."
    )
    lines.append("")
    return "\n".join(lines)


def reduction_report() -> str:
    """Reduction equivalences on small certified instances."""
    lines = ["## Hardness reductions (Theorems 1, 2, 5)", ""]

    a3, B = [30, 30, 30, 23, 31, 36], 90
    inst2, _ = build_i2(a3, B)
    yes3 = solve_three_partition(a3, B) is not None
    opt2 = exact_single(inst2).n_replicas
    lines.append(
        f"* **I2** from 3-Partition {a3} (B={B}): partition "
        f"{'exists' if yes3 else 'absent'}, optimum {opt2} "
        f"(threshold m={len(a3) // 3}) — "
        f"{'consistent' if (opt2 <= len(a3) // 3) == yes3 else 'MISMATCH'}"
    )

    a2 = [7, 3, 3, 3]
    inst4, _ = build_i4(a2)
    yes2 = solve_two_partition(a2) is not None
    opt4 = exact_single(inst4).n_replicas
    lines.append(
        f"* **I4** from 2-Partition {a2}: partition "
        f"{'exists' if yes2 else 'absent'}, optimum {opt4} — "
        f"{'consistent' if (opt4 == 2) == yes2 else 'MISMATCH'}"
    )

    ae = [3, 5, 4, 6, 2, 4]
    inst6, lay = build_i6(ae)
    yese = solve_two_partition_equal(ae) is not None
    dec, _ = i6_decision(inst6, lay)
    lines.append(
        f"* **I6** from 2-Partition-Equal {ae}: partition "
        f"{'exists' if yese else 'absent'}, 4m-decision {dec} — "
        f"{'consistent' if dec == yese else 'MISMATCH'}"
    )
    lines.append("")
    return "\n".join(lines)


def full_report() -> str:
    """The complete markdown reproduction report."""
    header = (
        "# Reproduction report\n\n"
        "Generated by `repro.analysis.report` — regenerates the paper's "
        "headline numbers from the installed library.\n"
    )
    return "\n".join(
        [header, tight_family_report(), optimality_report(), reduction_report()]
    )
