"""Rendering for scenario-grid conformance runs (``repro stress``).

Turns a :class:`~repro.scenarios.harness.StressReport` into the
markdown report the CLI prints: headline gate verdict, per-family grid
summary, per-solver coverage, and the full violation list when the
gate fails.  The JSON side of the report is simply
``StressReport.to_dict()`` — this module owns only the human rendering.
"""

from __future__ import annotations

from typing import Dict, List

from ..scenarios.harness import StressReport

__all__ = ["render_stress_table", "stress_report"]


def render_stress_table(report: StressReport) -> str:
    """Monospace per-family summary: cells, solves, statuses, violations."""
    by_family: Dict[str, List] = {}
    for row in report.cells:
        by_family.setdefault(row.family, []).append(row)
    lines = [
        f"{'family':<30} {'cells':>5} {'solves':>6} {'ok':>5} "
        f"{'other':>6} {'violations':>10}"
    ]
    for family in sorted(by_family):
        rows = by_family[family]
        statuses = [s for r in rows for s in r.statuses.values()]
        n_ok = sum(1 for s in statuses if s == "ok")
        n_viol = sum(r.n_violations for r in rows)
        flag = "" if n_viol == 0 else "  <-- FAIL"
        lines.append(
            f"{family:<30} {len(rows):>5} {len(statuses):>6} {n_ok:>5} "
            f"{len(statuses) - n_ok:>6} {n_viol:>10}{flag}"
        )
    return "\n".join(lines)


def stress_report(report: StressReport) -> str:
    """The full conformance report for one scenario-grid run.

    Sections: gate verdict and grid dimensions, the per-family table,
    per-solver coverage counts (flagging solvers the grid never
    exercised), and — on failure — every invariant violation.
    """
    verdict = "PASS" if report.ok else f"FAIL ({len(report.violations)} violations)"
    out: List[str] = [
        f"## Scenario conformance — {verdict}",
        "",
        f"{report.n_families} families, {report.n_cells} cells, "
        f"{report.n_solves} solver runs in {report.wall_time:.2f}s.",
        "",
        render_stress_table(report),
        "",
        "### Solver coverage",
        "",
    ]
    for solver in sorted(report.solver_runs):
        out.append(f"  {solver:<20} {report.solver_runs[solver]:>4} cells")
    for solver in report.uncovered:
        out.append(f"  {solver:<20} NEVER RAN — widen the grid")
    if not report.ok:
        out += ["", "### Invariant violations", ""]
        out += [f"  {v}" for v in report.violations]
    out.append("")
    return "\n".join(out)
