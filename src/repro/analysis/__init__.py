"""Measurement harness: ratios, scaling, experiment tables, benchmarks."""

from .bench import (
    bench_corpus,
    compare_snapshots,
    find_baseline,
    load_snapshot,
    render_bench_table,
    run_bench,
    snapshot_problems,
    write_snapshot,
)
from .cluster import cluster_report, render_worker_health
from .complexity import ScalingPoint, ScalingResult, fit_power_law, measure_scaling
from .experiments import (
    ExperimentRow,
    ExperimentTable,
    SolverSummary,
    render_sweep_table,
    summarize_sweep,
)
from .online import online_report, render_online_table
from .replay import render_replay_table, replay_report
from .ratios import RatioReport, RatioSample, measure_ratios, policy_gap
from .report import (
    full_report,
    optimality_report,
    reduction_report,
    service_report,
    sweep_report,
    tight_family_report,
)
from .stress import render_stress_table, stress_report
from .sensitivity import (
    SweepPoint,
    capacity_sweep,
    dmax_sweep,
    knee,
    render_sweep,
)

__all__ = [
    "bench_corpus",
    "run_bench",
    "write_snapshot",
    "load_snapshot",
    "find_baseline",
    "compare_snapshots",
    "snapshot_problems",
    "render_bench_table",
    "RatioReport",
    "RatioSample",
    "measure_ratios",
    "policy_gap",
    "ScalingPoint",
    "ScalingResult",
    "measure_scaling",
    "fit_power_law",
    "ExperimentRow",
    "ExperimentTable",
    "SolverSummary",
    "summarize_sweep",
    "render_sweep_table",
    "sweep_report",
    "stress_report",
    "render_stress_table",
    "cluster_report",
    "render_worker_health",
    "service_report",
    "online_report",
    "render_online_table",
    "replay_report",
    "render_replay_table",
    "full_report",
    "tight_family_report",
    "optimality_report",
    "reduction_report",
    "SweepPoint",
    "dmax_sweep",
    "capacity_sweep",
    "knee",
    "render_sweep",
]
