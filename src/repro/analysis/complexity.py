"""Empirical complexity measurement (benchmark E9).

The paper states ``O(Δ·|T|)`` for Algorithm 1,
``O((Δ log Δ + |C|)·|T|)`` for Algorithm 2 and ``O(|T|²)`` for
Algorithm 3.  This module times a solver across a size sweep and fits a
power law ``time ≈ c·n^α`` by least squares in log-log space — the
exponent ``α`` is what the benchmark compares against the stated bound
(α ≈ 1 for the near-linear algorithms, α ≤ 2 for multiple-bin; the
paper's quadratic bound is loose for bounded client demand, so measured
exponents below the bound are expected and fine).

Per the HPC guides: measure before claiming — these timings use
``time.perf_counter`` around the solver call only, with instance
construction excluded, and repeat each size several times taking the
minimum (least-noise estimator for CPU-bound work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.placement import Placement

__all__ = ["ScalingPoint", "ScalingResult", "measure_scaling", "fit_power_law"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (size, seconds) measurement."""

    size: int
    seconds: float


@dataclass
class ScalingResult:
    """A size sweep plus its fitted power-law exponent."""

    points: List[ScalingPoint]
    exponent: float
    coefficient: float

    def table(self) -> str:
        lines = [f"{'|T|':>8} {'seconds':>12}"]
        for p in self.points:
            lines.append(f"{p.size:>8} {p.seconds:>12.6f}")
        lines.append(f"-- fitted time ~ {self.coefficient:.3e} * n^{self.exponent:.2f}")
        return "\n".join(lines)


def fit_power_law(sizes: Sequence[int], seconds: Sequence[float]) -> tuple:
    """Least-squares fit of ``log t = α log n + log c``; returns (α, c)."""
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(seconds, dtype=float))
    alpha, logc = np.polyfit(x, y, 1)
    return float(alpha), float(np.exp(logc))


def measure_scaling(
    make_instance: Callable[[int], ProblemInstance],
    solver: Callable[[ProblemInstance], Placement],
    sizes: Sequence[int],
    repeats: int = 3,
) -> ScalingResult:
    """Time ``solver`` across ``sizes`` and fit the growth exponent.

    ``make_instance(size)`` builds the instance (excluded from timing);
    each size is solved ``repeats`` times and the minimum wall time kept.
    """
    points: List[ScalingPoint] = []
    for size in sizes:
        inst = make_instance(size)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver(inst)
            best = min(best, time.perf_counter() - t0)
        points.append(ScalingPoint(len(inst.tree), best))
    alpha, c = fit_power_law(
        [p.size for p in points], [max(p.seconds, 1e-9) for p in points]
    )
    return ScalingResult(points, alpha, c)
