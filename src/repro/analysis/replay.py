"""Reporting for trace-driven replay runs.

Renders a :class:`~repro.replay.ReplayResult` two ways:

* :func:`replay_report` — a JSON-able dict: run header, per-tick
  series, and the summary statistics the ROADMAP cares about (cost
  mean/max, latency mean/p95, repair rate, cache hit rate, invariant
  violations, the deterministic run fingerprint).  The CI smoke job
  uploads this artifact and asserts ``violations == []``.
* :func:`render_replay_table` — a monospace per-tick table for the
  terminal (one row per tick in engine mode; per-tenant rows are
  aggregated per tick in service mode).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..replay.runner import ReplayResult, TickRow

__all__ = ["replay_report", "render_replay_table"]


def _pct(sorted_vals: Sequence[float], q: float) -> float:
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _series_stats(values: List[float]) -> dict:
    if not values:
        return {"mean": None, "p95": None, "max": None}
    vals = sorted(values)
    return {
        "mean": sum(vals) / len(vals),
        "p95": _pct(vals, 0.95),
        "max": vals[-1],
    }


def replay_report(result: ReplayResult) -> dict:
    """JSON-able report of one replay run (header, series, summary)."""
    costs = [float(r.cost) for r in result.rows if r.cost is not None]
    lats = [
        float(r.latency_mean)
        for r in result.rows
        if r.latency_mean is not None
    ]
    repairs = [r for r in result.rows if r.n_changes > 0]
    total = len(result.rows)
    requests = sum(1 for r in result.rows)
    return {
        "schema": 1,
        "run": {
            "instance": result.instance_name,
            "instance_fp": result.instance_fp,
            "n_nodes": result.n_nodes,
            "n_clients": result.n_clients,
            "trace": result.trace,
            "horizon": result.horizon,
            "seed": result.seed,
            "tenants": result.tenants,
            "solver": result.solver,
            "rate_scale": result.rate_scale,
            "mode": result.mode,
            "fingerprint": result.fingerprint(),
        },
        "summary": {
            "ticks": total,
            "ok_ticks": sum(1 for r in result.rows if r.ok),
            "cost": _series_stats(costs),
            "latency": _series_stats(lats),
            "repair_ms": _series_stats([r.repair_ms for r in repairs]),
            "repair_rate": (len(repairs) / total) if total else 0.0,
            "repair_failures": result.repair_failures,
            "cache_hit_rate": (
                result.cache_hits / requests
                if result.mode == "service" and requests
                else None
            ),
            "invariant_checks": result.checks_run,
            "invariant_violations": len(result.violations),
        },
        "violations": [v.to_dict() for v in result.violations],
        "series": [r.to_dict() for r in result.rows],
    }


def _fmt(v: Optional[float], spec: str = "8.2f") -> str:
    return format(v, spec) if v is not None else "       —"


def render_replay_table(result: ReplayResult, limit: int = 0) -> str:
    """Monospace per-tick table (``limit`` > 0 truncates, 0 shows all)."""
    rows: List[str] = [
        f"{'tick':>5} {'demand':>9} {'changes':>8} {'mode':<20} "
        f"{'|R|':>6} {'latency':>8} {'repair':>10}"
    ]
    by_tick: dict = {}
    for r in result.rows:
        by_tick.setdefault(r.tick, []).append(r)
    ticks = sorted(by_tick)
    shown = ticks if limit <= 0 else ticks[:limit]
    for t in shown:
        group: List[TickRow] = by_tick[t]
        demand = sum(r.demand_total for r in group)
        changes = sum(r.n_changes for r in group)
        costs = [r.cost for r in group if r.cost is not None]
        lats = [r.latency_mean for r in group if r.latency_mean is not None]
        repair = sum(r.repair_ms for r in group)
        mode = group[0].mode if len(group) == 1 else f"{len(group)} tenants"
        if not all(r.ok for r in group):
            mode = "FAILED"
        cost = str(sum(costs)) if costs else "—"
        lat = (sum(lats) / len(lats)) if lats else None
        rows.append(
            f"{t:>5} {demand:>9} {changes:>8} {mode:<20} "
            f"{cost:>6} {_fmt(lat)} {repair:>8.2f}ms"
        )
    if limit > 0 and len(ticks) > limit:
        rows.append(f"  ... {len(ticks) - limit} more ticks")
    return "\n".join(rows)
