"""Repair-vs-resolve reporting for the online re-placement engine.

Renders the measurement rows produced by
:func:`repro.simulate.online.run_online` as a monospace table plus the
headline numbers the ROADMAP cares about: how much faster incremental
repair is than re-solving from scratch, whether it ever paid extra
replicas for the speed (it must not in ``incremental`` mode), and how
often repair failed outright.
"""

from __future__ import annotations

from typing import Iterable, List

from ..simulate.online import OnlineResult, OnlineStep

__all__ = ["render_online_table", "online_report"]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render_online_table(steps: Iterable[OnlineStep], limit: int = 0) -> str:
    """Monospace per-step table (``limit`` > 0 truncates, 0 shows all)."""
    rows: List[str] = [
        f"{'step':>4} {'events':<28} {'mode':<19} {'repair':>10} "
        f"{'resolve':>10} {'speedup':>8} {'|R|':>5} {'|R|cold':>7} {'reused':>7}"
    ]
    steps = list(steps)
    shown = steps if limit <= 0 else steps[:limit]
    for s in shown:
        events = s.events if len(s.events) <= 28 else s.events[:25] + "..."
        speedup = f"{s.speedup:7.2f}x" if s.speedup is not None else "     —  "
        cost = str(s.cost) if s.cost is not None else "—"
        cost_full = str(s.cost_full) if s.cost_full is not None else "—"
        reused = f"{s.nodes_reused}/{s.nodes_reused + s.nodes_recomputed}"
        mode = s.mode if s.ok else "FAILED"
        rows.append(
            f"{s.step:>4} {events:<28} {mode:<19} {_fmt_ms(s.repair_s)} "
            f"{_fmt_ms(s.resolve_s)} {speedup} {cost:>5} {cost_full:>7} {reused:>7}"
        )
    if limit > 0 and len(steps) > limit:
        rows.append(f"  ... {len(steps) - limit} more steps")
    return "\n".join(rows)


def online_report(result: OnlineResult, *, table_limit: int = 20) -> str:
    """The repair-vs-resolve report for one online run.

    Sections: the per-step table, aggregate latency/speedup figures,
    cost parity (incremental vs cold objective) and repair success
    rate, plus every distinct fallback reason encountered.
    """
    out: List[str] = [
        f"## Online repair vs full re-solve — {result.solver} "
        f"({result.n_nodes} nodes, {result.n_steps} event batches)",
        "",
        render_online_table(result.steps, limit=table_limit),
        "",
        f"- repair latency total : {result.total_repair_s * 1e3:.1f} ms",
        f"- resolve latency total: {result.total_resolve_s * 1e3:.1f} ms",
        f"- speedup              : mean {result.mean_speedup:.2f}x, "
        f"median {result.median_speedup:.2f}x over {len(result.speedups)} steps",
        f"- cost parity          : {result.cost_match_rate * 100:.1f}% "
        f"(drift {result.cost_drift:+d} replicas)",
        f"- repair success rate  : {result.success_rate * 100:.1f}% "
        f"({result.n_ok}/{result.n_steps})",
        f"- fallbacks            : {result.n_fallbacks}",
    ]
    reasons = sorted(
        {s.fallback_reason for s in result.steps if s.fallback_reason}
    )
    for r in reasons:
        out.append(f"  - fallback reason: {r}")
    errors = sorted({s.error for s in result.steps if s.error})
    for e in errors:
        out.append(f"  - repair failure: {e}")
    return "\n".join(out)
