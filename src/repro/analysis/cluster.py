"""Rendering for ``repro loadtest`` reports and router health.

``cluster_report`` accepts either a live
:class:`~repro.cluster.loadtest.LoadTestReport` or its ``to_dict()``
JSON form (the shape the CI artifact stores), so a persisted report
renders identically to a fresh run — round-trip-tested in
``tests/test_cluster_loadtest.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.loadtest import LoadTestReport

__all__ = ["cluster_report", "render_worker_health"]


def _coerce(report: "Union[LoadTestReport, dict]") -> "LoadTestReport":
    from ..cluster.loadtest import LoadTestReport

    if isinstance(report, LoadTestReport):
        return report
    return LoadTestReport.from_dict(dict(report))


def cluster_report(report: "Union[LoadTestReport, dict]") -> str:
    """Human-readable summary of one load-test run."""
    r = _coerce(report)
    lat = r.latency_ms
    lines = [
        f"cluster loadtest — {r.url}  (mix={r.mix} seed={r.seed})",
        (
            f"  requests    : {r.n_requests} "
            f"(ok {r.ok}, solver-level failures {r.solver_errors}, "
            f"failed {r.failed})"
        ),
        (
            f"  concurrency : {r.concurrency} threads over "
            f"{r.distinct_instances} distinct instances"
        ),
        (
            f"  wall time   : {r.wall_s:.2f} s  "
            f"({r.throughput_rps:.1f} req/s, "
            f"{r.cache_hit_rps:.1f} cache-hit/s)"
        ),
        (
            "  latency ms  : "
            f"mean {lat.get('mean', 0.0):.1f}  "
            f"p50 {lat.get('p50', 0.0):.1f}  "
            f"p90 {lat.get('p90', 0.0):.1f}  "
            f"p99 {lat.get('p99', 0.0):.1f}  "
            f"max {lat.get('max', 0.0):.1f}"
        ),
        (
            f"  cache       : {r.cache_hits} hits "
            f"({r.cache_hit_rate * 100:.1f}% of ok)"
        ),
        f"  error rate  : {r.error_rate * 100:.2f}%",
    ]
    if r.per_worker:
        lines.append("  per worker:")
        width = max(len(node) for node in r.per_worker)
        for node in sorted(r.per_worker):
            s = r.per_worker[node]
            lines.append(
                f"    {node:<{width}} : {s.requests:>5} req  "
                f"{s.cache_hits:>5} hits  {s.errors:>3} err  "
                f"mean {s.latency_ms_mean:6.1f} ms"
            )
    return "\n".join(lines)


def render_worker_health(healthz: dict) -> str:
    """Render a router ``/v1/healthz`` payload as a worker table."""
    ring = healthz.get("ring", {})
    lines = [
        (
            f"cluster health: {healthz.get('status', '?')} — "
            f"{ring.get('workers_alive', '?')}/"
            f"{ring.get('workers_total', '?')} workers, "
            f"{ring.get('vnodes', '?')} vnodes, "
            f"{healthz.get('sessions', 0)} pinned session(s)"
        ),
    ]
    workers = healthz.get("workers", [])
    if workers:
        width = max(len(str(w.get("node_id", "?"))) for w in workers)
        for w in workers:
            probe = w.get("last_probe_ms")
            probe_txt = f"{probe:6.1f} ms" if probe is not None else "  never"
            lines.append(
                f"  {str(w.get('node_id', '?')):<{width}} "
                f"{'up  ' if w.get('alive') else 'DOWN'} "
                f"share {w.get('ring_share', 0.0) * 100:5.1f}%  "
                f"probe {probe_txt}  "
                f"req {w.get('requests', 0)}  "
                f"retries {w.get('retries', 0)}"
            )
    return "\n".join(lines)
