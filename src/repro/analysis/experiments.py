"""Experiment table helpers.

Small utilities shared by the benchmark harness and the examples to
print paper-style tables: aligned columns, a ``paper`` column next to a
``measured`` column, and a pass/fail verdict on the qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["ExperimentRow", "ExperimentTable"]


@dataclass(frozen=True)
class ExperimentRow:
    """One row: a setting, the paper's claim, and our measurement."""

    setting: str
    paper: str
    measured: str
    ok: bool


@dataclass
class ExperimentTable:
    """A named experiment with claim-vs-measured rows."""

    experiment: str
    claim: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def add(self, setting: str, paper: str, measured: str, ok: bool) -> None:
        self.rows.append(ExperimentRow(setting, paper, measured, ok))

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.rows)

    def render(self, widths: Optional[Sequence[int]] = None) -> str:
        w = widths or (30, 22, 22)
        head = (
            f"== {self.experiment} ==\n{self.claim}\n"
            f"{'setting':<{w[0]}} {'paper':<{w[1]}} {'measured':<{w[2]}} ok"
        )
        lines = [head]
        for r in self.rows:
            lines.append(
                f"{r.setting:<{w[0]}} {r.paper:<{w[1]}} {r.measured:<{w[2]}} "
                f"{'yes' if r.ok else 'NO'}"
            )
        lines.append(
            f"-- {self.experiment}: "
            f"{'REPRODUCED' if self.all_ok else 'MISMATCH'} "
            f"({sum(r.ok for r in self.rows)}/{len(self.rows)} rows)"
        )
        return "\n".join(lines)
