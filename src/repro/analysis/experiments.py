"""Experiment table helpers.

Small utilities shared by the benchmark harness and the examples to
print paper-style tables: aligned columns, a ``paper`` column next to a
``measured`` column, and a pass/fail verdict on the qualitative claim.

This module also aggregates persisted sweep results
(:class:`~repro.runner.result.SolveResult` rows from the JSON-lines
store) into per-solver summaries — the backend of ``repro compare``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..runner.result import SolveResult, Status

__all__ = [
    "ExperimentRow",
    "ExperimentTable",
    "SolverSummary",
    "summarize_sweep",
    "render_sweep_table",
]


@dataclass(frozen=True)
class ExperimentRow:
    """One row: a setting, the paper's claim, and our measurement."""

    setting: str
    paper: str
    measured: str
    ok: bool


@dataclass
class ExperimentTable:
    """A named experiment with claim-vs-measured rows."""

    experiment: str
    claim: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def add(self, setting: str, paper: str, measured: str, ok: bool) -> None:
        self.rows.append(ExperimentRow(setting, paper, measured, ok))

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.rows)

    def render(self, widths: Optional[Sequence[int]] = None) -> str:
        w = widths or (30, 22, 22)
        head = (
            f"== {self.experiment} ==\n{self.claim}\n"
            f"{'setting':<{w[0]}} {'paper':<{w[1]}} {'measured':<{w[2]}} ok"
        )
        lines = [head]
        for r in self.rows:
            lines.append(
                f"{r.setting:<{w[0]}} {r.paper:<{w[1]}} {r.measured:<{w[2]}} "
                f"{'yes' if r.ok else 'NO'}"
            )
        lines.append(
            f"-- {self.experiment}: "
            f"{'REPRODUCED' if self.all_ok else 'MISMATCH'} "
            f"({sum(r.ok for r in self.rows)}/{len(self.rows)} rows)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep aggregation (solver-vs-solver, across a persisted result store)
# ----------------------------------------------------------------------


@dataclass
class SolverSummary:
    """Aggregate of one solver's rows across a sweep."""

    solver: str
    runs: int = 0
    solved: int = 0
    invalid: int = 0
    timeouts: int = 0
    errors: int = 0
    skipped: int = 0  # inapplicable / infeasible / budget rows
    total_replicas: int = 0
    wins: int = 0  # instances where this solver matched the best |R|
    mean_ratio: Optional[float] = None  # |R| / best known |R|, mean
    total_time: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.solved if self.solved else 0.0


def summarize_sweep(results: Iterable[SolveResult]) -> List[SolverSummary]:
    """Per-solver aggregates over sweep rows.

    ``mean_ratio`` compares each solver's objective to the best valid
    objective *any* solver achieved on the same (instance, seed) — an
    empirical competitive ratio on the shared corpus.  Sorted best mean
    ratio first, unsolved-only solvers last.
    """
    rows = list(results)
    best: Dict[str, int] = {}
    for r in rows:
        if r.ok and r.n_replicas is not None:
            ikey = f"{r.instance}@{r.seed}"
            cur = best.get(ikey)
            if cur is None or r.n_replicas < cur:
                best[ikey] = r.n_replicas

    summaries: Dict[str, SolverSummary] = {}
    ratios: Dict[str, List[float]] = defaultdict(list)
    for r in rows:
        s = summaries.setdefault(r.solver, SolverSummary(r.solver))
        s.runs += 1
        if r.ok:
            s.solved += 1
            s.total_replicas += r.n_replicas or 0
            s.total_time += r.wall_time
            b = best.get(f"{r.instance}@{r.seed}")
            if b is not None:
                if r.n_replicas == b:
                    s.wins += 1
                if b > 0:
                    ratios[r.solver].append((r.n_replicas or 0) / b)
                elif r.n_replicas == 0:
                    ratios[r.solver].append(1.0)  # 0/0: tied with the best
        elif r.status == Status.INVALID:
            s.invalid += 1
        elif r.status == Status.TIMEOUT:
            s.timeouts += 1
        elif r.status == Status.ERROR:
            s.errors += 1
        else:  # inapplicable / infeasible / budget
            s.skipped += 1
    for name, rs in ratios.items():
        summaries[name].mean_ratio = sum(rs) / len(rs)

    def sort_key(s: SolverSummary):
        return (s.solved == 0, s.mean_ratio if s.mean_ratio is not None else 1e9, s.solver)

    return sorted(summaries.values(), key=sort_key)


def render_sweep_table(results: Iterable[SolveResult]) -> str:
    """Aligned solver-vs-solver text table over sweep rows."""
    summaries = summarize_sweep(list(results))
    if not summaries:
        return "(no sweep results)"
    head = (
        f"{'solver':<20} {'ok':>4} {'wins':>5} {'ratio':>7} {'|R| tot':>8} "
        f"{'t/solve':>9} {'inval':>6} {'t/o':>4} {'err':>4} {'skip':>5}"
    )
    lines = [head, "-" * len(head)]
    for s in summaries:
        ratio = f"{s.mean_ratio:.3f}" if s.mean_ratio is not None else "—"
        lines.append(
            f"{s.solver:<20} {s.solved:>4} {s.wins:>5} {ratio:>7} "
            f"{s.total_replicas:>8} {s.mean_time * 1e3:>7.1f}ms "
            f"{s.invalid:>6} {s.timeouts:>4} {s.errors:>4} {s.skipped:>5}"
        )
    return "\n".join(lines)
