"""Sensitivity analysis: replica count vs model parameters.

The paper treats ``W`` and ``dmax`` as givens; operators choose them.
This module sweeps them and reports the provisioning curve:

* :func:`dmax_sweep` — replicas needed as the latency SLA tightens.
  For an *exact* solver the curve is provably non-increasing in
  ``dmax`` (any placement valid under a smaller ``dmax`` stays valid
  under a larger one); for the heuristics it is measured and the sweep
  reports violations of monotonicity (the greedy algorithms are not
  monotone in general — a looser SLA can change greedy decisions).
* :func:`capacity_sweep` — replicas vs server capacity ``W``; again
  exactly non-increasing for exact solvers.
* :func:`knee` — the smallest parameter value whose replica count is
  within a factor of the unconstrained optimum: where the provisioning
  curve flattens, i.e. the SLA that stops costing extra servers.

Each sweep returns a list of ``(value, replicas)`` points plus the
solver validity flag per point, ready for tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.validation import is_valid

__all__ = ["SweepPoint", "dmax_sweep", "capacity_sweep", "knee"]

Solver = Callable[[ProblemInstance], Placement]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    value: float
    replicas: int
    valid: bool


def dmax_sweep(
    instance: ProblemInstance,
    solver: Solver,
    dmax_values: Sequence[Optional[float]],
) -> List[SweepPoint]:
    """Solve the instance under each ``dmax`` (``None`` = NoD)."""
    out: List[SweepPoint] = []
    for d in dmax_values:
        inst = ProblemInstance(
            instance.tree, instance.capacity, d, instance.policy,
            name=instance.name,
        )
        p = solver(inst)
        out.append(
            SweepPoint(
                float("inf") if d is None else float(d),
                p.n_replicas,
                is_valid(inst, p),
            )
        )
    return out


def capacity_sweep(
    instance: ProblemInstance,
    solver: Solver,
    capacities: Sequence[int],
) -> List[SweepPoint]:
    """Solve the instance under each server capacity ``W``."""
    out: List[SweepPoint] = []
    for W in capacities:
        inst = ProblemInstance(
            instance.tree, int(W), instance.dmax, instance.policy,
            name=instance.name,
        )
        p = solver(inst)
        out.append(SweepPoint(float(W), p.n_replicas, is_valid(inst, p)))
    return out


def knee(
    points: Sequence[SweepPoint], slack: float = 0.0
) -> Optional[SweepPoint]:
    """First (smallest-value) point within ``(1+slack)`` of the curve's
    minimum replica count — where further loosening stops paying.

    ``points`` must be sorted by increasing value.  Returns ``None`` on
    an empty sweep.
    """
    if not points:
        return None
    best = min(p.replicas for p in points)
    threshold = best * (1.0 + slack)
    for p in points:
        if p.replicas <= threshold:
            return p
    return None  # pragma: no cover - some point always meets the min


def render_sweep(points: Sequence[SweepPoint], param: str = "dmax") -> str:
    """Fixed-width table plus a crude ASCII bar chart of the curve."""
    if not points:
        return "(empty sweep)"
    peak = max(p.replicas for p in points) or 1
    lines = [f"{param:>10} {'replicas':>9} {'valid':>6}  curve"]
    for p in points:
        bar = "#" * max(1, round(p.replicas / peak * 40))
        val = "NoD" if p.value == float("inf") else f"{p.value:g}"
        lines.append(
            f"{val:>10} {p.replicas:>9} {'yes' if p.valid else 'NO':>6}  {bar}"
        )
    return "\n".join(lines)


__all__.append("render_sweep")
