"""Persistent benchmark harness: pinned corpus, snapshots, regressions.

``repro bench`` runs a **pinned corpus** (fixed topologies, seeds and
capacities — so numbers are comparable across commits) through the
registered solvers, times the flat-array hot paths against their
preserved object-graph baselines (:mod:`repro.algorithms.reference`),
and persists everything as a machine-readable ``BENCH_<date>.json``
snapshot.  Snapshots are compared against the previous one (or a
committed baseline) with a regression threshold, so performance has a
*trajectory*, not just a feeling — the same discipline the
continent-scale routing systems in PAPERS.md apply to their solvers.

Hardware normalisation
----------------------
Absolute wall times are machine-dependent, so every snapshot embeds a
``calibration_s`` measurement — a fixed pure-Python workload timed on
the same interpreter just before the corpus runs.  Cross-snapshot
comparison uses **calibration-normalised** times: a solver regresses
only if its time grew relative to how fast the machine runs plain
Python, which makes the committed CI baseline meaningful on runners
with different clock speeds.

The flagship corpus entry is a 220-node Multiple-NoD tree on which the
flat-path ``multiple-nod-dp`` must hold a healthy speedup over the
object-graph baseline with bit-identical placements (see
``docs/performance.md`` and the equivalence property tests in
``tests/test_arrays.py``).
"""

from __future__ import annotations

import json
import math
import platform
import random
import sys
import time
from dataclasses import replace
from datetime import date, datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.arrays import flat_cache_stats
from ..core.instance import ProblemInstance
from ..core.policies import Policy

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_corpus",
    "run_bench",
    "write_snapshot",
    "load_snapshot",
    "find_baseline",
    "compare_snapshots",
    "render_bench_table",
]

BENCH_SCHEMA_VERSION = 1

#: Snapshot filename prefix; ``repro bench`` writes ``BENCH_<date>.json``.
BENCH_PREFIX = "BENCH_"

#: (registered solver, reference implementation) pairs timed head-to-head.
_REFERENCE_OF = {
    "multiple-nod-dp": "multiple_nod_dp_reference",
    "single-nod": "single_nod_reference",
    "multiple-greedy": "multiple_greedy_reference",
}

#: Batch width per profile for the ``batch_throughput`` measurement.
#: 64 is where the per-node array-op overhead is well amortised on the
#: 220-node flagship — the regime a demand sweep actually runs in.
_BATCH_SIZES = {"full": 64, "quick": 64, "smoke": 8}

#: Fail-closed floor on the batched-vs-sequential speedup when NumPy is
#: available.  The flagship measures well above 3x; the gate sits lower
#: so runner jitter cannot fail an honest build, while a real collapse
#: of the array path (silent pure-Python fallback, shape-bucket bug)
#: still exits non-zero.  ``smoke`` instances are too small to gate.
_BATCH_MIN_SPEEDUP = {"full": 2.0, "quick": 2.0}


def _reference_fn(solver: str) -> Optional[Callable[[ProblemInstance], object]]:
    name = _REFERENCE_OF.get(solver)
    if name is None:
        return None
    from ..algorithms import reference

    return getattr(reference, name)


def bench_corpus(profile: str = "full") -> List[Tuple[str, ProblemInstance, List[str]]]:
    """The pinned benchmark corpus for ``profile``.

    Parameters
    ----------
    profile:
        ``"full"`` — every pinned instance; ``"quick"`` — the two
        220-node NoD flagships (the CI configuration); ``"smoke"`` —
        tiny instances of the same shapes, for the test suite.

    Returns
    -------
    ``[(name, instance, solvers), ...]`` — deterministic: topologies,
    seeds and capacities are pinned so snapshots stay comparable.

    Raises
    ------
    ValueError
        On an unknown profile name.
    """
    from ..instances import random_binary_tree, random_tree

    if profile == "smoke":
        nod_multi = random_tree(
            8, 16, capacity=8, dmax=None, policy=Policy.MULTIPLE,
            max_arity=3, seed=3,
        )
        return [
            ("smoke-nod-multi", nod_multi, ["multiple-nod-dp", "multiple-greedy"]),
            ("smoke-nod-single", nod_multi.with_policy(Policy.SINGLE), ["single-nod"]),
        ]
    if profile not in ("full", "quick"):
        raise ValueError(f"unknown bench profile {profile!r}")

    # The 220-node flagship: deep-ish ternary topology, W=30 — the
    # regime where the DP tables are long enough for the monotone
    # kernels to matter.
    nod220 = random_tree(
        110, 110, capacity=30, dmax=None, policy=Policy.MULTIPLE,
        max_arity=3, seed=3,
    )
    assert len(nod220.tree) == 220, "pinned corpus drifted"
    corpus: List[Tuple[str, ProblemInstance, List[str]]] = [
        ("nod220-multi", nod220, ["multiple-nod-dp", "multiple-greedy"]),
        ("nod220-single", nod220.with_policy(Policy.SINGLE),
         ["single-nod", "greedy-packing"]),
    ]
    if profile == "full":
        d220 = random_tree(
            70, 150, capacity=20, dmax=6.0, policy=Policy.SINGLE,
            max_arity=4, seed=7,
        )
        bin121 = random_binary_tree(
            60, 61, capacity=10, dmax=None, policy=Policy.MULTIPLE,
            request_range=(1, 8), seed=11,
        )
        corpus += [
            ("d220-single", d220, ["single-gen", "greedy-packing"]),
            ("bin121-multi", bin121, ["multiple-bin", "multiple-greedy"]),
        ]
    return corpus


def _calibrate() -> float:
    """Time a fixed pure-Python workload (machine-speed yardstick).

    Returns
    -------
    float
        Best-of-3 seconds for a pinned integer loop.  Snapshot
        comparisons divide solver times by this, so a slower CI runner
        does not read as a solver regression.
    """
    def work() -> int:
        acc = 0
        for i in range(200_000):
            acc += i * i % 7
        return acc

    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    best = math.inf
    result: object = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


def _batch_variants(
    inst: ProblemInstance, size: int, seed: int = 97
) -> List[ProblemInstance]:
    """``size`` same-shape demand variants of ``inst`` (deterministic).

    Only the leaf request vector varies, so every variant lands in one
    shape bucket of :func:`repro.algorithms.batched.solve_many` — the
    demand-sweep situation the batched path exists for.
    """
    rng = random.Random(seed)
    tree = inst.tree
    out: List[ProblemInstance] = []
    for _ in range(size):
        reqs = [
            max(1, r + rng.randint(-3, 3)) if r > 0 else 0
            for r in tree._requests
        ]
        out.append(replace(inst, tree=tree.with_requests(reqs)))
    return out


def _bench_batch(
    name: str, inst: ProblemInstance, profile: str, repeats: int
) -> Dict:
    """One ``batch_throughput`` snapshot entry for a flagship instance.

    Times ``solve_many`` over a bucket of same-shape demand variants
    against the equivalent sequential solver loop, records both as
    instances/second, and checks the placements are identical.
    """
    from ..algorithms.batched import solve_many
    from ..algorithms.multiple_nod_dp import multiple_nod_dp
    from ..core.kernels import HAVE_NUMPY

    size = _BATCH_SIZES.get(profile, 8)
    # Best-of-3 at minimum: one batch run is ~100ms, and a single timing
    # of a 3x-class ratio jitters enough to matter at the gate.
    repeats = max(repeats, 3)
    variants = _batch_variants(inst, size)
    entry: Dict = {
        "instance": name,
        "solver": "multiple-nod-dp",
        "batch_size": size,
        "numpy": HAVE_NUMPY,
        "min_speedup": _BATCH_MIN_SPEEDUP.get(profile) if HAVE_NUMPY else None,
    }
    try:
        # Warm both paths once (FlatTree compilation, kernel dispatch)
        # so the timed runs measure solving, not caches filling.
        seq_warm = [multiple_nod_dp(v) for v in variants]
        bat_warm = solve_many(variants)
        seq_s, _ = _time_best(
            lambda: [multiple_nod_dp(v) for v in variants], repeats
        )
        bat_s, _ = _time_best(lambda: solve_many(variants), repeats)
    except Exception as exc:  # noqa: BLE001 — recorded, not raised
        entry.update(status="error", error=f"{type(exc).__name__}: {exc}")
        return entry
    entry.update({
        "status": "ok",
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "sequential_ips": size / seq_s if seq_s > 0 else None,
        "batched_ips": size / bat_s if bat_s > 0 else None,
        "speedup": seq_s / bat_s if bat_s > 0 else None,
        "identical": seq_warm == bat_warm,
    })
    return entry


def run_bench(profile: str = "full", repeats: Optional[int] = None) -> Dict:
    """Run the pinned corpus and return a snapshot dict.

    Parameters
    ----------
    profile:
        Corpus profile (see :func:`bench_corpus`).
    repeats:
        Timing repetitions per (instance, solver); the best run is
        recorded.  Defaults to 3 for ``full``, 1 otherwise.

    Returns
    -------
    dict
        The snapshot: per-solver ``entries`` (wall time, node
        throughput), flat-vs-reference ``comparisons`` (speedup +
        bit-identity), FlatTree ``flat_cache`` counter deltas, the
        ``calibration_s`` yardstick and environment metadata.  Pass it
        to :func:`write_snapshot` / :func:`compare_snapshots`.
    """
    from ..runner.registry import get_solver

    if repeats is None:
        repeats = 3 if profile == "full" else 1
    corpus = bench_corpus(profile)
    calibration = _calibrate()
    cache_before = flat_cache_stats()

    entries: List[Dict] = []
    comparisons: List[Dict] = []
    for name, inst, solvers in corpus:
        n_nodes = len(inst.tree)
        for solver in solvers:
            spec = get_solver(solver)
            try:
                wall, placement = _time_best(lambda: spec.fn(inst), repeats)
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                entries.append({
                    "instance": name, "solver": solver, "n_nodes": n_nodes,
                    "status": "error", "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            entries.append({
                "instance": name,
                "solver": solver,
                "n_nodes": n_nodes,
                "status": "ok",
                "wall_s": wall,
                "repeats": repeats,
                "throughput_nps": n_nodes / wall if wall > 0 else None,
                "n_replicas": placement.n_replicas,
            })
            ref = _reference_fn(solver)
            if ref is not None:
                ref_wall, ref_placement = _time_best(lambda: ref(inst), repeats)
                comparisons.append({
                    "instance": name,
                    "solver": solver,
                    "flat_s": wall,
                    "reference_s": ref_wall,
                    "speedup": ref_wall / wall if wall > 0 else None,
                    "identical": placement == ref_placement,
                })

    batch_entries: List[Dict] = []
    for name, inst, solvers in corpus:
        if (
            "multiple-nod-dp" in solvers
            and inst.policy is Policy.MULTIPLE
            and not inst.has_distance_constraint
        ):
            batch_entries.append(_bench_batch(name, inst, profile, repeats))

    cache_after = flat_cache_stats()
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "profile": profile,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "calibration_s": calibration,
        "entries": entries,
        "comparisons": comparisons,
        "batch_throughput": batch_entries,
        "flat_cache": {
            k: cache_after[k] - cache_before[k] for k in cache_after
        },
    }


# ----------------------------------------------------------------------
# Snapshot persistence and comparison
# ----------------------------------------------------------------------
def write_snapshot(snapshot: Dict, out_dir: str = ".", label: Optional[str] = None) -> Path:
    """Persist ``snapshot`` as ``BENCH_<label>.json`` under ``out_dir``.

    Parameters
    ----------
    snapshot:
        A dict from :func:`run_bench`.
    out_dir:
        Directory to write into (created if missing).
    label:
        Filename label; defaults to today's ISO date, so one snapshot
        per day is kept and re-running overwrites today's.

    Returns
    -------
    Path
        The written file.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    label = label or date.today().isoformat()
    path = out / f"{BENCH_PREFIX}{label}.json"
    with path.open("w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(path) -> Dict:
    """Load a snapshot written by :func:`write_snapshot`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _baseline_key(path: Path) -> Tuple[int, int, str]:
    """Ordering key for baseline selection: newest dated label wins.

    Date-labelled snapshots (``BENCH_2026-07-26.json``) rank above any
    non-date label (e.g. the committed ``BENCH_baseline.json``, which
    would otherwise shadow every dated snapshot lexicographically) and
    sort chronologically among themselves.
    """
    label = path.stem[len(BENCH_PREFIX):]
    try:
        return (1, date.fromisoformat(label).toordinal(), path.name)
    except ValueError:
        return (0, 0, path.name)


def find_baseline(out_dir: str, exclude: Optional[Path] = None) -> Optional[Path]:
    """The latest ``BENCH_*.json`` under ``out_dir``.

    Parameters
    ----------
    out_dir:
        Directory to scan (non-recursively).
    exclude:
        A path to skip — typically the snapshot just written, so a
        re-run on the same day does not compare against itself.

    Returns
    -------
    The most recent snapshot path: the latest *date-labelled* one if
    any exists, otherwise the lexicographically last of the rest —
    or ``None`` if there is none.
    """
    candidates = list(Path(out_dir).glob(f"{BENCH_PREFIX}*.json"))
    if exclude is not None:
        exclude = Path(exclude).resolve()
        candidates = [p for p in candidates if p.resolve() != exclude]
    return max(candidates, key=_baseline_key) if candidates else None


def snapshot_problems(snapshot: Dict) -> List[str]:
    """Hard failures recorded inside a snapshot (the fail-closed gate).

    Parameters
    ----------
    snapshot:
        A dict from :func:`run_bench`.

    Returns
    -------
    One line per problem: solvers that errored while benching,
    flat-vs-reference comparisons that were not bit-identical, and
    ``batch_throughput`` entries that errored, diverged from the
    sequential solver, or (with NumPy) fell below their pinned
    ``min_speedup`` floor.  Empty means the snapshot itself is healthy;
    ``repro bench`` exits non-zero otherwise, so a solver that starts
    *crashing* on the pinned corpus — or a batched path that silently
    stops vectorising — can never slip through as "no regression".
    """
    problems: List[str] = []
    for e in snapshot.get("entries", []):
        if e.get("status") != "ok":
            problems.append(
                f"{e['solver']} errored on {e['instance']}: "
                f"{e.get('error', 'unknown error')}"
            )
    for c in snapshot.get("comparisons", []):
        if not c.get("identical"):
            problems.append(
                f"{c['solver']} on {c['instance']} diverged from its "
                "object-graph reference"
            )
    for b in snapshot.get("batch_throughput", []):
        if b.get("status") != "ok":
            problems.append(
                f"batched solve_many errored on {b['instance']}: "
                f"{b.get('error', 'unknown error')}"
            )
            continue
        if not b.get("identical"):
            problems.append(
                f"batched solve_many on {b['instance']} diverged from "
                "the sequential solver"
            )
        floor = b.get("min_speedup")
        speedup = b.get("speedup")
        if floor is not None and (speedup is None or speedup < floor):
            problems.append(
                f"batched solve_many on {b['instance']}: speedup "
                f"{speedup if speedup is None else f'{speedup:.2f}x'} "
                f"below the {floor:.1f}x floor"
            )
    return problems


def compare_snapshots(
    current: Dict,
    baseline: Dict,
    threshold_pct: float = 25.0,
    min_wall_s: float = 0.002,
) -> Tuple[List[str], List[str]]:
    """Compare two snapshots; report per-solver regressions.

    Times are divided by each snapshot's ``calibration_s`` before
    comparison, so baselines recorded on different hardware compare
    meaningfully.

    Parameters
    ----------
    current, baseline:
        Snapshot dicts (:func:`run_bench` / :func:`load_snapshot`).
    threshold_pct:
        A solver regresses when its normalised time exceeds the
        baseline's by more than this percentage.
    min_wall_s:
        Entries faster than this are never flagged — sub-millisecond
        timings are jitter, not signal.

    Returns
    -------
    ``(lines, regressions)`` — human-readable comparison lines, and
    the subset describing regressions beyond the threshold (empty =
    pass).  A (instance, solver) pair the baseline measured ``ok``
    that is missing or no longer ``ok`` in ``current`` counts as a
    regression too — the gate fails closed, it cannot be satisfied by
    a solver that stopped running.  ``batch_throughput`` entries are
    compared the same way on their normalised ``batched_s`` (NumPy
    runs against NumPy baselines only — a forced-fallback run neither
    gates nor is gated by vectorised numbers).
    """
    cal_cur = float(current.get("calibration_s") or 1.0)
    cal_base = float(baseline.get("calibration_s") or 1.0)
    base_by_key = {
        (e["instance"], e["solver"]): e
        for e in baseline.get("entries", [])
        if e.get("status") == "ok"
    }
    lines: List[str] = []
    regressions: List[str] = []
    seen_ok = set()
    for e in current.get("entries", []):
        if e.get("status") != "ok":
            continue
        key = (e["instance"], e["solver"])
        b = base_by_key.get(key)
        if b is None:
            continue
        seen_ok.add(key)
        norm_cur = e["wall_s"] / cal_cur
        norm_base = b["wall_s"] / cal_base
        delta_pct = 100.0 * (norm_cur / norm_base - 1.0) if norm_base > 0 else 0.0
        line = (
            f"{e['instance']:<16} {e['solver']:<18} "
            f"{e['wall_s'] * 1e3:8.2f}ms vs {b['wall_s'] * 1e3:8.2f}ms "
            f"(normalised {delta_pct:+6.1f}%)"
        )
        if delta_pct > threshold_pct and e["wall_s"] >= min_wall_s:
            line += "  << REGRESSION"
            regressions.append(line)
        lines.append(line)
    for key in sorted(base_by_key.keys() - seen_ok):
        line = (
            f"{key[0]:<16} {key[1]:<18} measured ok in the baseline but "
            "missing or not ok now  << REGRESSION"
        )
        regressions.append(line)
        lines.append(line)

    base_batch = {
        b["instance"]: b
        for b in baseline.get("batch_throughput", [])
        if b.get("status") == "ok" and b.get("numpy")
    }
    seen_batch = set()
    for b in current.get("batch_throughput", []):
        if b.get("status") != "ok" or not b.get("numpy"):
            continue
        bb = base_batch.get(b["instance"])
        if bb is None:
            continue
        seen_batch.add(b["instance"])
        norm_cur = b["batched_s"] / cal_cur
        norm_base = bb["batched_s"] / cal_base
        delta_pct = 100.0 * (norm_cur / norm_base - 1.0) if norm_base > 0 else 0.0
        line = (
            f"{b['instance']:<16} {'solve_many/batch':<18} "
            f"{b['batched_s'] * 1e3:8.2f}ms vs {bb['batched_s'] * 1e3:8.2f}ms "
            f"(normalised {delta_pct:+6.1f}%)"
        )
        if delta_pct > threshold_pct and b["batched_s"] >= min_wall_s:
            line += "  << REGRESSION"
            regressions.append(line)
        lines.append(line)
    # Fail closed only when this run *could* have produced comparable
    # numbers: under REPRO_NO_NUMPY the batch entries legitimately stop
    # being vectorised measurements.
    from ..core.kernels import HAVE_NUMPY

    if HAVE_NUMPY:
        for name in sorted(base_batch.keys() - seen_batch):
            line = (
                f"{name:<16} {'solve_many/batch':<18} measured ok in the "
                "baseline but missing or not ok now  << REGRESSION"
            )
            regressions.append(line)
            lines.append(line)
    return lines, regressions


def render_bench_table(snapshot: Dict) -> str:
    """Human-readable table of a snapshot's entries and comparisons."""
    out: List[str] = []
    out.append(
        f"{'instance':<16} {'solver':<18} {'nodes':>6} {'wall':>10} "
        f"{'nodes/s':>10} {'|R|':>5}"
    )
    for e in snapshot.get("entries", []):
        if e.get("status") != "ok":
            out.append(
                f"{e['instance']:<16} {e['solver']:<18} "
                f"{e.get('n_nodes', 0):>6} {'—':>10} {'—':>10} {'—':>5}  "
                f"({e.get('error', 'error')})"
            )
            continue
        out.append(
            f"{e['instance']:<16} {e['solver']:<18} {e['n_nodes']:>6} "
            f"{e['wall_s'] * 1e3:>8.2f}ms {e['throughput_nps']:>10.0f} "
            f"{e['n_replicas']:>5}"
        )
    comps = snapshot.get("comparisons", [])
    if comps:
        out.append("")
        out.append(
            f"{'instance':<16} {'solver':<18} {'flat':>10} {'object':>10} "
            f"{'speedup':>8} {'identical':>9}"
        )
        for c in comps:
            out.append(
                f"{c['instance']:<16} {c['solver']:<18} "
                f"{c['flat_s'] * 1e3:>8.2f}ms {c['reference_s'] * 1e3:>8.2f}ms "
                f"{c['speedup']:>7.2f}x {'yes' if c['identical'] else 'NO':>9}"
            )
    batch = snapshot.get("batch_throughput", [])
    if batch:
        out.append("")
        out.append(
            f"{'instance':<16} {'batch':>6} {'seq ips':>9} {'batch ips':>10} "
            f"{'speedup':>8} {'identical':>9}"
        )
        for b in batch:
            if b.get("status") != "ok":
                out.append(
                    f"{b['instance']:<16} {b.get('batch_size', 0):>6} "
                    f"{'—':>9} {'—':>10} {'—':>8} {'—':>9}  "
                    f"({b.get('error', 'error')})"
                )
                continue
            out.append(
                f"{b['instance']:<16} {b['batch_size']:>6} "
                f"{b['sequential_ips']:>9.1f} {b['batched_ips']:>10.1f} "
                f"{b['speedup']:>7.2f}x "
                f"{'yes' if b['identical'] else 'NO':>9}"
            )
    cache = snapshot.get("flat_cache")
    if cache:
        out.append("")
        out.append(
            f"flat-tree cache: {cache.get('compiles', 0)} compiles, "
            f"{cache.get('hits', 0)} hits, "
            f"{cache.get('nodes_compiled', 0)} nodes compiled"
        )
    return "\n".join(out)
