"""Correlated failure-storm event traces for the dynamic engine.

:func:`repro.dynamic.random_event_trace` draws *independent* events;
real outages are correlated — a rack loses power and every machine
under it goes dark at once.  :func:`failure_storm_trace` models that:
each storm picks a pivot internal node and fails it **together with
internal nodes of its subtree** in a single batch, so the re-placement
engine sees a whole region of the tree lose hosting capability between
two repairs.  Storms are separated by calm phases of flash-crowd demand
jitter (random clients spiking to ``W`` and cooling back down), which
keeps the standing placement under pressure while the failed set grows.

Traces are deterministic given their seed and are consumed by the
conformance harness's incremental-vs-scratch invariant
(:func:`repro.scenarios.invariants.check_incremental_parity`) as well
as directly usable with :func:`repro.simulate.run_online`.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ..core.instance import ProblemInstance
from ..dynamic.events import ChangeEvent, DemandEvent, FailureEvent

__all__ = ["failure_storm_trace"]


def failure_storm_trace(
    instance: ProblemInstance,
    *,
    storms: int = 3,
    storm_size: int = 2,
    calm_steps: int = 2,
    seed: int = 0,
) -> List[List[ChangeEvent]]:
    """A seeded trace of correlated failure storms with calm jitter between.

    Parameters
    ----------
    instance:
        The snapshot the trace replays against (topology source only).
    storms:
        Number of storm batches.  Each fails a pivot internal node plus
        up to ``storm_size - 1`` internal nodes of its subtree, all in
        one batch.
    storm_size:
        Maximum correlated failures per storm.
    calm_steps:
        Demand-jitter batches between storms: one random client spikes
        to ``W`` or cools to 1 per batch.
    seed:
        Trace randomness; equal seeds give equal traces.

    Returns
    -------
    A list of event batches suitable for
    :meth:`repro.dynamic.DynamicPlacement.apply` or the ``trace=``
    parameter of :func:`repro.simulate.run_online`.  The trace never
    fails the root (the origin server always survives) and never fails
    the same node twice.
    """
    if storms < 1:
        raise ValueError("storms must be positive")
    if storm_size < 1:
        raise ValueError("storm_size must be positive")
    rng = np.random.default_rng(seed)
    tree = instance.tree
    W = instance.capacity
    clients = list(tree.clients)
    down: Set[int] = set()
    trace: List[List[ChangeEvent]] = []

    def jitter_batch() -> List[ChangeEvent]:
        c = int(clients[int(rng.integers(len(clients)))])
        level = W if rng.random() < 0.5 else 1
        return [DemandEvent(c, level)]

    for _ in range(storms):
        alive = [
            v for v in tree.internal_nodes if v != tree.root and v not in down
        ]
        if alive:
            pivot = int(alive[int(rng.integers(len(alive)))])
            storm = [pivot]
            region = [
                v
                for v in tree.subtree(pivot)
                if v != pivot and tree.is_internal(v) and v not in down
            ]
            extra = min(storm_size - 1, len(region))
            if extra > 0:
                picks = rng.choice(len(region), size=extra, replace=False)
                storm.extend(int(region[int(i)]) for i in picks)
            down.update(storm)
            trace.append([FailureEvent(v) for v in storm])
        else:
            # Every internal node is already down: degrade to jitter so
            # the trace keeps its length (and the engine keeps working).
            trace.append(jitter_batch())
        for _ in range(calm_steps):
            trace.append(jitter_batch())
    return trace
