"""Named adversarial scenario families: topology × demand profile.

The sweep corpus (:mod:`repro.runner.corpus`) samples *typical*
instances; this module enumerates *adversarial* ones.  A scenario
family crosses a *topology* — the tree shape stressing a structural
assumption — with a *demand profile* — the client-load distribution
stressing a packing assumption:

Topologies
    * ``star`` — one internal root, all clients attached: degenerates
      to pure bin packing, no tree structure to exploit.
    * ``caterpillar`` — a long binary spine, one client per spine node:
      maximal depth with demand spread evenly along it.
    * ``broom`` — a bare spine ending in a fan of clients: all demand
      concentrated far from the root.
    * ``deep_chain`` — a long spine with clients only on its deepest
      quarter: depth of ``caterpillar``, concentration of ``broom``.
    * ``random_attachment`` — uniform random attachment with no arity
      cap: heavy degree skew (early nodes accumulate most children).

Demand profiles
    * ``uniform`` — demands uniform in ``[1, W]``.
    * ``zipf`` — Zipf(1.5)-skewed demands scaled into ``[1, W]``.
    * ``heavy_tailed`` — Pareto-tailed demands: mostly tiny, rare
      near-``W`` spikes.
    * ``flash_crowd`` — a small baseline load everywhere plus ~1/8 of
      clients pinned at exactly ``W`` (the "everyone watches the same
      stream" regime).

Every topology × demand pair is a registered :class:`ScenarioFamily`
(name ``"<topology>/<demand>"``, e.g. ``"broom/flash_crowd"``) in
:data:`FAMILIES`; :func:`build_scenario` materialises a family as a
:class:`~repro.core.instance.ProblemInstance` deterministically from a
seed, and :func:`scenario` is the ``kind="scenario"`` entry registered
in :data:`repro.instances.GENERATORS` so sweeps and benchmarks can
reference families by spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = [
    "ScenarioFamily",
    "TOPOLOGIES",
    "DEMANDS",
    "FAMILIES",
    "family_names",
    "build_scenario",
    "scenario",
    "scenario_spec",
]


# ----------------------------------------------------------------------
# Topologies.  A builder returns the internal skeleton plus the ordered
# list of nodes each client attaches under (one client per entry); the
# demand profile then decides how much load each of those clients
# carries.
# ----------------------------------------------------------------------

TopologyBuilder = Callable[[np.random.Generator, int], Tuple[TreeBuilder, List[int]]]


def _delta(rng: np.random.Generator) -> float:
    """Edge length: uniform in [0.5, 2.5] so depths vary across seeds."""
    return float(rng.uniform(0.5, 2.5))


def _topology_star(rng: np.random.Generator, size: int) -> Tuple[TreeBuilder, List[int]]:
    b = TreeBuilder()
    root = b.add_root()
    return b, [root] * size


def _topology_caterpillar(
    rng: np.random.Generator, size: int
) -> Tuple[TreeBuilder, List[int]]:
    b = TreeBuilder()
    spine = b.add_root()
    hosts = [spine]
    for _ in range(size - 1):
        spine = b.add(spine, delta=_delta(rng))
        hosts.append(spine)
    return b, hosts


def _topology_broom(rng: np.random.Generator, size: int) -> Tuple[TreeBuilder, List[int]]:
    handle = max(1, size // 3)
    fan = max(1, size - handle)
    b = TreeBuilder()
    node = b.add_root()
    for _ in range(handle - 1):
        node = b.add(node, delta=_delta(rng))
    return b, [node] * fan


def _topology_deep_chain(
    rng: np.random.Generator, size: int
) -> Tuple[TreeBuilder, List[int]]:
    b = TreeBuilder()
    spine = b.add_root()
    chain = [spine]
    for _ in range(size - 1):
        spine = b.add(spine, delta=_delta(rng))
        chain.append(spine)
    n_clients = max(1, size // 4)
    return b, chain[-n_clients:]


def _topology_random_attachment(
    rng: np.random.Generator, size: int
) -> Tuple[TreeBuilder, List[int]]:
    n_internal = max(2, size // 2)
    b = TreeBuilder()
    nodes = [b.add_root()]
    has_child = {nodes[0]: False}
    for _ in range(n_internal - 1):
        host = int(nodes[int(rng.integers(len(nodes)))])
        node = b.add(host, delta=_delta(rng))
        has_child[host] = True
        has_child[node] = False
        nodes.append(node)
    # Childless skeleton nodes must become internal by hosting a client.
    hosts = [v for v in nodes if not has_child[v]]
    while len(hosts) < size - n_internal:
        hosts.append(int(nodes[int(rng.integers(len(nodes)))]))
    return b, hosts


#: Topology name -> skeleton builder.
TOPOLOGIES: Dict[str, TopologyBuilder] = {
    "star": _topology_star,
    "caterpillar": _topology_caterpillar,
    "broom": _topology_broom,
    "deep_chain": _topology_deep_chain,
    "random_attachment": _topology_random_attachment,
}


# ----------------------------------------------------------------------
# Demand profiles.  Each returns n integer demands in [1, W] — clipping
# at W keeps every family feasible under both policies (a client can
# always host its own replica).
# ----------------------------------------------------------------------

DemandProfile = Callable[[np.random.Generator, int, int], List[int]]


def _demand_uniform(rng: np.random.Generator, n: int, W: int) -> List[int]:
    return [int(x) for x in rng.integers(1, W + 1, size=n)]


def _demand_zipf(rng: np.random.Generator, n: int, W: int) -> List[int]:
    raw = rng.zipf(1.5, size=n).astype(float)
    scaled = np.ceil(raw / raw.max() * W)
    return [int(x) for x in np.clip(scaled, 1, W)]


def _demand_heavy_tailed(rng: np.random.Generator, n: int, W: int) -> List[int]:
    raw = 1.0 + rng.pareto(1.2, size=n) * max(1.0, W / 6.0)
    return [int(x) for x in np.clip(np.floor(raw), 1, W)]


def _demand_flash_crowd(rng: np.random.Generator, n: int, W: int) -> List[int]:
    base = rng.integers(1, max(2, W // 6) + 1, size=n)
    demands = [int(x) for x in base]
    n_hot = max(1, n // 8)
    for i in rng.choice(n, size=min(n_hot, n), replace=False):
        demands[int(i)] = W
    return demands


#: Demand profile name -> sampler.
DEMANDS: Dict[str, DemandProfile] = {
    "uniform": _demand_uniform,
    "zipf": _demand_zipf,
    "heavy_tailed": _demand_heavy_tailed,
    "flash_crowd": _demand_flash_crowd,
}


# ----------------------------------------------------------------------
# The family registry: every topology × demand cross.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioFamily:
    """One named adversarial workload family."""

    name: str
    topology: str
    demand: str

    @property
    def description(self) -> str:
        return f"{self.topology} topology under {self.demand} demand"


FAMILIES: Dict[str, ScenarioFamily] = {
    f"{topo}/{dem}": ScenarioFamily(f"{topo}/{dem}", topo, dem)
    for topo in TOPOLOGIES
    for dem in DEMANDS
}


def family_names() -> List[str]:
    """All registered family names, sorted."""
    return sorted(FAMILIES)


def build_scenario(
    family: str,
    *,
    size: int = 24,
    capacity: int = 16,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    seed: int = 0,
) -> ProblemInstance:
    """Materialise ``family`` as a deterministic problem instance.

    Parameters
    ----------
    family:
        A :data:`FAMILIES` key, ``"<topology>/<demand>"``.
    size:
        Scale knob: roughly the number of clients (exactly, for the
        fan/spine topologies; the random topologies split it between
        skeleton and clients).
    capacity / dmax / policy:
        Forwarded to :class:`~repro.core.instance.ProblemInstance`.
    seed:
        Drives both the topology randomness and the demand draw; equal
        seeds produce equal instances.

    Raises
    ------
    KeyError
        For an unknown family name.
    ValueError
        For a non-positive ``size``.
    """
    try:
        fam = FAMILIES[family]
    except KeyError:
        known = ", ".join(family_names())
        raise KeyError(f"unknown scenario family {family!r}; known: {known}") from None
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    rng = np.random.default_rng(seed)
    builder, hosts = TOPOLOGIES[fam.topology](rng, size)
    demands = DEMANDS[fam.demand](rng, len(hosts), capacity)
    for host, req in zip(hosts, demands):
        builder.add(host, delta=_delta(rng), requests=int(req))
    return ProblemInstance(
        builder.build(),
        capacity,
        dmax,
        policy,
        name=f"{family}(size={size},seed={seed})",
    )


def scenario(
    family: str,
    *,
    size: int = 24,
    capacity: int = 16,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    seed: int = 0,
) -> ProblemInstance:
    """The ``kind="scenario"`` generator for :data:`repro.instances.GENERATORS`.

    Same contract as :func:`build_scenario`; exists as a separate name
    so spec-driven callers (``make_instance``, sweep corpora, bench
    profiles) read naturally.
    """
    return build_scenario(
        family, size=size, capacity=capacity, dmax=dmax, policy=policy, seed=seed
    )


def scenario_spec(
    family: str,
    *,
    size: int = 24,
    capacity: int = 16,
    dmax: Optional[float] = None,
    policy: str = "single",
    seed: int = 0,
    name: Optional[str] = None,
) -> Dict:
    """A plain-dict :func:`~repro.instances.make_instance` spec for ``family``.

    JSON-able and picklable, so scenario instances can ride through the
    parallel sweep runner and result stores unchanged.
    """
    if family not in FAMILIES:
        known = ", ".join(family_names())
        raise KeyError(f"unknown scenario family {family!r}; known: {known}")
    return {
        "kind": "scenario",
        "name": name or f"{family}@{seed}",
        "family": family,
        "size": size,
        "capacity": capacity,
        "dmax": dmax,
        "policy": policy,
        "seed": seed,
    }
