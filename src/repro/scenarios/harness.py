"""Differential conformance harness over the scenario grid.

One *cell* of the grid is a scenario family materialised under a
*regime* (policy × distance-constraint combination, sized so the exact
solvers stay tractable) at a pinned seed.  For every cell the harness

1. runs **every registered solver applicable to the cell** through
   :func:`repro.runner.registry.solve` (checker-validated, budgeted),
2. evaluates the solver-independent invariants of
   :mod:`repro.scenarios.invariants` over the results, and
3. on distance-unconstrained cells, replays a correlated failure-storm
   trace through the dynamic engine and checks incremental parity.

The result is a :class:`StressReport`: per-cell status rows, the full
violation list, and per-solver coverage counts (a registered solver the
grid never exercised is reported as *uncovered* — the grid, not the
solver, is then at fault).  ``repro stress`` is the CLI surface;
:func:`quick_config` pins the CI gate configuration.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.policies import Policy
from ..runner import registry
from ..runner.result import SolveResult
from .families import build_scenario, family_names
from .invariants import (
    Violation,
    check_demand_monotonicity,
    check_exact_dominance,
    check_feasibility,
    check_flat_reference_identity,
    check_incremental_parity,
)
from .traces import failure_storm_trace

__all__ = [
    "Regime",
    "REGIMES",
    "StressConfig",
    "CellRow",
    "StressReport",
    "quick_config",
    "full_config",
    "run_stress",
]


@dataclass(frozen=True)
class Regime:
    """Policy × distance combination a scenario is materialised under."""

    name: str
    policy: Policy
    dmax: Optional[float]
    #: Hard cap on the cell size: the Multiple-policy regimes unlock the
    #: subset-enumeration exact solver, whose cost explodes with size.
    size_cap: Optional[int] = None


#: Regime cycle, ordered so consecutive regimes alternate policies.
REGIMES: Dict[str, Regime] = {
    r.name: r
    for r in (
        Regime("single", Policy.SINGLE, dmax=4.0),
        Regime("single-nod", Policy.SINGLE, dmax=None),
        Regime("multiple-nod", Policy.MULTIPLE, dmax=None, size_cap=12),
        Regime("multiple", Policy.MULTIPLE, dmax=4.0, size_cap=10),
    )
}


@dataclass(frozen=True)
class StressConfig:
    """One harness run: which cells to build and how hard to push."""

    families: List[str] = field(default_factory=family_names)
    seeds: List[int] = field(default_factory=lambda: [0])
    regimes: List[str] = field(default_factory=lambda: list(REGIMES))
    #: How many regimes of the cycle each family is materialised under
    #: (offset by the family's index, so the grid covers every regime
    #: with a quarter of the cells a full cross would take).
    regimes_per_family: int = 2
    size: int = 18
    capacity: int = 12
    budget: Optional[int] = 50_000
    solvers: Optional[List[str]] = None
    check_monotonicity: bool = True
    check_dynamic: bool = True
    storms: int = 3
    storm_size: int = 2

    def cells(self) -> List["_Cell"]:
        """The deterministic scenario grid this config describes."""
        out: List[_Cell] = []
        for i, family in enumerate(self.families):
            k = max(1, min(self.regimes_per_family, len(self.regimes)))
            for j in range(k):
                regime = REGIMES[self.regimes[(i + j) % len(self.regimes)]]
                size = self.size
                if regime.size_cap is not None:
                    size = min(size, regime.size_cap)
                for seed in self.seeds:
                    out.append(_Cell(family, regime, seed, size, self.capacity))
        return out


@dataclass(frozen=True)
class _Cell:
    family: str
    regime: Regime
    seed: int
    size: int
    capacity: int

    @property
    def cell_id(self) -> str:
        return f"{self.family}[{self.regime.name}]@{self.seed}"


def quick_config(
    families: Optional[List[str]] = None,
    solvers: Optional[List[str]] = None,
) -> StressConfig:
    """The pinned CI gate grid: every family, one seed, small sizes.

    40 cells (20 families × 2 regimes), seeds pinned at 0, sized so the
    whole run finishes in well under a minute while still covering all
    registered solvers and every invariant.
    """
    return StressConfig(
        families=families or family_names(),
        solvers=solvers,
        seeds=[0],
        regimes_per_family=2,
        size=14,
        capacity=10,
        budget=50_000,
    )


def full_config(
    families: Optional[List[str]] = None,
    solvers: Optional[List[str]] = None,
    *,
    seeds: Optional[List[int]] = None,
    size: int = 24,
) -> StressConfig:
    """The thorough grid: every regime per family, three seeds."""
    return StressConfig(
        families=families or family_names(),
        solvers=solvers,
        seeds=seeds if seeds is not None else [0, 1, 2],
        regimes_per_family=len(REGIMES),
        size=size,
        capacity=14,
        budget=200_000,
    )


@dataclass
class CellRow:
    """Per-cell outcome summary (one row of the report)."""

    cell: str
    family: str
    regime: str
    seed: int
    n_nodes: int
    variant: str
    statuses: Dict[str, str] = field(default_factory=dict)
    n_violations: int = 0
    wall_time: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellRow":
        return cls(**{f: data[f] for f in (
            "cell", "family", "regime", "seed", "n_nodes", "variant",
            "statuses", "n_violations", "wall_time",
        )})


@dataclass
class StressReport:
    """Everything one harness run learned."""

    cells: List[CellRow] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    #: Registered solver -> number of cells it ran on.
    solver_runs: Dict[str, int] = field(default_factory=dict)
    #: Registered solvers no cell of the grid exercised.
    uncovered: List[str] = field(default_factory=list)
    n_families: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff every invariant held on every cell."""
        return not self.violations

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_solves(self) -> int:
        return sum(self.solver_runs.values())

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_families": self.n_families,
            "n_cells": self.n_cells,
            "n_solves": self.n_solves,
            "wall_time": self.wall_time,
            "solver_runs": dict(sorted(self.solver_runs.items())),
            "uncovered": list(self.uncovered),
            "cells": [c.to_dict() for c in self.cells],
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StressReport":
        return cls(
            cells=[CellRow.from_dict(c) for c in data.get("cells", [])],
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
            solver_runs=dict(data.get("solver_runs", {})),
            uncovered=list(data.get("uncovered", [])),
            n_families=int(data.get("n_families", 0)),
            wall_time=float(data.get("wall_time", 0.0)),
        )


def _run_cell(
    cell: _Cell, config: StressConfig
) -> "tuple[CellRow, List[Violation]]":
    """Build one cell, run all applicable solvers, check invariants."""
    t0 = time.perf_counter()
    instance = build_scenario(
        cell.family,
        size=cell.size,
        capacity=cell.capacity,
        dmax=cell.regime.dmax,
        policy=cell.regime.policy,
        seed=cell.seed,
    )
    specs = registry.solvers_for(instance)
    if config.solvers is not None:
        wanted = set(config.solvers)
        specs = [s for s in specs if s.name in wanted]

    results: List[SolveResult] = [
        registry.solve(
            s.name, instance,
            budget=config.budget, instance_id=cell.cell_id, seed=cell.seed,
        )
        for s in specs
    ]

    cid = cell.cell_id
    violations = check_feasibility(cid, results)
    violations += check_exact_dominance(cid, results)
    violations += check_flat_reference_identity(cid, instance, results)
    if config.check_monotonicity:
        violations += check_demand_monotonicity(
            cid, instance, results, budget=config.budget
        )
    if config.check_dynamic and not instance.has_distance_constraint:
        trace = failure_storm_trace(
            instance,
            storms=config.storms,
            storm_size=config.storm_size,
            seed=cell.seed + 1,
        )
        violations += check_incremental_parity(cid, instance, trace)

    row = CellRow(
        cell=cid,
        family=cell.family,
        regime=cell.regime.name,
        seed=cell.seed,
        n_nodes=len(instance.tree),
        variant=instance.variant,
        statuses={r.solver: r.status for r in results},
        n_violations=len(violations),
        wall_time=time.perf_counter() - t0,
    )
    return row, violations


def run_stress(
    config: StressConfig,
    *,
    on_cell: Optional[Callable[[CellRow], None]] = None,
) -> StressReport:
    """Run the conformance harness over ``config``'s scenario grid.

    Parameters
    ----------
    config:
        The grid description (see :func:`quick_config` /
        :func:`full_config` for the pinned presets).
    on_cell:
        Progress callback invoked with each completed :class:`CellRow`
        (the CLI streams one line per cell from it).

    Returns
    -------
    StressReport
        Cell rows, the aggregated violation list and solver coverage.
        ``report.ok`` is the gate: True iff zero invariant violations.

    Raises
    ------
    KeyError
        For an unknown family or regime name in ``config`` — a caller
        bug, unlike solver failures, which are recorded as outcomes.
    """
    t0 = time.perf_counter()
    report = StressReport(n_families=len(set(config.families)))
    for name in config.regimes:
        if name not in REGIMES:
            known = ", ".join(REGIMES)
            raise KeyError(f"unknown regime {name!r}; known: {known}")
    for cell in config.cells():
        row, violations = _run_cell(cell, config)
        report.cells.append(row)
        report.violations.extend(violations)
        for solver in row.statuses:
            report.solver_runs[solver] = report.solver_runs.get(solver, 0) + 1
        if on_cell is not None:
            on_cell(row)
    registered = {s.name for s in registry.available_solvers()}
    if config.solvers is not None:
        registered &= set(config.solvers)
    report.uncovered = sorted(registered - set(report.solver_runs))
    report.wall_time = time.perf_counter() - t0
    return report
