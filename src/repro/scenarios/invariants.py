"""Solver-independent invariants for differential conformance testing.

Cross-validating solvers only against each other catches nothing when
they share a bug; these checks instead assert properties that hold for
*any correct solver* of the model, whatever its algorithm:

* **feasibility** — every ``status="ok"`` result passed the independent
  checker (the registry enforces this; an ``"invalid"`` or ``"error"``
  status on a feasible scenario is a violation);
* **exact agreement & dominance** — all exact solvers that complete
  report the same optimum, and no exact solver reports a cost above any
  heuristic's (the optimum is a lower bound on every feasible cost);
* **demand monotonicity** — halving every client demand can only lower
  the optimum, and doubling (capped at ``W``) can only raise it, since
  a placement stays feasible when demands shrink;
* **flat/reference bit-identity** — solvers rewritten onto the
  flat-array substrate must return placements identical to their
  preserved object-graph references;
* **incremental parity** — the dynamic engine's pure-incremental
  repairs must match a cold from-scratch solve replica-for-replica
  over any event trace.

Each check returns a list of :class:`Violation` rows; an empty list
means the invariant held.  The harness (:mod:`repro.scenarios.harness`)
runs them over the scenario grid.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms.reference import (
    multiple_greedy_reference,
    multiple_nod_dp_reference,
    single_nod_reference,
)
from ..core.instance import ProblemInstance
from ..runner import registry
from ..runner.result import SolveResult, Status

__all__ = [
    "Violation",
    "INVARIANTS",
    "REFERENCE_PAIRS",
    "check_feasibility",
    "check_exact_dominance",
    "check_demand_monotonicity",
    "check_flat_reference_identity",
    "check_incremental_parity",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach on one scenario cell."""

    invariant: str
    cell: str
    solver: str
    detail: str

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(**{k: data[k] for k in ("invariant", "cell", "solver", "detail")})

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.cell} :: {self.solver}: {self.detail}"


#: Invariant identifiers, in reporting order.
INVARIANTS = (
    "feasibility",
    "exact-dominance",
    "demand-monotonicity",
    "flat-reference-identity",
    "incremental-parity",
)

#: Flat-path registered solver -> preserved object-graph reference.
REFERENCE_PAIRS: Dict[str, Callable[[ProblemInstance], object]] = {
    "multiple-nod-dp": multiple_nod_dp_reference,
    "single-nod": single_nod_reference,
    "multiple-greedy": multiple_greedy_reference,
}


def check_feasibility(cell: str, results: Sequence[SolveResult]) -> List[Violation]:
    """No solver may return an invalid placement or crash on a scenario."""
    out: List[Violation] = []
    for r in results:
        if r.status == Status.INVALID:
            out.append(
                Violation(
                    "feasibility", cell, r.solver,
                    f"checker rejected the placement: {r.error}",
                )
            )
        elif r.status == Status.ERROR:
            out.append(
                Violation(
                    "feasibility", cell, r.solver, f"solver crashed: {r.error}"
                )
            )
    return out


def check_exact_dominance(cell: str, results: Sequence[SolveResult]) -> List[Violation]:
    """Exact solvers agree with each other and lower-bound every heuristic."""
    exact_ok = []
    heur_ok = []
    for r in results:
        if r.status != Status.OK or r.n_replicas is None:
            continue
        spec = registry.get_solver(r.solver)
        (exact_ok if spec.exact else heur_ok).append(r)
    if not exact_ok:
        return []
    out: List[Violation] = []
    best = min(r.n_replicas for r in exact_ok)
    for r in exact_ok:
        if r.n_replicas != best:
            out.append(
                Violation(
                    "exact-dominance", cell, r.solver,
                    f"exact solvers disagree: {r.n_replicas} vs optimum {best}",
                )
            )
    for r in heur_ok:
        if r.n_replicas < best:
            out.append(
                Violation(
                    "exact-dominance", cell, r.solver,
                    f"heuristic beat the exact optimum: {r.n_replicas} < {best}",
                )
            )
    return out


def _scaled(instance: ProblemInstance, factor: float) -> ProblemInstance:
    """The instance with every client demand scaled (capped at ``W``)."""
    tree = instance.tree
    W = instance.capacity
    reqs = [
        min(W, int(tree.requests(v) * factor)) if tree.is_leaf(v) else 0
        for v in range(len(tree))
    ]
    return ProblemInstance(
        tree.with_requests(reqs),
        W,
        instance.dmax,
        instance.policy,
        name=f"{instance.name}×{factor:g}",
    )


def check_demand_monotonicity(
    cell: str,
    instance: ProblemInstance,
    results: Sequence[SolveResult],
    *,
    budget: Optional[int] = None,
) -> List[Violation]:
    """``OPT(demand/2) ≤ OPT(demand) ≤ OPT(min(2·demand, W))``.

    Any placement feasible for an instance stays feasible when demands
    shrink, so the optimum is monotone in the demand vector.  Uses the
    exact solvers that already succeeded on the cell and re-runs them
    on the scaled copies; comparisons are skipped when a scaled solve
    does not complete (budget exhaustion or infeasibility of the
    scaled-up copy are legitimate outcomes, not violations).
    """
    exact_names = [
        r.solver
        for r in results
        if r.status == Status.OK
        and r.n_replicas is not None
        and registry.get_solver(r.solver).exact
    ]
    if not exact_names:
        return []
    base = min(
        r.n_replicas for r in results
        if r.solver in exact_names and r.n_replicas is not None
    )

    def best_on(scaled: ProblemInstance) -> Optional[int]:
        costs = []
        for name in exact_names:
            res = registry.solve(name, scaled, budget=budget)
            if res.status == Status.OK and res.n_replicas is not None:
                costs.append(res.n_replicas)
        return min(costs) if costs else None

    out: List[Violation] = []
    lo = best_on(_scaled(instance, 0.5))
    if lo is not None and lo > base:
        out.append(
            Violation(
                "demand-monotonicity", cell, ",".join(exact_names),
                f"halving demand raised the optimum: {lo} > {base}",
            )
        )
    hi = best_on(_scaled(instance, 2.0))
    if hi is not None and hi < base:
        out.append(
            Violation(
                "demand-monotonicity", cell, ",".join(exact_names),
                f"doubling demand lowered the optimum: {hi} < {base}",
            )
        )
    return out


def check_flat_reference_identity(
    cell: str,
    instance: ProblemInstance,
    results: Sequence[SolveResult],
) -> List[Violation]:
    """Flat-array solvers return the same placement as their references."""
    out: List[Violation] = []
    by_solver = {r.solver: r for r in results}
    for name, ref_fn in REFERENCE_PAIRS.items():
        r = by_solver.get(name)
        if r is None or r.status != Status.OK:
            continue
        try:
            ref_placement = ref_fn(instance)
        except Exception as exc:  # noqa: BLE001 — the divergence is the finding
            out.append(
                Violation(
                    "flat-reference-identity", cell, name,
                    f"flat path solved but reference raised "
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        ref_replicas = sorted(ref_placement.replicas)
        if ref_replicas != list(r.replicas):
            out.append(
                Violation(
                    "flat-reference-identity", cell, name,
                    f"replica sets differ: flat {r.replicas} vs "
                    f"reference {ref_replicas}",
                )
            )
    return out


def check_incremental_parity(
    cell: str,
    instance: ProblemInstance,
    trace: Sequence[Sequence[object]],
    *,
    solver: Optional[str] = None,
) -> List[Violation]:
    """Pure-incremental repairs cost exactly what a cold solve costs.

    Replays ``trace`` through a fresh :class:`~repro.dynamic.DynamicPlacement`
    via :func:`repro.simulate.run_online` (which cold-solves every step
    for comparison) and flags any step the engine labelled
    ``incremental`` whose cost differs from the from-scratch solve.
    Fallback and failed-repair steps are legitimate outcomes and are
    not violations.
    """
    from ..simulate import run_online

    _engine, result = run_online(instance, trace=trace, solver=solver)
    out: List[Violation] = []
    for step in result.steps:
        if step.mode == "incremental" and step.cost_matches is False:
            out.append(
                Violation(
                    "incremental-parity", cell, result.solver,
                    f"step {step.step} ({step.events}): incremental cost "
                    f"{step.cost} != scratch cost {step.cost_full}",
                )
            )
    return out
