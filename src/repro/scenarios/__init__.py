"""Scenario library + differential conformance harness.

Sits beside :mod:`repro.runner` in the stack: where the runner sweeps
*typical* corpora for performance comparison, this package stress-tests
*correctness* — a named library of adversarial workload families
(:mod:`~repro.scenarios.families`: topology × demand-profile crosses),
correlated failure-storm event traces for the dynamic engine
(:mod:`~repro.scenarios.traces`), solver-independent invariants
(:mod:`~repro.scenarios.invariants`) and the conformance harness that
runs every registered solver over a sampled scenario grid and gates on
zero invariant violations (:mod:`~repro.scenarios.harness`).

Entry points: ``repro stress`` on the CLI,
:func:`run_stress`/:func:`quick_config` in process, and the
``kind="scenario"`` generator in :data:`repro.instances.GENERATORS`
for sweep/bench consumption.  See ``docs/scenarios.md``.
"""

from .families import (
    DEMANDS,
    FAMILIES,
    TOPOLOGIES,
    ScenarioFamily,
    build_scenario,
    family_names,
    scenario,
    scenario_spec,
)
from .harness import (
    REGIMES,
    CellRow,
    Regime,
    StressConfig,
    StressReport,
    full_config,
    quick_config,
    run_stress,
)
from .invariants import (
    INVARIANTS,
    REFERENCE_PAIRS,
    Violation,
    check_demand_monotonicity,
    check_exact_dominance,
    check_feasibility,
    check_flat_reference_identity,
    check_incremental_parity,
)
from .sampled import sampled_violations
from .traces import failure_storm_trace

__all__ = [
    "ScenarioFamily",
    "TOPOLOGIES",
    "DEMANDS",
    "FAMILIES",
    "family_names",
    "build_scenario",
    "scenario",
    "scenario_spec",
    "failure_storm_trace",
    "sampled_violations",
    "Violation",
    "INVARIANTS",
    "REFERENCE_PAIRS",
    "check_feasibility",
    "check_exact_dominance",
    "check_demand_monotonicity",
    "check_flat_reference_identity",
    "check_incremental_parity",
    "Regime",
    "REGIMES",
    "StressConfig",
    "CellRow",
    "StressReport",
    "quick_config",
    "full_config",
    "run_stress",
]
