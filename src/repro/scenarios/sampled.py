"""Sampled stress invariants for large instances.

The full independent checker (:func:`repro.core.validation
.placement_violations`) walks every assignment of every client — exact,
but at replay scale (10k–100k nodes, one check per tick) it dominates
the tick budget.  This module trades completeness for a seeded sample:

* **global checks stay exact** — capacity (per-server loads) and
  replica registration are aggregate properties, cheap at any size;
* **per-client checks are sampled** — completeness, policy, ancestry
  and distance are verified for ``max_clients`` clients drawn
  deterministically per seed, plus every client that currently has an
  assignment to an unregistered server (those are always suspicious).

A clean sampled check is *evidence*, not proof — the replay harness
runs it every ``check_every`` ticks and the conformance suite keeps the
exact checker authoritative at small scale.  Violations reuse the
:class:`~repro.scenarios.invariants.Violation` row shape so stress and
replay reports render identically.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from .invariants import Violation

__all__ = ["sampled_violations"]


def sampled_violations(
    instance: ProblemInstance,
    placement: Placement,
    *,
    seed: int = 0,
    max_clients: int = 256,
    cell: str = "replay",
    solver: str = "-",
) -> List[Violation]:
    """Sampled model-constraint check of ``placement`` on ``instance``.

    Exact on global constraints (capacity, replica registration),
    sampled over at most ``max_clients`` clients for the per-client
    ones.  Returns :class:`Violation` rows; empty means the sample is
    clean.
    """
    if max_clients <= 0:
        raise ValueError(f"max_clients must be positive, got {max_clients}")
    tree = instance.tree
    W = instance.capacity
    dmax = instance.dmax
    n = len(tree)
    out: List[Violation] = []

    def flag(invariant: str, detail: str) -> None:
        out.append(
            Violation(invariant=invariant, cell=cell, solver=solver, detail=detail)
        )

    # -- exact global checks ------------------------------------------
    replicas = placement.replicas
    for r in replicas:
        if not 0 <= r < n:
            flag("registration", f"replica {r} is not a node of the tree")
    for s, load in placement.loads().items():
        if s not in replicas:
            flag("registration", f"server {s} carries load but is not in R")
        if load > W:
            flag("capacity", f"server {s} processes {load} > W={W}")

    # -- sampled per-client checks ------------------------------------
    clients = list(tree.clients)
    if len(clients) > max_clients:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(clients), size=max_clients, replace=False)
        sample = [clients[int(i)] for i in sorted(idx)]
    else:
        sample = clients

    by_client: dict = {}
    for (c, s), amount in placement.assignments.items():
        by_client.setdefault(c, []).append((s, amount))

    single = instance.policy is Policy.SINGLE
    for c in sample:
        r = tree.requests(c)
        assigned = by_client.get(c, [])
        got = sum(a for _s, a in assigned)
        if got != r:
            flag(
                "completeness",
                f"client {c} has {r} requests but {got} are assigned",
            )
        if single and r > 0 and len({s for s, _a in assigned}) > 1:
            servers = sorted({s for s, _a in assigned})
            flag("policy", f"Single violated: client {c} uses servers {servers}")
        for s, _amount in assigned:
            if not 0 <= s < n:
                flag("registration", f"client {c} assigned to non-node {s}")
                continue
            if not tree.is_ancestor(s, c):
                flag(
                    "ancestry",
                    f"server {s} is not on the root path of client {c}",
                )
                continue
            if dmax is not None:
                d = tree.distance_to_ancestor(c, s)
                if d > dmax:
                    flag(
                        "distance",
                        f"client {c} served by {s} at distance {d} > "
                        f"dmax={dmax}",
                    )
    return out
