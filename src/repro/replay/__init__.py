"""Trace-driven workload replay over the dynamic placement engine.

Turns the paper's stationary demand model into time-varying production
traffic: composable demand traces (:mod:`~repro.replay.traces`),
multi-tenant catalogues (:mod:`~repro.replay.tenants`) and the replay
runner (:mod:`~repro.replay.runner`) that drives the dynamic engine —
or the per-tenant service cache — tick by tick, auditing the standing
placement with sampled stress invariants along the way.

Entry points: ``repro simulate --replay`` on the CLI,
:func:`run_replay` in process, and
:func:`repro.analysis.replay_report` for the JSON/table report.  See
``docs/simulation.md``.
"""

from .runner import ReplayResult, TickRow, run_replay
from .tenants import tenant_instance, tenant_instances
from .traces import TRACES, DemandTrace, make_trace, trace_names

__all__ = [
    "TRACES",
    "DemandTrace",
    "make_trace",
    "trace_names",
    "tenant_instance",
    "tenant_instances",
    "TickRow",
    "ReplayResult",
    "run_replay",
]
