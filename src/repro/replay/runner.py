"""Trace-driven replay: feed a demand trace through the dynamic engine.

:func:`run_replay` is the workhorse behind ``repro simulate --replay``.
Given a (possibly 10k–100k node) instance and a trace spec, it realizes
the per-tick demand levels (:mod:`repro.replay.traces`) and drives one
of two paths:

* **engine mode** (``tenants=1``) — one
  :class:`~repro.dynamic.DynamicPlacement` holds a standing placement;
  each tick diffs the realized levels against the current snapshot and
  folds the changed clients into the engine as one
  :class:`~repro.dynamic.DemandEvent` batch (the batched fold makes a
  tick O(n + changes), not O(n · changes)).  Per tick it records cost,
  request-weighted client→replica latency over a seeded client sample,
  repair mode and repair latency.

* **service mode** (``tenants > 1``) — the multi-tenant story: every
  tenant's catalogue (:mod:`repro.replay.tenants`) is re-solved each
  tick through a :class:`~repro.service.PlacementService` with
  tenant-namespaced cache keys.  Periodic traces (diurnal) revisit
  demand levels, so after one period the service answers from the
  per-tenant cache — the recorded hit rate is the point of the mode.

Every ``check_every`` ticks the sampled stress invariants
(:func:`repro.scenarios.sampled_violations`) audit the standing
placement; violations are carried in the result and fail the CLI run.

Everything is deterministic per ``(instance, spec, horizon, seed,
tenants, solver, rate_scale)``; :meth:`ReplayResult.fingerprint` hashes
exactly the deterministic fields (never wall-clock latencies), so two
runs of the same spec fingerprint identically — the property the CI
smoke job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..instances.io import canonical_json
from ..scenarios.invariants import Violation
from ..scenarios.sampled import sampled_violations
from .traces import DemandTrace, make_trace

__all__ = ["TickRow", "ReplayResult", "run_replay"]


@dataclass(frozen=True)
class TickRow:
    """Measurements of one replay tick (one tenant)."""

    tick: int
    tenant: int
    demand_total: int
    n_changes: int
    ok: bool
    mode: str
    cost: Optional[int]
    latency_mean: Optional[float]
    repair_ms: float
    cache_hit: bool = False

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "tenant": self.tenant,
            "demand_total": self.demand_total,
            "n_changes": self.n_changes,
            "ok": self.ok,
            "mode": self.mode,
            "cost": self.cost,
            "latency_mean": self.latency_mean,
            "repair_ms": self.repair_ms,
            "cache_hit": self.cache_hit,
        }


@dataclass
class ReplayResult:
    """Everything one :func:`run_replay` run measured."""

    instance_name: str
    instance_fp: str
    n_nodes: int
    n_clients: int
    trace: str
    horizon: int
    seed: int
    tenants: int
    solver: str
    rate_scale: float
    mode: str  # "engine" | "service"
    rows: List[TickRow] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0
    repair_failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def fingerprint(self) -> str:
        """Hex digest over the deterministic fields of this run.

        Wall-clock figures (``repair_ms``) and cache temperature
        (``cache_hit`` — a pre-warmed external service legitimately
        changes it) are excluded; demand levels, costs, latencies,
        modes and violations all participate.  Equal fingerprints ⇒
        the two runs agreed on every decision that matters.
        """
        h = blake2b(digest_size=16)
        h.update(canonical_json({
            "instance": self.instance_fp,
            "trace": self.trace,
            "horizon": self.horizon,
            "seed": self.seed,
            "tenants": self.tenants,
            "solver": self.solver,
            "rate_scale": self.rate_scale,
            "mode": self.mode,
        }).encode())
        for r in self.rows:
            h.update(canonical_json({
                "t": r.tick,
                "tn": r.tenant,
                "d": r.demand_total,
                "c": r.n_changes,
                "ok": r.ok,
                "m": r.mode,
                "cost": r.cost,
                "lat": (
                    None if r.latency_mean is None
                    else round(r.latency_mean, 9)
                ),
            }).encode())
        for v in self.violations:
            h.update(str(v).encode())
        return h.hexdigest()


def _mean_latency(
    instance: ProblemInstance,
    placement: Optional[Placement],
    sample_clients: List[int],
) -> Optional[float]:
    """Request-weighted mean client→server distance over a client sample."""
    if placement is None:
        return None
    by_client: Dict[int, List] = {}
    for (c, s), amount in placement.assignments.items():
        by_client.setdefault(c, []).append((s, amount))
    tree = instance.tree
    total = 0.0
    weight = 0
    for c in sample_clients:
        for s, amount in by_client.get(c, ()):
            total += tree.distance_to_ancestor(c, s) * amount
            weight += amount
    if weight == 0:
        return 0.0
    return total / weight


def _client_sample(
    clients: List[int], sample: int, seed: int
) -> List[int]:
    if len(clients) <= sample:
        return list(clients)
    rng = np.random.default_rng([seed, 0x5A])
    idx = rng.choice(len(clients), size=sample, replace=False)
    return [clients[int(i)] for i in sorted(idx)]


def run_replay(
    instance: ProblemInstance,
    trace: str = "diurnal+flash",
    *,
    horizon: int = 48,
    seed: int = 0,
    tenants: int = 1,
    solver: Optional[str] = None,
    rate_scale: float = 1.0,
    check_every: int = 8,
    sample: int = 256,
    trace_params: Optional[Dict[str, dict]] = None,
    service=None,
) -> ReplayResult:
    """Replay ``trace`` over ``instance`` for ``horizon`` ticks.

    Parameters
    ----------
    instance:
        The base instance; its demands are the trace's base rates.
    trace:
        Trace spec, ``+``-composable (see :data:`repro.replay.TRACES`).
    horizon:
        Number of unit-time ticks.
    seed:
        Master seed: trace draw, tenant catalogues, client/invariant
        sampling all derive from it deterministically.
    tenants:
        ``1`` → engine mode; ``> 1`` → per-tenant service mode.
    solver:
        Forwarded to the engine / service (``None`` auto-selects).
    rate_scale:
        Global multiplier on base demand (must be positive).
    check_every:
        Run sampled invariants every this many ticks (``0`` disables).
    sample:
        Client-sample size for latency and invariant checks.
    trace_params:
        Optional per-component overrides, e.g.
        ``{"flash": {"magnitude": 12.0}}``.
    service:
        Service mode only: an existing
        :class:`~repro.service.PlacementService` to solve through (a
        fresh private one is created otherwise).

    Raises
    ------
    ValueError
        For an unknown trace name, non-positive horizon/tenants/
        rate_scale — the CLI's validation surface.
    InfeasibleInstanceError
        When the *initial* snapshot admits no placement (engine mode).
    """
    if rate_scale <= 0:
        raise ValueError(f"rate_scale must be positive, got {rate_scale}")
    if tenants <= 0:
        raise ValueError(f"tenants must be positive, got {tenants}")
    if check_every < 0:
        raise ValueError(f"check_every must be non-negative, got {check_every}")
    if sample <= 0:
        raise ValueError(f"sample must be positive, got {sample}")
    tree = instance.tree
    clients = list(tree.clients)
    demand_trace: DemandTrace = make_trace(
        trace,
        n_clients=len(clients),
        horizon=horizon,
        seed=seed,
        params=trace_params,
    )
    from ..service.fingerprint import instance_fingerprint

    result = ReplayResult(
        instance_name=instance.name or "instance",
        instance_fp=instance_fingerprint(instance),
        n_nodes=len(tree),
        n_clients=len(clients),
        trace=demand_trace.spec,
        horizon=horizon,
        seed=seed,
        tenants=tenants,
        solver=solver or "auto",
        rate_scale=rate_scale,
        mode="engine" if tenants == 1 else "service",
    )
    sample_clients = _client_sample(clients, sample, seed)
    if tenants == 1:
        _replay_engine(
            instance, clients, demand_trace, result,
            solver=solver, rate_scale=rate_scale,
            check_every=check_every, sample=sample,
            sample_clients=sample_clients, seed=seed,
        )
    else:
        _replay_service(
            instance, demand_trace, result,
            solver=solver, rate_scale=rate_scale, tenants=tenants,
            check_every=check_every, sample=sample,
            sample_clients=sample_clients, seed=seed, service=service,
        )
    return result


def _replay_engine(
    instance: ProblemInstance,
    clients: List[int],
    demand_trace: DemandTrace,
    result: ReplayResult,
    *,
    solver: Optional[str],
    rate_scale: float,
    check_every: int,
    sample: int,
    sample_clients: List[int],
    seed: int,
) -> None:
    from ..dynamic import DemandEvent, DynamicPlacement

    base = np.array(
        [instance.tree.requests(c) for c in clients], dtype=np.int64
    )
    levels = demand_trace.levels(
        base, capacity=instance.capacity, scale=rate_scale
    )
    # Tick 0's levels become the engine's *initial* snapshot, so the
    # whole run — including the first placement — reflects the trace.
    first = _with_levels(instance, clients, levels[0])
    engine = DynamicPlacement(first, solver=solver)
    current = levels[0].copy()
    for t in range(demand_trace.horizon):
        changed = np.nonzero(levels[t] != current)[0]
        if t == 0 or len(changed) == 0:
            placement = engine.placement
            result.rows.append(TickRow(
                tick=t,
                tenant=0,
                demand_total=int(levels[t].sum()),
                n_changes=0,
                ok=placement is not None,
                mode="steady",
                cost=placement.n_replicas if placement is not None else None,
                latency_mean=_mean_latency(
                    engine.instance, placement, sample_clients
                ),
                repair_ms=0.0,
            ))
        else:
            batch = [
                DemandEvent(clients[int(i)], int(levels[t, i]))
                for i in changed
            ]
            outcome = engine.apply(batch)
            current[changed] = levels[t, changed]
            result.rows.append(TickRow(
                tick=t,
                tenant=0,
                demand_total=int(levels[t].sum()),
                n_changes=len(batch),
                ok=outcome.ok,
                mode=outcome.mode,
                cost=outcome.cost,
                latency_mean=_mean_latency(
                    engine.instance, outcome.placement, sample_clients
                ),
                repair_ms=outcome.repair_s * 1e3,
            ))
        if check_every and t % check_every == 0 and engine.placement is not None:
            result.checks_run += 1
            result.violations.extend(sampled_violations(
                engine.instance,
                engine.placement,
                seed=seed + t,
                max_clients=sample,
                cell=f"tick {t}",
                solver=engine.solver_name,
            ))
    result.repair_failures = engine.stats().repair_failures


def _replay_service(
    instance: ProblemInstance,
    demand_trace: DemandTrace,
    result: ReplayResult,
    *,
    solver: Optional[str],
    rate_scale: float,
    tenants: int,
    check_every: int,
    sample: int,
    sample_clients: List[int],
    seed: int,
    service,
) -> None:
    from ..service import PlacementService
    from .tenants import tenant_instances

    own_service = service is None
    svc = PlacementService(cache_size=4 * tenants * demand_trace.horizon) \
        if own_service else service
    try:
        catalogues = tenant_instances(instance, tenants, seed=seed)
        clients = list(instance.tree.clients)
        bases = [
            np.array(
                [cat.tree.requests(c) for c in clients], dtype=np.int64
            )
            for cat in catalogues
        ]
        level_matrices = [
            demand_trace.levels(
                bases[k], capacity=cat.capacity, scale=rate_scale
            )
            for k, cat in enumerate(catalogues)
        ]
        for t in range(demand_trace.horizon):
            for k, cat in enumerate(catalogues):
                lv = level_matrices[k][t]
                inst_t = _with_levels(cat, clients, lv)
                resp = svc.solve_instance(
                    inst_t, solver, tenant=f"tenant-{k}"
                )
                hit = bool(resp.diagnostics.cache_hit)
                result.cache_hits += int(hit)
                result.cache_misses += int(not hit)
                result.rows.append(TickRow(
                    tick=t,
                    tenant=k,
                    demand_total=int(lv.sum()),
                    n_changes=0,
                    ok=resp.ok,
                    mode=f"service:{resp.status}",
                    cost=resp.n_replicas,
                    latency_mean=_mean_latency(
                        inst_t, resp.placement, sample_clients
                    ),
                    repair_ms=resp.diagnostics.service_ms,
                    cache_hit=hit,
                ))
                if (
                    check_every
                    and t % check_every == 0
                    and resp.placement is not None
                ):
                    result.checks_run += 1
                    result.violations.extend(sampled_violations(
                        inst_t,
                        resp.placement,
                        seed=seed + t,
                        max_clients=sample,
                        cell=f"tick {t} tenant {k}",
                        solver=resp.solver or "-",
                    ))
    finally:
        if own_service:
            svc.close()


def _with_levels(
    instance: ProblemInstance, clients: List[int], levels: np.ndarray
) -> ProblemInstance:
    """``instance`` with client demands replaced by ``levels``."""
    tree = instance.tree
    requests = [0] * len(tree)
    for c, lvl in zip(clients, levels):
        requests[c] = int(lvl)
    return ProblemInstance(
        tree.with_requests(requests),
        instance.capacity,
        instance.dmax,
        instance.policy,
        instance.name,
    )
