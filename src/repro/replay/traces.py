"""Demand-trace generators: time-varying modulation of base demand.

The paper's model is stationary; production traffic is not.  A *demand
trace* turns a static instance into a time series by modulating every
client's base rate ``r_i`` with a per-client, per-tick multiplier
``m_i(t)``: the realized level at tick ``t`` is
``min(W, round(r_i · scale · m_i(t)))``.

The catalogue (:data:`TRACES`) holds the shapes that made trace-driven
replay meaningful in industrial reproductions:

* ``stationary`` — ``m ≡ 1``; the paper's own model, the control.
* ``diurnal`` — a daily sine with a per-client phase offset (clients
  are geographically spread, so their peaks are not aligned).
* ``flash`` — flash crowds: a few seeded spike events, each picking a
  hotspot subset of clients whose demand ramps up and decays again.
* ``zipf`` — a Zipf popularity mixture: at any tick a small head of
  clients carries most of the traffic, and the head *drifts* over time
  (rotating the popularity ranking), the way content hotness migrates.

Traces compose with ``+`` in the spec name — ``"diurnal+flash"``
multiplies the component modulations elementwise.  Everything is
deterministic per ``(spec, n_clients, horizon, seed)``: each component
draws from ``default_rng([seed, k])`` where ``k`` is its position in
the composition, so reordering components changes the trace but
re-running never does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

__all__ = ["TRACES", "DemandTrace", "make_trace", "trace_names"]


@dataclass(frozen=True)
class DemandTrace:
    """A realized modulation matrix: ``m[t, i]`` ≥ 0, mean ≈ 1 per tick.

    ``modulation`` has shape ``(horizon, n_clients)``; ``levels`` maps
    a base-demand vector to the integer per-tick levels.
    """

    spec: str
    seed: int
    modulation: np.ndarray = field(repr=False)

    @property
    def horizon(self) -> int:
        return int(self.modulation.shape[0])

    @property
    def n_clients(self) -> int:
        return int(self.modulation.shape[1])

    def levels(
        self, base: np.ndarray, *, capacity: int, scale: float = 1.0
    ) -> np.ndarray:
        """Integer demand levels, shape ``(horizon, n_clients)``.

        ``min(W, round(base · scale · m))`` — the capacity cap keeps
        Single-policy instances feasible per the model's ``r_i ≤ W``
        precondition (same convention as ``random_event_trace``).
        """
        raw = np.rint(base[None, :] * scale * self.modulation)
        return np.clip(raw, 0, capacity).astype(np.int64)


def _stationary(
    rng: np.random.Generator, n: int, T: int
) -> np.ndarray:
    return np.ones((T, n))


def _diurnal(
    rng: np.random.Generator,
    n: int,
    T: int,
    *,
    period: int = 24,
    amplitude: float = 0.6,
) -> np.ndarray:
    """Daily sine, per-client phase: ``1 + a·sin(2πt/period + φ_i)``."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"diurnal amplitude must be in [0, 1], got {amplitude}")
    if period <= 0:
        raise ValueError(f"diurnal period must be positive, got {period}")
    phase = rng.uniform(0.0, 2.0 * np.pi, size=n)
    t = np.arange(T)[:, None]
    return 1.0 + amplitude * np.sin(2.0 * np.pi * t / period + phase[None, :])


def _flash(
    rng: np.random.Generator,
    n: int,
    T: int,
    *,
    n_events: int = 2,
    hot_fraction: float = 0.05,
    magnitude: float = 8.0,
    ramp: int = 2,
) -> np.ndarray:
    """Flash crowds: spikes hitting a random hotspot subset, with decay.

    Each event picks a tick, a hotspot of ``hot_fraction·n`` clients and
    ramps their multiplier from 1 up to ``magnitude`` and back down over
    ``ramp`` ticks on each side.  Off-hotspot clients are untouched.
    """
    if n_events < 0:
        raise ValueError(f"flash n_events must be non-negative, got {n_events}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(
            f"flash hot_fraction must be in (0, 1], got {hot_fraction}"
        )
    if magnitude < 1.0:
        raise ValueError(f"flash magnitude must be >= 1, got {magnitude}")
    if ramp < 1:
        raise ValueError(f"flash ramp must be >= 1, got {ramp}")
    m = np.ones((T, n))
    hot_size = max(1, int(round(hot_fraction * n)))
    for _ in range(n_events):
        peak = int(rng.integers(0, T))
        hot = rng.choice(n, size=hot_size, replace=False)
        for t in range(max(0, peak - ramp), min(T, peak + ramp + 1)):
            # Linear ramp to the peak and back: 1 at distance `ramp`,
            # `magnitude` at the peak tick itself.
            frac = 1.0 - abs(t - peak) / ramp if ramp else 1.0
            frac = max(0.0, frac)
            boost = 1.0 + (magnitude - 1.0) * frac
            m[t, hot] = np.maximum(m[t, hot], boost)
    return m


def _zipf(
    rng: np.random.Generator,
    n: int,
    T: int,
    *,
    exponent: float = 1.1,
    drift_every: int = 8,
) -> np.ndarray:
    """Zipf popularity mixture with a drifting hot set.

    Clients get Zipf weights ``rank^-s`` under a random ranking that is
    re-drawn every ``drift_every`` ticks; weights are normalized to mean
    1 so total traffic volume stays comparable to the base instance.
    """
    if exponent <= 0:
        raise ValueError(f"zipf exponent must be positive, got {exponent}")
    if drift_every <= 0:
        raise ValueError(f"zipf drift_every must be positive, got {drift_every}")
    weights = np.arange(1, n + 1, dtype=float) ** (-exponent)
    weights *= n / weights.sum()  # mean 1
    m = np.empty((T, n))
    perm = rng.permutation(n)
    for t in range(T):
        if t and t % drift_every == 0:
            perm = rng.permutation(n)
        m[t] = weights[perm]
    return m


#: Trace name -> component generator ``(rng, n_clients, horizon, **params)``.
TRACES: Dict[str, Callable[..., np.ndarray]] = {
    "stationary": _stationary,
    "diurnal": _diurnal,
    "flash": _flash,
    "zipf": _zipf,
}


def trace_names() -> List[str]:
    """Registered trace names, sorted (composable with ``+``)."""
    return sorted(TRACES)


def make_trace(
    spec: str,
    *,
    n_clients: int,
    horizon: int,
    seed: int = 0,
    params: Dict[str, dict] = None,
) -> DemandTrace:
    """Build the modulation matrix for ``spec`` (e.g. ``"diurnal+flash"``).

    ``params`` optionally overrides per-component knobs by trace name,
    e.g. ``{"flash": {"magnitude": 12.0}}``.  Raises ``ValueError`` for
    an unknown or empty component name — the CLI maps that to its usual
    one-line rc-2 error.
    """
    if n_clients <= 0:
        raise ValueError(f"n_clients must be positive, got {n_clients}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    names = [p.strip() for p in str(spec).split("+")]
    if not names or any(not p for p in names):
        raise ValueError(f"malformed trace spec {spec!r}")
    for name in names:
        if name not in TRACES:
            known = ", ".join(trace_names())
            raise ValueError(
                f"unknown trace {name!r}; known traces: {known} "
                "(compose with '+')"
            )
    params = params or {}
    m = np.ones((horizon, n_clients))
    for k, name in enumerate(names):
        rng = np.random.default_rng([seed, k])
        m *= TRACES[name](rng, n_clients, horizon, **params.get(name, {}))
    return DemandTrace(spec="+".join(names), seed=seed, modulation=m)
