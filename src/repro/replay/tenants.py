"""Multi-tenant instances: independent catalogues sharing one tree.

A CDN-style deployment places many *object catalogues* (tenants) over
the same physical topology; each tenant has its own demand vector and
its own placement, solved and cached independently.  This module derives
tenant instances from a base instance:

* tenant ``0`` **is** the base instance — its demands untouched;
* tenant ``k > 0`` gets a seeded transformation of the base demands:
  a permutation of the demand levels across clients (total volume is
  preserved, its *distribution* is tenant-specific) plus a per-tenant
  scale factor, capped at ``W`` so the model's ``r_i ≤ W`` precondition
  survives.

Deterministic per ``(seed, tenant)`` via ``default_rng([seed, tenant])``
seed sequences — the same property the replay fingerprint and the
per-tenant service cache keys rely on.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.instance import ProblemInstance

__all__ = ["tenant_instance", "tenant_instances"]


def tenant_instance(
    base: ProblemInstance, tenant: int, *, seed: int = 0
) -> ProblemInstance:
    """The instance tenant ``tenant`` sees over ``base``'s tree."""
    if tenant < 0:
        raise ValueError(f"tenant must be non-negative, got {tenant}")
    if tenant == 0:
        return base
    tree = base.tree
    rng = np.random.default_rng([seed, tenant])
    clients = list(tree.clients)
    levels = np.array([tree.requests(c) for c in clients], dtype=np.int64)
    levels = levels[rng.permutation(len(levels))]
    scale = float(rng.uniform(0.5, 1.5))
    levels = np.clip(
        np.rint(levels * scale), 0, base.capacity
    ).astype(np.int64)
    requests = [0] * len(tree)
    for c, lvl in zip(clients, levels):
        requests[c] = int(lvl)
    return ProblemInstance(
        tree.with_requests(requests),
        base.capacity,
        base.dmax,
        base.policy,
        name=f"{base.name or 'instance'}#tenant{tenant}",
    )


def tenant_instances(
    base: ProblemInstance, n_tenants: int, *, seed: int = 0
) -> List[ProblemInstance]:
    """Tenants ``0..n_tenants-1`` (tenant 0 is ``base`` itself)."""
    if n_tenants <= 0:
        raise ValueError(f"n_tenants must be positive, got {n_tenants}")
    return [tenant_instance(base, k, seed=seed) for k in range(n_tenants)]
