"""Theorem 1 reduction: 3-Partition → Single-NoD-Bin (instance *I2*).

Given a 3-Partition instance (``3m`` integers ``a_i`` with
``B/4 < a_i < B/2`` and ``Σ a_i = mB``), instance *I2* is a binary
caterpillar: spine nodes ``v_1 .. v_{3m-1}`` (``v_1`` the root), client
``c_k`` with ``a_k`` requests hanging from ``v_k`` (and ``c_{3m}`` from
``v_{3m-1}``).  With capacity ``W = B``, a placement with ``K = m``
replicas exists iff the 3-Partition instance is a *yes*-instance:

* *yes* → sort the triples by smallest client index; the ``k``-th triple
  is served by a replica on spine node ``v_k`` (whose subtree contains
  all clients of index ≥ k, and the k-th smallest triple-minimum is
  ≥ k);
* ``m`` replicas ⟹ every replica serves exactly ``B`` requests, and
  ``B/4 < a_i < B/2`` forces exactly three clients per replica — a
  3-Partition.

The HAL scan does not include the picture of Fig. 1; this caterpillar is
the canonical binary realisation consistent with every constraint the
proof uses (binary arity, no distances, any triple groupable at a common
ancestor).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = [
    "build_i2",
    "i2_target_replicas",
    "placement_from_three_partition",
    "validate_three_partition_input",
]


def validate_three_partition_input(a: Sequence[int], B: int) -> None:
    """Check the 3-Partition promise ``B/4 < a_i < B/2``, ``Σ = mB``."""
    if len(a) % 3 != 0:
        raise ValueError("3-Partition needs a multiple of 3 integers")
    m = len(a) // 3
    if sum(a) != m * B:
        raise ValueError(f"sum(a) = {sum(a)} must equal m*B = {m * B}")
    for i, x in enumerate(a):
        if not B / 4 < x < B / 2:
            raise ValueError(
                f"a[{i}] = {x} violates the 3-Partition promise "
                f"B/4 < a_i < B/2 (B = {B})"
            )


def build_i2(
    a: Sequence[int], B: int
) -> Tuple[ProblemInstance, List[int]]:
    """Build instance *I2* for the 3-Partition input ``(a, B)``.

    Returns ``(instance, clients)`` where ``clients[k]`` is the tree node
    holding ``a[k]`` requests.  The instance is Single-NoD-Bin with
    ``W = B``.
    """
    validate_three_partition_input(a, B)
    n3m = len(a)
    b = TreeBuilder()
    spine = b.add_root()
    clients: List[int] = []
    for k in range(n3m):
        clients.append(b.add(spine, delta=1.0, requests=int(a[k])))
        if k < n3m - 2:
            spine = b.add(spine, delta=1.0)
    tree = b.build()
    inst = ProblemInstance(
        tree, int(B), None, Policy.SINGLE, name=f"I2(m={n3m // 3},B={B})"
    )
    return inst, clients


def i2_target_replicas(a: Sequence[int]) -> int:
    """The decision threshold ``K = m`` of the reduction."""
    return len(a) // 3


def placement_from_three_partition(
    instance: ProblemInstance,
    clients: List[int],
    triples: Sequence[Tuple[int, int, int]],
) -> Placement:
    """Map a 3-Partition solution to an ``m``-replica placement of *I2*.

    ``triples`` contains index triples into ``a``.  The k-th triple
    (sorted by smallest index) is assigned to the k-th spine node, which
    is an ancestor of all its clients.
    """
    tree = instance.tree
    ordered = sorted(tuple(sorted(t)) for t in triples)
    # Spine nodes in root-to-leaf order are the internal nodes sorted by
    # depth (the caterpillar has a single internal path).
    spine = sorted(tree.internal_nodes, key=tree.depth)
    replicas = []
    assignments = {}
    for k, triple in enumerate(ordered):
        server = spine[k]
        replicas.append(server)
        for idx in triple:
            assignments[(clients[idx], server)] = tree.requests(clients[idx])
    return Placement(replicas, assignments)
