"""Exact solvers for the partition problems used in the reductions.

The paper's hardness proofs reduce from three classics (Garey & Johnson):

* **2-Partition** (Theorem 2): split integers into two halves of equal
  sum — pseudo-polynomial DP over reachable sums (bitset).
* **2-Partition-Equal** (Theorem 5): additionally both halves must have
  the same cardinality — DP over (cardinality, sum) layers.
* **3-Partition** (Theorem 1): split ``3m`` integers with
  ``B/4 < a_i < B/2`` into ``m`` triples of sum ``B`` — strongly NP-hard;
  solved by backtracking anchored at the smallest unused element.

These solvers let the benchmark harness construct *yes* and *no*
instances with certified answers, and map partition solutions through
the reductions into replica placements (and back).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["solve_two_partition", "solve_two_partition_equal", "solve_three_partition"]


def solve_two_partition(a: Sequence[int]) -> Optional[List[int]]:
    """Indices ``I`` with ``Σ_{i∈I} a_i = Σ_{i∉I} a_i``, or ``None``.

    Bitset subset-sum DP, ``O(n · S)`` bit-operations with tiny
    constants (Python big-int shifts).
    """
    a = list(a)
    if any(x < 0 for x in a):
        raise ValueError("2-Partition requires non-negative integers")
    S = sum(a)
    if S % 2 != 0:
        return None
    target = S // 2
    reach = 1  # bit k set <=> sum k reachable
    layers = [reach]
    for x in a:
        reach |= reach << x
        layers.append(reach)
    if not (reach >> target) & 1:
        return None
    # Backtrack through the per-item layers.
    chosen: List[int] = []
    t = target
    for i in range(len(a) - 1, -1, -1):
        # If t was reachable without item i, skip it; else take it.
        if (layers[i] >> t) & 1:
            continue
        chosen.append(i)
        t -= a[i]
    chosen.reverse()
    return chosen


def solve_two_partition_equal(a: Sequence[int]) -> Optional[List[int]]:
    """Indices ``I`` with ``|I| = n/2`` and equal sums, or ``None``.

    Requires an even number of items.  DP layered by cardinality:
    ``dp[k]`` is the bitset of sums achievable with exactly ``k`` items.
    """
    a = list(a)
    n = len(a)
    if n % 2 != 0:
        raise ValueError("2-Partition-Equal requires an even item count")
    if any(x < 0 for x in a):
        raise ValueError("2-Partition-Equal requires non-negative integers")
    S = sum(a)
    if S % 2 != 0:
        return None
    target, m = S // 2, n // 2

    dp = [0] * (m + 1)
    dp[0] = 1
    history: List[List[int]] = [list(dp)]
    for x in a:
        for k in range(m, 0, -1):
            dp[k] |= dp[k - 1] << x
        history.append(list(dp))
    if not (dp[m] >> target) & 1:
        return None
    # Backtrack: walk items in reverse, preferring to skip.
    chosen: List[int] = []
    t, k = target, m
    for i in range(n - 1, -1, -1):
        if (history[i][k] >> t) & 1:
            continue
        chosen.append(i)
        t -= a[i]
        k -= 1
    chosen.reverse()
    return chosen


def solve_three_partition(
    a: Sequence[int], B: Optional[int] = None
) -> Optional[List[Tuple[int, int, int]]]:
    """Partition into triples of equal sum ``B``, or ``None``.

    ``B`` defaults to ``3·sum(a)/len(a)/3 = sum(a)/m``.  Backtracking:
    the smallest-index unused element anchors the next triple, the two
    partners are searched among larger indices — this canonical ordering
    avoids revisiting permutations of the same triple set.  Exponential
    in the worst case (the problem is strongly NP-hard); fine for the
    reduction-scale instances (``m ≤ 6``).
    """
    a = list(a)
    n = len(a)
    if n % 3 != 0:
        raise ValueError("3-Partition requires a multiple of 3 items")
    if any(x <= 0 for x in a):
        raise ValueError("3-Partition requires positive integers")
    m = n // 3
    total = sum(a)
    if B is None:
        if total % m != 0:
            return None
        B = total // m
    elif total != m * B:
        return None

    used = [False] * n
    triples: List[Tuple[int, int, int]] = []

    def backtrack() -> bool:
        try:
            anchor = used.index(False)
        except ValueError:
            return True
        used[anchor] = True
        rem = B - a[anchor]
        for j in range(anchor + 1, n):
            if used[j] or a[j] >= rem:
                continue
            used[j] = True
            need = rem - a[j]
            for k in range(j + 1, n):
                if used[k] or a[k] != need:
                    continue
                used[k] = True
                triples.append((anchor, j, k))
                if backtrack():
                    return True
                triples.pop()
                used[k] = False
            used[j] = False
        # Also allow a_j == rem with a third zero-element? Elements are
        # positive in 3-Partition, so a triple always has 3 items.
        used[anchor] = False
        return False

    return triples if backtrack() else None
