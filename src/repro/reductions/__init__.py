"""Hardness-proof reductions (Theorems 1, 2, 5) and partition solvers."""

from .partition_equal import (
    I6Layout,
    build_i6,
    i6_decision,
    i6_target_replicas,
    placement_from_partition_equal,
)
from .partition_solvers import (
    solve_three_partition,
    solve_two_partition,
    solve_two_partition_equal,
)
from .three_partition import (
    build_i2,
    i2_target_replicas,
    placement_from_three_partition,
    validate_three_partition_input,
)
from .two_partition import build_i4, i4_gap_decision, placement_from_two_partition

__all__ = [
    "solve_two_partition",
    "solve_two_partition_equal",
    "solve_three_partition",
    "build_i2",
    "i2_target_replicas",
    "placement_from_three_partition",
    "validate_three_partition_input",
    "build_i4",
    "i4_gap_decision",
    "placement_from_two_partition",
    "build_i6",
    "i6_decision",
    "i6_target_replicas",
    "placement_from_partition_equal",
    "I6Layout",
]
