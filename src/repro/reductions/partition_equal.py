"""Theorem 5 reduction: 2-Partition-Equal → Multiple-Bin (instance *I6*).

This is the construction showing that **Multiple-Bin is NP-hard when a
client may exceed the server capacity** (here a client demands
``(2m+1)·W``), complementing Theorem 6's polynomial algorithm for
``r_i ≤ W``.

Given ``2m`` positive integers ``a_1 .. a_{2m}`` with ``S = Σ a_i``, let
``W = S/2 + 1``, ``b_i = S/2 − 2·a_i`` and ``dmax = 3m``.  The tree has
``5m − 1`` internal nodes and ``5m`` clients (Fig. 5, fully specified in
the text):

* spine ``n_{2m+1} … n_{5m-1}`` (root ``n_{5m-1}``), distance-1 edges;
* for ``1 ≤ j ≤ 2m``: ``n_j`` hangs from ``n_{2m+j}``, with two clients
  — ``a_j`` requests at distance ``j + (m−2)`` and ``b_j`` requests at
  distance 1;
* for ``4m+1 ≤ j ≤ 5m−1``: one client with 1 request at distance
  ``dmax`` (it can only be served by its parent);
* ``n_{2m+1}``: one client with ``(2m+1)·W`` requests at distance
  ``m+1`` — it saturates the ``2m+1`` replicas ``n_{2m+1} … n_{4m}``
  plus itself.

A placement with ``4m`` replicas exists iff the 2-Partition-Equal
instance is a *yes*-instance.

Validity domain: ``m ≥ 2``, ``S`` even, and ``b_i ≥ 0`` (i.e. every
``a_i ≤ S/4``) — the reduction's arithmetic needs non-negative ``b_i``;
2-Partition-Equal restricted to such inputs stays NP-hard (add a large
constant ``M`` to every ``a_i``: equal-cardinality partitions are
preserved and the ratio ``a_i/S → 1/(2m)``).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.feasibility import multiple_assignment
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = [
    "I6Layout",
    "build_i6",
    "i6_target_replicas",
    "placement_from_partition_equal",
    "i6_decision",
]


class I6Layout:
    """Node-id bookkeeping for instance *I6*.

    Attributes map the paper's names to tree node ids:
    ``n[j]`` for ``1 ≤ j ≤ 5m-1``; ``client_a[j]``, ``client_b[j]`` for
    ``1 ≤ j ≤ 2m``; ``client_one[j]`` for ``4m+1 ≤ j ≤ 5m-1``;
    ``client_big``.
    """

    def __init__(self, m: int) -> None:
        self.m = m
        self.n: Dict[int, int] = {}
        self.client_a: Dict[int, int] = {}
        self.client_b: Dict[int, int] = {}
        self.client_one: Dict[int, int] = {}
        self.client_big: int = -1


def build_i6(a: Sequence[int]) -> Tuple[ProblemInstance, I6Layout]:
    """Build instance *I6* for the 2-Partition-Equal input ``a``."""
    a = [int(x) for x in a]
    if len(a) % 2 != 0 or len(a) < 4:
        raise ValueError("need an even number (>= 4) of integers")
    m = len(a) // 2
    if any(x <= 0 for x in a):
        raise ValueError("2-Partition-Equal requires positive integers")
    S = sum(a)
    if S % 2 != 0:
        raise ValueError("odd total: the answer is trivially no")
    W = S // 2 + 1
    b_vals = [S // 2 - 2 * x for x in a]
    if any(x < 0 for x in b_vals):
        raise ValueError(
            "some a_i > S/4 makes b_i negative; rescale the input "
            "(add a constant to every a_i) before reducing"
        )
    dmax = 3.0 * m

    lay = I6Layout(m)
    b = TreeBuilder()
    root = b.add_root()  # n_{5m-1}
    lay.n[5 * m - 1] = root
    # Spine n_{5m-2} ... n_{2m+1}, top-down.
    for j in range(5 * m - 2, 2 * m, -1):
        lay.n[j] = b.add(lay.n[j + 1], delta=1.0)
    # n_1..n_2m hang from n_{2m+j}.
    for j in range(1, 2 * m + 1):
        lay.n[j] = b.add(lay.n[2 * m + j], delta=1.0)
        lay.client_a[j] = b.add(
            lay.n[j], delta=float(j + m - 2), requests=a[j - 1]
        )
        lay.client_b[j] = b.add(lay.n[j], delta=1.0, requests=b_vals[j - 1])
    # 1-request clients pinned to n_{4m+1} .. n_{5m-1}.
    for j in range(4 * m + 1, 5 * m):
        lay.client_one[j] = b.add(lay.n[j], delta=dmax, requests=1)
    # The oversized client of n_{2m+1}.
    lay.client_big = b.add(
        lay.n[2 * m + 1], delta=float(m + 1), requests=(2 * m + 1) * W
    )

    tree = b.build()
    inst = ProblemInstance(
        tree, W, dmax, Policy.MULTIPLE, name=f"I6(m={m})"
    )
    return inst, lay


def i6_target_replicas(m: int) -> int:
    """The decision threshold ``K = 4m`` of the reduction."""
    return 4 * m


def placement_from_partition_equal(
    instance: ProblemInstance,
    lay: I6Layout,
    subset: Sequence[int],
) -> Placement:
    """Map a 2-Partition-Equal solution to the 4m-replica placement.

    ``subset`` holds 0-based indices into ``a`` with ``|subset| = m`` and
    ``Σ_{i∈subset} a_i = S/2``.  Follows the paper's *yes*-direction
    assignment verbatim; every constraint is re-checked downstream by the
    independent validator in the tests.
    """
    m = lay.m
    tree = instance.tree
    W = instance.capacity
    inside = {i + 1 for i in subset}  # paper indexes 1..2m

    replicas: List[int] = []
    assign: Dict[Tuple[int, int], int] = {}

    # n_i for i in I serve both their clients.
    for j in sorted(inside):
        replicas.append(lay.n[j])
        if tree.requests(lay.client_a[j]) > 0:
            assign[(lay.client_a[j], lay.n[j])] = tree.requests(lay.client_a[j])
        if tree.requests(lay.client_b[j]) > 0:
            assign[(lay.client_b[j], lay.n[j])] = tree.requests(lay.client_b[j])

    # n_{2m+1} .. n_{4m} and the big client itself absorb (2m+1)·W.
    big = lay.client_big
    replicas.append(big)
    assign[(big, big)] = W
    for j in range(2 * m + 1, 4 * m + 1):
        replicas.append(lay.n[j])
        assign[(big, lay.n[j])] = W

    # Top spine nodes n_{4m+1} .. n_{5m-1}: their own pinned client, the
    # a_i (i∉I) on n_{4m+1}, the b_i spread over the remaining capacity.
    outside = [j for j in range(1, 2 * m + 1) if j not in inside]
    top = list(range(4 * m + 1, 5 * m))
    for j in top:
        replicas.append(lay.n[j])
        assign[(lay.client_one[j], lay.n[j])] = 1
    first = 4 * m + 1
    for j in outside:
        if tree.requests(lay.client_a[j]) > 0:
            assign[(lay.client_a[j], lay.n[first])] = tree.requests(
                lay.client_a[j]
            )
    # Distribute the b_i (i∉I) greedily over n_{4m+2} .. n_{5m-1}
    # (capacity W-1 each after their pinned client).
    free = {j: W - 1 for j in top[1:]}
    for j in outside:
        remaining = tree.requests(lay.client_b[j])
        for k in top[1:]:
            if remaining == 0:
                break
            take = min(remaining, free[k])
            if take > 0:
                assign[(lay.client_b[j], lay.n[k])] = (
                    assign.get((lay.client_b[j], lay.n[k]), 0) + take
                )
                free[k] -= take
                remaining -= take
        if remaining != 0:
            raise ValueError(
                "subset is not a valid 2-Partition-Equal solution: "
                "the b_i overflow the top spine capacity"
            )

    return Placement(replicas, assign)


def i6_decision(
    instance: ProblemInstance, lay: I6Layout
) -> Tuple[bool, Optional[List[int]]]:
    """Decide whether *I6* admits a ``4m``-replica placement.

    Uses the forced-structure argument of the proof: any 4m-replica
    solution must open ``n_{4m+1}..n_{5m-1}`` (pinned 1-request
    clients), ``n_{2m+1}..n_{4m}`` plus the big client (the only nodes
    able to absorb ``(2m+1)·W``), leaving exactly ``m`` replicas to pick
    among ``n_1 .. n_{2m}``.  Each of the ``C(2m, m)`` choices is tested
    with the max-flow feasibility oracle.

    Returns ``(feasible, subset)`` with the 0-based witness subset on
    success.
    """
    m = lay.m
    forced = (
        [lay.n[j] for j in range(2 * m + 1, 5 * m)]
        + [lay.client_big]
    )
    for chosen in combinations(range(1, 2 * m + 1), m):
        replicas = forced + [lay.n[j] for j in chosen]
        if multiple_assignment(instance, replicas) is not None:
            return True, [j - 1 for j in chosen]
    return False, None
