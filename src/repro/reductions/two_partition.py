"""Theorem 2 reduction: 2-Partition → Single-NoD-Bin (instance *I4*).

Given integers ``a_1 .. a_m`` with ``S = Σ a_i``, instance *I4* has the
root ``r``, a child ``n_1``, and a binary caterpillar below ``n_1``
carrying all ``m`` clients, with ``W = S/2`` (integer division; odd ``S``
instances are trivially *no*).  Every client has both ``r`` and ``n_1``
as ancestors, so:

* a 2-Partition ``I`` yields a 2-replica placement — clients of ``I`` on
  ``n_1``, the rest on ``r``;
* a 2-replica placement splits ``S`` into two loads ≤ ``S/2`` each,
  hence exactly ``S/2``: a 2-Partition.

The inapproximability argument (Theorem 2): any (3/2 − ε)-approximation
must return exactly 2 replicas on *yes*-instances (it returns
``< (3/2)·2 = 3``), so it would decide 2-Partition in polynomial time.
:func:`i4_gap_decision` packages that argument: feed it the replica
count produced by *any* algorithm claiming ratio < 3/2 and it returns
the induced 2-Partition answer.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = [
    "build_i4",
    "placement_from_two_partition",
    "i4_gap_decision",
]


def build_i4(a: Sequence[int]) -> Tuple[ProblemInstance, List[int]]:
    """Build instance *I4* for the 2-Partition input ``a``.

    Returns ``(instance, clients)`` with ``clients[i]`` holding ``a[i]``
    requests.  Requires ``S`` even (odd sums cannot 2-partition and make
    ``W = S/2`` ill-defined as an integer capacity) and every
    ``a_i ≤ S/2`` (otherwise even the *yes*-direction placement is
    impossible and the 2-Partition answer is trivially *no*).
    """
    a = [int(x) for x in a]
    if len(a) < 2:
        raise ValueError("2-Partition needs at least two integers")
    if any(x <= 0 for x in a):
        raise ValueError("2-Partition requires positive integers")
    S = sum(a)
    if S % 2 != 0:
        raise ValueError(
            "odd total: the 2-Partition answer is trivially no and "
            "W = S/2 is not integral"
        )
    W = S // 2
    if max(a) > W:
        raise ValueError(
            "some a_i exceeds S/2: the answer is trivially no and the "
            "instance admits no Single placement at all"
        )

    b = TreeBuilder()
    b.add_root()  # r = node 0
    n1 = b.add(0, delta=1.0)  # n_1 = node 1
    clients: List[int] = []
    spine = n1
    for k in range(len(a)):
        clients.append(b.add(spine, delta=1.0, requests=a[k]))
        if k < len(a) - 2:
            spine = b.add(spine, delta=1.0)
    tree = b.build()
    inst = ProblemInstance(
        tree, W, None, Policy.SINGLE, name=f"I4(m={len(a)})"
    )
    return inst, clients


def placement_from_two_partition(
    instance: ProblemInstance,
    clients: List[int],
    subset: Sequence[int],
) -> Placement:
    """Map a 2-Partition solution to the 2-replica placement of *I4*.

    ``subset`` holds indices into ``a``; those clients go to ``n_1``
    (node 1), the others to the root ``r`` (node 0).
    """
    tree = instance.tree
    inside = set(subset)
    assignments = {}
    for idx, c in enumerate(clients):
        server = 1 if idx in inside else 0
        assignments[(c, server)] = tree.requests(c)
    return Placement([0, 1], assignments)


def i4_gap_decision(n_replicas: int) -> bool:
    """Theorem 2's gap argument.

    Given the replica count returned on *I4* by an algorithm with
    approximation ratio < 3/2, returns the 2-Partition answer: 2
    replicas ⟺ *yes* (a ratio-<3/2 algorithm returns < 3 whenever the
    optimum is 2, and the optimum is 2 exactly on *yes*-instances).
    """
    return n_replicas == 2
