"""Command-line interface.

Subcommands::

    replica-placement generate --kind random --internal 20 --clients 40 \\
        --capacity 50 --dmax 6 --out inst.json
    replica-placement solve inst.json --algorithm single-gen
    replica-placement check inst.json placement.json
    replica-placement render inst.json [placement.json]
    replica-placement info inst.json

``solve`` writes the placement JSON to stdout (or ``--out``) and prints
a summary to stderr, so pipelines can chain ``solve | check``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from .algorithms import (
    exact_optimal,
    local_placement,
    multiple_bin,
    multiple_greedy,
    single_gen,
    single_greedy_packing,
    single_nod,
    single_push,
)
from .core import Placement, ProblemInstance, lower_bound, placement_violations
from .instances import (
    broom,
    caterpillar,
    dump_instance,
    instance_to_dict,
    load_instance,
    placement_from_dict,
    placement_to_dict,
    random_binary_tree,
    random_tree,
    render_placement_summary,
    render_tree,
    star,
)

__all__ = ["main"]

ALGORITHMS: Dict[str, Callable[[ProblemInstance], Placement]] = {
    "single-gen": single_gen,
    "single-nod": single_nod,
    "single-push": single_push,
    "multiple-bin": multiple_bin,
    "multiple-greedy": multiple_greedy,
    "greedy-packing": single_greedy_packing,
    "local": local_placement,
    "exact": exact_optimal,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind
    common = dict(
        capacity=args.capacity,
        dmax=args.dmax,
        seed=args.seed,
    )
    if kind == "random":
        inst = random_tree(
            args.internal, args.clients, max_arity=args.arity, **common
        )
    elif kind == "binary":
        inst = random_binary_tree(args.internal, args.clients, **common)
    elif kind == "caterpillar":
        inst = caterpillar(args.internal, **common)
    elif kind == "broom":
        inst = broom(args.internal, args.clients, **common)
    elif kind == "star":
        inst = star(args.clients, **common)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(kind)
    if args.out:
        dump_instance(inst, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(instance_to_dict(inst), sys.stdout, indent=2)
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    solver = ALGORITHMS[args.algorithm]
    placement = solver(inst)
    problems = placement_violations(inst, placement)
    data = placement_to_dict(placement)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
    else:
        json.dump(data, sys.stdout, indent=2)
        print()
    print(
        f"{args.algorithm}: {placement.n_replicas} replicas "
        f"(lower bound {lower_bound(inst)}); "
        + ("valid" if not problems else f"INVALID: {problems[0]}"),
        file=sys.stderr,
    )
    return 0 if not problems else 1


def _cmd_check(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    with open(args.placement, "r", encoding="utf-8") as fh:
        placement = placement_from_dict(json.load(fh))
    problems = placement_violations(inst, placement)
    if problems:
        for p in problems:
            print(f"VIOLATION: {p}")
        return 1
    print(
        f"valid placement: {placement.n_replicas} replicas, "
        f"lower bound {lower_bound(inst)}"
    )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    placement = None
    if args.placement:
        with open(args.placement, "r", encoding="utf-8") as fh:
            placement = placement_from_dict(json.load(fh))
    print(render_tree(inst, placement))
    if placement is not None:
        print()
        print(render_placement_summary(inst, placement))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    t = inst.tree
    print(f"variant        : {inst.variant}")
    print(f"nodes          : {len(t)} ({len(t.clients)} clients)")
    print(f"arity          : {t.arity}")
    print(f"capacity W     : {inst.capacity}")
    print(f"dmax           : {inst.dmax}")
    print(f"total demand   : {t.total_requests}")
    print(f"lower bound    : {lower_bound(inst)}")
    reason = inst.trivially_infeasible()
    print(f"feasible       : {'no — ' + reason if reason else 'not excluded'}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simulate import deterministic_trace, poisson_trace, simulate

    inst = load_instance(args.instance)
    with open(args.placement, "r", encoding="utf-8") as fh:
        placement = placement_from_dict(json.load(fh))
    problems = placement_violations(inst, placement)
    if problems:
        print(f"refusing to simulate an invalid placement: {problems[0]}")
        return 1
    horizon = args.horizon
    if args.workload == "deterministic":
        trace = deterministic_trace(inst.tree, horizon)
    else:
        trace = poisson_trace(inst.tree, float(horizon), seed=args.seed)
    res = simulate(inst, placement, trace, horizon)
    print(res.summary())
    for s in sorted(placement.replicas):
        print(
            f"  server {s:>4}: peak {res.peak_load(s):>6} / {inst.capacity}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    lb = lower_bound(inst)
    print(f"{'algorithm':<16} {'replicas':>9} {'valid':>6}   (lower bound {lb})")
    rc = 0
    for name in args.algorithms:
        solver = ALGORITHMS[name]
        try:
            placement = solver(inst)
        except Exception as exc:  # noqa: BLE001 - report per-algorithm
            print(f"{name:<16} {'—':>9} {'n/a':>6}   ({type(exc).__name__}: {exc})")
            continue
        problems = placement_violations(inst, placement)
        if problems:
            rc = 1
        print(
            f"{name:<16} {placement.n_replicas:>9} "
            f"{'yes' if not problems else 'NO':>6}"
        )
    return rc


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import full_report

    text = full_report()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="replica-placement",
        description="Replica placement with distance constraints in trees",
    )
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate an instance")
    g.add_argument(
        "--kind",
        choices=["random", "binary", "caterpillar", "broom", "star"],
        default="random",
    )
    g.add_argument("--internal", type=int, default=20)
    g.add_argument("--clients", type=int, default=40)
    g.add_argument("--capacity", type=int, required=True)
    g.add_argument("--dmax", type=float, default=None)
    g.add_argument("--arity", type=int, default=4)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", default=None)
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser("solve", help="solve an instance")
    s.add_argument("instance")
    s.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="single-gen"
    )
    s.add_argument("--out", default=None)
    s.set_defaults(func=_cmd_solve)

    c = sub.add_parser("check", help="validate a placement")
    c.add_argument("instance")
    c.add_argument("placement")
    c.set_defaults(func=_cmd_check)

    r = sub.add_parser("render", help="ASCII-render an instance")
    r.add_argument("instance")
    r.add_argument("placement", nargs="?", default=None)
    r.set_defaults(func=_cmd_render)

    i = sub.add_parser("info", help="instance statistics")
    i.add_argument("instance")
    i.set_defaults(func=_cmd_info)

    sim = sub.add_parser("simulate", help="replay a request trace")
    sim.add_argument("instance")
    sim.add_argument("placement")
    sim.add_argument(
        "--workload", choices=["deterministic", "poisson"],
        default="deterministic",
    )
    sim.add_argument("--horizon", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.set_defaults(func=_cmd_simulate)

    cmp_ = sub.add_parser("compare", help="run several algorithms")
    cmp_.add_argument("instance")
    cmp_.add_argument(
        "--algorithms", nargs="+", choices=sorted(ALGORITHMS),
        default=["single-gen", "greedy-packing", "local"],
    )
    cmp_.set_defaults(func=_cmd_compare)

    rep = sub.add_parser(
        "report", help="regenerate the paper's headline numbers"
    )
    rep.add_argument("--out", default=None)
    rep.set_defaults(func=_cmd_report)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
