"""Command-line interface.

Subcommands::

    repro generate --kind random --internal 20 --clients 40 \\
        --capacity 50 --dmax 6 --out inst.json
    repro solve inst.json --algorithm auto
    repro check inst.json placement.json
    repro render inst.json [placement.json]
    repro info inst.json
    repro sweep --out sweep.jsonl
    repro compare --store sweep.jsonl
    repro stress --quick
    repro serve --port 8350 --data-dir state/
    repro recover --data-dir state/
    repro cluster --workers 3 --data-root state/
    repro loadtest --url http://127.0.0.1:8360 --requests 200

``solve`` writes the placement JSON to stdout (or ``--out``) and prints
a summary to stderr, so pipelines can chain ``solve | check``.
``sweep`` fans the default instance corpus across the registered
solvers in parallel and persists JSON-lines results; ``compare``
renders a solver-vs-solver table either live on one instance or from a
persisted sweep store.  ``serve`` runs the placement daemon (JSON over
HTTP, see :mod:`repro.service.daemon`).  ``simulate --online`` replays
a randomized change-event trace against the online re-placement engine
(:mod:`repro.dynamic`) and prints the repair-vs-resolve report.
``stress`` runs the differential conformance harness — every
registered solver over the adversarial scenario grid, gated on
solver-independent invariants (:mod:`repro.scenarios`).  ``serve
--data-dir`` makes the daemon durable (WAL + snapshots,
:mod:`repro.storage`); ``recover`` inspects and replays such a data
directory offline without binding a socket.  ``cluster`` shards the
service across N worker daemons behind a consistent-hash router with
health-aware failover (:mod:`repro.cluster`); ``loadtest`` drives a
deterministic seeded request mix at a cluster (or single daemon) and
reports latency percentiles, error rate and per-worker cache-hit
throughput.

Every verb's ``--help`` epilog names the ``docs/`` page covering it;
``repro --version`` reports the installed package version.

The solving verbs — ``solve``, ``check``, ``compare``, ``simulate`` —
are thin shims over :class:`repro.service.PlacementService`, so they
get auto-selection (``--algorithm auto``), result caching and uniform
error reporting for free.  Solvers come exclusively from the registry
in :mod:`repro.runner` — registering a new solver makes it available to
every verb with no CLI change.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import lower_bound
from .core.errors import ReproError
from .runner import registry
from .instances import (
    broom,
    caterpillar,
    dump_instance,
    instance_to_dict,
    load_instance,
    placement_from_dict,
    placement_to_dict,
    random_binary_tree,
    random_tree,
    render_placement_summary,
    render_tree,
    star,
)

__all__ = ["main"]


class _CliError(Exception):
    """A user-input problem with a clean message (exit code 2)."""


def _algorithm_names() -> list:
    """Registered solver names (the registry is the single source)."""
    return [s.name for s in registry.available_solvers()]


def _positive_int(text: str) -> int:
    """Argparse type for budgets: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for rates/scales: a strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for seeds: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _load_instance(path: str):
    """`load_instance` with user-facing error reporting.

    Maps the raw failure modes of a missing or corrupt instance file
    onto :class:`_CliError`, so every verb reports them uniformly on
    stderr with exit code 2 instead of a traceback.
    """
    try:
        return load_instance(path)
    except FileNotFoundError:
        raise _CliError(f"instance file not found: {path}") from None
    except IsADirectoryError:
        raise _CliError(f"instance path is a directory: {path}") from None
    except json.JSONDecodeError as exc:
        raise _CliError(f"corrupt instance file {path}: {exc}") from None
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise _CliError(
            f"invalid instance file {path}: {type(exc).__name__}: {exc}"
        ) from None


def _load_placement(path: str):
    """`placement_from_dict` over a file, with the same error mapping."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return placement_from_dict(json.load(fh))
    except FileNotFoundError:
        raise _CliError(f"placement file not found: {path}") from None
    except IsADirectoryError:
        raise _CliError(f"placement path is a directory: {path}") from None
    except json.JSONDecodeError as exc:
        raise _CliError(f"corrupt placement file {path}: {exc}") from None
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise _CliError(
            f"invalid placement file {path}: {type(exc).__name__}: {exc}"
        ) from None


def _package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("replica-placement-repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _docs(page: str) -> str:
    """Standard epilog pointing a verb at its documentation page."""
    return f"full documentation: docs/{page}.md"


def _service():
    """One :class:`~repro.service.PlacementService` per CLI invocation.

    Imported lazily so non-solving verbs (``generate``, ``render``, …)
    don't pay for the service layer.
    """
    from .service import PlacementService

    return PlacementService()


def _cmd_generate(args: argparse.Namespace) -> int:
    from .core import Policy

    kind = args.kind
    common = dict(
        capacity=args.capacity,
        dmax=args.dmax,
        seed=args.seed,
        policy=Policy(args.policy),
    )
    if kind == "random":
        inst = random_tree(
            args.internal, args.clients, max_arity=args.arity, **common
        )
    elif kind == "binary":
        inst = random_binary_tree(args.internal, args.clients, **common)
    elif kind == "caterpillar":
        inst = caterpillar(args.internal, **common)
    elif kind == "broom":
        inst = broom(args.internal, args.clients, **common)
    elif kind == "star":
        inst = star(args.clients, **common)
    elif kind == "mesh":
        from .instances import isp_mesh

        try:
            inst = isp_mesh(
                args.pops,
                capacity=args.capacity,
                dmax=args.dmax,
                seed=args.seed,
                policy=Policy(args.policy),
            )
        except ValueError as exc:
            raise _CliError(f"generate --kind mesh: {exc}") from None
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(kind)
    if args.out:
        dump_instance(inst, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(instance_to_dict(inst), sys.stdout, indent=2)
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    solver = None if args.algorithm == "auto" else args.algorithm
    resp = _service().solve_instance(inst, solver, budget=args.budget)
    if resp.placement is None:
        msg = resp.error.message if resp.error is not None else resp.status
        print(f"solve failed ({resp.status}): {msg}", file=sys.stderr)
        return 1
    data = placement_to_dict(resp.placement)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
    else:
        json.dump(data, sys.stdout, indent=2)
        print()
    invalid = resp.status == "invalid"
    print(
        f"{resp.solver}: {resp.n_replicas} replicas "
        f"(lower bound {resp.lower_bound}); "
        + ("valid" if not invalid else f"INVALID: {resp.error.message}"),
        file=sys.stderr,
    )
    return 0 if not invalid else 1


def _cmd_check(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    placement = _load_placement(args.placement)
    problems = _service().check(inst, placement)
    if problems:
        for p in problems:
            print(f"VIOLATION: {p}")
        return 1
    print(
        f"valid placement: {placement.n_replicas} replicas, "
        f"lower bound {lower_bound(inst)}"
    )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    placement = None
    if args.placement:
        placement = _load_placement(args.placement)
    print(render_tree(inst, placement))
    if placement is not None:
        print()
        print(render_placement_summary(inst, placement))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    t = inst.tree
    print(f"variant        : {inst.variant}")
    print(f"nodes          : {len(t)} ({len(t.clients)} clients)")
    print(f"arity          : {t.arity}")
    print(f"capacity W     : {inst.capacity}")
    print(f"dmax           : {inst.dmax}")
    print(f"total demand   : {t.total_requests}")
    print(f"lower bound    : {lower_bound(inst)}")
    reason = inst.trivially_infeasible()
    print(f"feasible       : {'no — ' + reason if reason else 'not excluded'}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.replay and args.online:
        print(
            "simulate: --replay and --online are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.replay:
        return _cmd_simulate_replay(args)
    if args.online:
        return _cmd_simulate_online(args)
    from .simulate import deterministic_trace, poisson_trace, simulate

    inst = _load_instance(args.instance)
    if args.placement is None:
        print(
            "simulate: a placement file is required (or use --online "
            "to drive the re-placement engine instead)",
            file=sys.stderr,
        )
        return 2
    placement = _load_placement(args.placement)
    problems = _service().check(inst, placement)
    if problems:
        print(f"refusing to simulate an invalid placement: {problems[0]}")
        return 1
    horizon = args.horizon
    if args.workload == "deterministic":
        trace = deterministic_trace(inst.tree, horizon)
    else:
        trace = poisson_trace(inst.tree, float(horizon), seed=args.seed)
    res = simulate(inst, placement, trace, horizon)
    print(res.summary())
    for s in sorted(placement.replicas):
        print(
            f"  server {s:>4}: peak {res.peak_load(s):>6} / {inst.capacity}"
        )
    return 0


def _cmd_simulate_replay(args: argparse.Namespace) -> int:
    """``repro simulate --replay``: demand trace vs the dynamic engine."""
    from .analysis import render_replay_table, replay_report
    from .core.errors import ReproError
    from .replay import run_replay

    inst = _load_instance(args.instance)
    if args.placement is not None:
        print(
            "simulate --replay solves its own placements; "
            "drop the placement argument",
            file=sys.stderr,
        )
        return 2
    solver = None if args.solver in (None, "auto") else args.solver
    horizon = args.horizon
    sample = args.sample
    check_every = args.check_every
    if args.quick:
        horizon = min(horizon, 12)
        sample = min(sample, 128)
        check_every = min(check_every or 4, 4)
    try:
        result = run_replay(
            inst,
            args.trace,
            horizon=horizon,
            seed=args.seed,
            tenants=args.tenants,
            solver=solver,
            rate_scale=args.rate_scale,
            check_every=check_every,
            sample=sample,
        )
    except ValueError as exc:
        raise _CliError(f"simulate --replay: {exc}") from None
    except ReproError as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 1
    report = replay_report(result)
    print(render_replay_table(result, limit=24))
    s = report["summary"]
    cost = s["cost"]["mean"]
    lat = s["latency"]["mean"]
    head = (
        f"\n{result.mode} replay of {result.trace!r} over "
        f"{result.n_nodes} nodes, {result.horizon} ticks"
    )
    if result.tenants > 1:
        head += f" x {result.tenants} tenants"
    if cost is not None:
        head += f": cost mean {cost:.1f}"
    if lat is not None:
        head += f", latency mean {lat:.3f}"
    print(head, file=sys.stderr)
    hit_rate = s["cache_hit_rate"]
    print(
        f"repair rate {s['repair_rate']:.2f}; "
        f"repair failures {s['repair_failures']}; "
        + (f"cache hit rate {hit_rate:.2f}; " if hit_rate is not None else "")
        + f"invariants: {s['invariant_checks']} checks, "
        f"{s['invariant_violations']} violations; "
        f"fingerprint {report['run']['fingerprint']}",
        file=sys.stderr,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if result.violations:
        for v in result.violations[:5]:
            print(f"VIOLATION {v}", file=sys.stderr)
        return 1
    return 0


def _cmd_simulate_online(args: argparse.Namespace) -> int:
    """``repro simulate --online``: event trace vs re-placement engine."""
    from .analysis import online_report
    from .simulate import run_online

    inst = _load_instance(args.instance)
    if args.placement is not None:
        print(
            "simulate --online solves its own placements; "
            "drop the placement argument",
            file=sys.stderr,
        )
        return 2
    solver = None if args.solver in (None, "auto") else args.solver
    _engine, result = run_online(
        inst,
        steps=args.steps,
        events_per_step=args.events_per_step,
        seed=args.seed,
        p_fail=args.p_fail,
        p_capacity=args.p_capacity,
        solver=solver,
    )
    print(online_report(result))
    print()
    print(result.summary(), file=sys.stderr)
    # Exit non-zero only on a parity bug: pure-incremental repair is
    # contractually equal to a from-scratch solve.  Repair failures
    # (infeasible snapshots) are legitimate outcomes, not errors.
    parity_bug = any(
        s.mode == "incremental" and s.cost_matches is False
        for s in result.steps
    )
    return 1 if parity_bug else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.store:
        from .analysis import render_sweep_table
        from .runner import ResultStore

        if args.instance:
            print(
                "compare: give either an instance file or --store, not both",
                file=sys.stderr,
            )
            return 2
        results = list(ResultStore(args.store).latest().values())
        if not results:
            print(f"no results in {args.store}", file=sys.stderr)
            return 1
        n_inst = len({f"{r.instance}@{r.seed}" for r in results})
        print(f"{len(results)} rows, {n_inst} instances  ({args.store})")
        print(render_sweep_table(results))
        return 0
    if not args.instance:
        print("compare: give an instance file or --store", file=sys.stderr)
        return 2
    inst = _load_instance(args.instance)
    lb = lower_bound(inst)
    print(f"{'algorithm':<16} {'replicas':>9} {'valid':>6}   (lower bound {lb})")
    rc = 0
    svc = _service()
    for name in args.algorithms:
        resp = svc.solve_instance(inst, name)
        if resp.placement is None:
            msg = resp.error.message if resp.error is not None else resp.status
            print(f"{name:<16} {'—':>9} {'n/a':>6}   ({msg})")
            continue
        invalid = resp.status == "invalid"
        if invalid:
            rc = 1
        print(
            f"{name:<16} {resp.n_replicas:>9} "
            f"{'yes' if not invalid else 'NO':>6}"
        )
    return rc


def _default_sweep_workers(n_tasks: int) -> int:
    """Parallel by default: one worker per CPU, but never more than
    there are (solver, instance) tasks — extra workers would sit idle."""
    import os

    return max(1, min(os.cpu_count() or 1, n_tasks))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import render_sweep_table
    from .runner import (
        ResultStore,
        default_corpus,
        run_sweep,
        tasks_for_corpus,
    )

    corpus = default_corpus(limit=args.limit, seed0=args.seed)
    solvers = args.solvers or None
    tasks = tasks_for_corpus(
        corpus, solvers, budget=args.budget, timeout=args.timeout
    )
    if not tasks:
        print("sweep: no applicable (solver, instance) pairs", file=sys.stderr)
        return 1
    store = ResultStore(args.out) if args.out else None
    if store is not None:
        # Provenance: the seed and the exact generator specs make the
        # sweep reproducible from the store alone (`metadata()` returns
        # them merged; see docs/scenarios.md on reproducibility).
        store.write_metadata(
            {
                "verb": "sweep",
                "seed": args.seed,
                "generator": "default_corpus",
                "specs": corpus,
                "solvers": args.solvers,
                "budget": args.budget,
                "timeout": args.timeout,
                "limit": args.limit,
            }
        )

    def _progress(res) -> None:
        if args.verbose:
            n = res.n_replicas if res.n_replicas is not None else "—"
            print(
                f"  {res.key:<50} {res.status:<12} |R|={n} "
                f"{res.wall_time * 1e3:7.1f}ms",
                file=sys.stderr,
            )

    workers = args.workers
    if workers is None:
        workers = _default_sweep_workers(len(tasks))
    retry = ("error", "timeout") if args.retry_timeouts else ("error",)
    outcome = run_sweep(
        tasks,
        workers=workers,
        store=store,
        resume=not args.no_resume,
        retry_statuses=retry,
        on_result=_progress,
    )
    print(
        f"sweep: {len(corpus)} instances, {outcome.n_run} tasks run, "
        f"{outcome.n_skipped} resumed from store"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    print(render_sweep_table(outcome.results))
    bad = [r for r in outcome.results if r.status in ("invalid", "error")]
    return 1 if bad else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis import (
        compare_snapshots,
        find_baseline,
        load_snapshot,
        render_bench_table,
        run_bench,
        snapshot_problems,
        write_snapshot,
    )

    profile = args.profile or ("quick" if args.quick else "full")
    snapshot = run_bench(profile, repeats=args.repeats)
    path = write_snapshot(snapshot, args.out_dir, label=args.label)
    print(render_bench_table(snapshot))
    print(f"\nwrote {path}", file=sys.stderr)

    # Fail closed: a solver that crashed on the pinned corpus or
    # diverged from its object-graph reference is a hard failure even
    # with no baseline to compare against.
    rc = 0
    for problem in snapshot_problems(snapshot):
        print(f"BENCH FAILURE: {problem}", file=sys.stderr)
        rc = 1

    baseline_path = None
    if args.baseline == "auto":
        baseline_path = find_baseline(args.out_dir, exclude=path)
    elif args.baseline not in (None, "none"):
        baseline_path = args.baseline
    if baseline_path is not None:
        baseline = load_snapshot(baseline_path)
        lines, regressions = compare_snapshots(
            snapshot, baseline, threshold_pct=args.threshold
        )
        print(f"\nvs baseline {baseline_path} (threshold {args.threshold}%):")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(
                f"bench: {len(regressions)} regression(s) beyond "
                f"{args.threshold}%",
                file=sys.stderr,
            )
            rc = 1
    else:
        print("bench: no baseline snapshot found; skipped comparison",
              file=sys.stderr)
    return rc


def _cmd_stress(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis import stress_report
    from .scenarios import family_names, full_config, quick_config, run_stress

    known = family_names()
    if args.list:
        for name in known:
            print(name)
        return 0
    families = args.family or None
    if families:
        unknown = sorted(set(families) - set(known))
        if unknown:
            raise _CliError(
                f"unknown scenario families: {', '.join(unknown)} "
                f"(repro stress --list shows the catalogue)"
            )
    if args.quick:
        config = quick_config(families, args.solvers)
    else:
        config = full_config(families, args.solvers)
    overrides = {}
    if args.seeds is not None or args.seed != 0:
        n = args.seeds if args.seeds is not None else len(config.seeds)
        overrides["seeds"] = [args.seed + i for i in range(n)]
    if args.size is not None:
        overrides["size"] = args.size
    if args.budget is not None:
        overrides["budget"] = args.budget
    if args.no_dynamic:
        overrides["check_dynamic"] = False
    if overrides:
        config = dataclasses.replace(config, **overrides)

    def _progress(row) -> None:
        if args.verbose:
            flag = "ok" if row.n_violations == 0 else f"{row.n_violations} VIOLATIONS"
            print(
                f"  {row.cell:<44} {row.variant:<16} n={row.n_nodes:<4} "
                f"{len(row.statuses)} solvers {row.wall_time * 1e3:7.1f}ms  {flag}",
                file=sys.stderr,
            )

    report = run_stress(config, on_cell=_progress)
    print(stress_report(report))
    if args.json:
        data = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(data)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(data + "\n")
            print(f"wrote {args.json}", file=sys.stderr)
    # Coverage only gates a full-catalogue run: a deliberate --family
    # subset is allowed to leave solvers unexercised.
    gate_coverage = families is None and report.uncovered
    if report.uncovered:
        print(
            f"stress: {len(report.uncovered)} registered solver(s) never ran: "
            + ", ".join(report.uncovered),
            file=sys.stderr,
        )
    return 0 if report.ok and not gate_coverage else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve
    from .storage import RecoveryError

    try:
        return serve(
            args.host,
            args.port,
            cache_size=args.cache_size,
            default_budget=args.budget,
            verbose=args.verbose,
            data_dir=args.data_dir,
            snapshot_interval=args.snapshot_interval,
        )
    except RecoveryError as exc:
        # Structural damage in --data-dir: refuse to start rather than
        # silently serving from partial state.  `repro recover` is the
        # offline inspection path.
        raise _CliError(
            f"cannot recover service state: {exc} "
            f"(inspect with: repro recover --data-dir {args.data_dir})"
        ) from None


def _cmd_recover(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from .service import PlacementService
    from .storage import (
        RecoveryError,
        StateStore,
        decode_record,
        list_snapshots,
        scan_wal,
    )

    wal_path = os.path.join(args.data_dir, StateStore.WAL_FILENAME)
    if not os.path.isdir(args.data_dir):
        raise _CliError(f"no such data directory: {args.data_dir}")

    # Offline structure pass first: what is on disk, before any replay.
    snapshots = list_snapshots(args.data_dir)
    try:
        scan = scan_wal(wal_path)
        kinds: dict = {}
        for _seq, payload in scan.records:
            record = decode_record(payload)
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
    except RecoveryError as exc:
        raise _CliError(f"write-ahead log is damaged: {exc}") from None

    # Full replay pass: rebuild the service state exactly as `repro
    # serve --data-dir` would, then report what came back.
    try:
        service = PlacementService(
            store=StateStore(args.data_dir, snapshot_interval=0)
        )
    except RecoveryError as exc:
        raise _CliError(f"replay failed: {exc}") from None
    try:
        stats = service.stats()
        dur = stats.durability
        sessions = service.dynamic_sessions()
        compacted_seq = None
        if args.compact:
            compacted_seq = service.persist_now()
        if args.json:
            print(_json.dumps({
                "data_dir": args.data_dir,
                "snapshots": [seq for seq, _path in snapshots],
                "wal_records": len(scan.records),
                "wal_bytes": scan.valid_bytes,
                "torn_tail": scan.torn_tail,
                "record_kinds": kinds,
                "durability": dur.to_wire(),
                "sessions": sessions,
                "cache_entries": stats.cache.size,
                "state_fingerprint": service.state_fingerprint(),
                "compacted_to_seq": compacted_seq,
            }, indent=2, sort_keys=True))
            return 0
        print(f"recovery report for {args.data_dir}")
        if snapshots:
            print(f"  snapshots: {', '.join(f'seq {s}' for s, _ in snapshots)}")
        else:
            print("  snapshots: none")
        torn = " (torn tail truncated on replay)" if scan.torn_tail else ""
        print(
            f"  wal: {len(scan.records)} intact records, "
            f"{scan.valid_bytes} valid bytes{torn}"
        )
        for kind in sorted(kinds):
            print(f"    {kind}: {kinds[kind]}")
        print(
            f"  replay: ok — {dur.records_replayed} records replayed, "
            f"{dur.records_skipped} stale skipped, "
            f"{len(sessions)} open session(s), "
            f"{stats.cache.size} cache entries"
        )
        for s in sessions:
            cost = s["n_replicas"] if s["n_replicas"] is not None else "-"
            print(
                f"    {s['session_id']}: solver={s['solver']} "
                f"cost={cost} failed={s['failed_hosts']}"
            )
        print(f"  state fingerprint: {service.state_fingerprint()}")
        if compacted_seq is not None:
            print(f"  compacted: snapshot written at seq {compacted_seq}")
        return 0
    finally:
        service.close()


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import run_cluster
    from .storage import RecoveryError

    worker_urls = None
    if args.attach:
        worker_urls = {
            f"worker-{i}": url.rstrip("/")
            for i, url in enumerate(args.attach)
        }
    elif args.data_root is None:
        raise _CliError(
            "--data-root is required unless --attach lists worker URLs"
        )
    try:
        return run_cluster(
            args.host,
            args.port,
            n_workers=args.workers,
            data_root=args.data_root,
            worker_urls=worker_urls,
            vnodes=args.vnodes,
            probe_interval=args.probe_interval,
            down_after=args.down_after,
            snapshot_interval=args.snapshot_interval,
            verbose=args.verbose,
        )
    except RecoveryError as exc:
        raise _CliError(
            f"cannot recover worker state under {args.data_root}: {exc}"
        ) from None


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import cluster_report
    from .cluster import run_loadtest

    n_requests = args.requests
    mix = args.mix
    if args.quick:
        n_requests = min(n_requests, 40)
        mix = "quick"

    manager = None
    server = None
    tmp = None
    url = args.url
    try:
        if url is None:
            # No target given: stand up a throwaway local cluster, drive
            # it, and tear it down — the zero-setup benchmarking path.
            import tempfile
            import threading

            from .cluster import ClusterManager, make_router

            tmp = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
            manager = ClusterManager(args.workers, tmp.name)
            server = make_router(
                "127.0.0.1",
                0,
                workers=manager.urls(),
                data_dirs=manager.data_dirs(),
            )
            threading.Thread(
                target=server.serve_forever,
                name="repro-loadtest-router",
                daemon=True,
            ).start()
            server.start_prober()
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            print(
                f"loadtest: transient cluster of {args.workers} worker(s) "
                f"behind {url}",
                file=sys.stderr,
            )
        report = run_loadtest(
            url,
            n_requests=n_requests,
            concurrency=args.concurrency,
            seed=args.seed,
            mix=mix,
        )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if manager is not None:
            manager.stop_all(graceful=False)
        if tmp is not None:
            tmp.cleanup()

    text = cluster_report(report)
    if args.json:
        data = _json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(data)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(data + "\n")
            print(f"wrote {args.json}", file=sys.stderr)
            print(text)
    else:
        print(text)
    return 0 if report.failed == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import full_report

    text = full_report()
    if args.sweep:
        from .analysis import sweep_report
        from .runner import ResultStore

        text = text + "\n" + sweep_report(ResultStore(args.sweep).latest().values())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Replica placement with distance constraints in trees",
        epilog="documentation index: docs/architecture.md",
    )
    p.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = p.add_subparsers(dest="command", required=True)
    algorithm_names = sorted(_algorithm_names())

    g = sub.add_parser(
        "generate",
        help="generate an instance",
        epilog=_docs("architecture"),
    )
    g.add_argument(
        "--kind",
        choices=["random", "binary", "caterpillar", "broom", "star", "mesh"],
        default="random",
    )
    g.add_argument("--internal", type=int, default=20)
    g.add_argument("--clients", type=int, default=40)
    g.add_argument("--pops", type=_positive_int, default=24,
                   help="mesh: number of POPs in the ISP mesh (the "
                   "extracted tree has roughly 1.6x as many nodes)")
    g.add_argument("--capacity", type=int, required=True)
    g.add_argument("--dmax", type=float, default=None)
    g.add_argument("--policy", choices=["single", "multiple"],
                   default="single",
                   help="access policy of the generated instance")
    g.add_argument("--arity", type=int, default=4)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", default=None)
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser(
        "solve", help="solve an instance", epilog=_docs("service")
    )
    s.add_argument("instance")
    s.add_argument(
        "--algorithm", choices=["auto"] + algorithm_names, default="single-gen",
        help="registered solver name, or 'auto' to let the service "
        "pick from the documented fallback chain",
    )
    s.add_argument("--budget", type=_positive_int, default=None,
                   help="search budget forwarded to budgeted solvers")
    s.add_argument("--out", default=None)
    s.set_defaults(func=_cmd_solve)

    c = sub.add_parser(
        "check", help="validate a placement", epilog=_docs("service")
    )
    c.add_argument("instance")
    c.add_argument("placement")
    c.set_defaults(func=_cmd_check)

    r = sub.add_parser(
        "render",
        help="ASCII-render an instance",
        epilog=_docs("architecture"),
    )
    r.add_argument("instance")
    r.add_argument("placement", nargs="?", default=None)
    r.set_defaults(func=_cmd_render)

    i = sub.add_parser(
        "info", help="instance statistics", epilog=_docs("architecture")
    )
    i.add_argument("instance")
    i.set_defaults(func=_cmd_info)

    sim = sub.add_parser(
        "simulate",
        help="replay a request trace, or drive the online "
        "re-placement engine with --online",
        epilog=_docs("simulation"),
    )
    sim.add_argument("instance")
    sim.add_argument("placement", nargs="?", default=None,
                     help="placement JSON (offline mode only)")
    sim.add_argument(
        "--workload", choices=["deterministic", "poisson"],
        default="deterministic",
    )
    sim.add_argument("--horizon", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--online", action="store_true",
                     help="replay a randomized change-event trace against "
                     "the incremental re-placement engine and print the "
                     "repair-vs-resolve report")
    sim.add_argument("--steps", type=int, default=20,
                     help="online: number of event batches")
    sim.add_argument("--events-per-step", type=int, default=1,
                     help="online: events per batch")
    sim.add_argument("--p-fail", type=float, default=0.0,
                     help="online: per-event probability of a host failure")
    sim.add_argument("--p-capacity", type=float, default=0.0,
                     help="online: per-event probability of a capacity resize")
    sim.add_argument("--solver", choices=["auto"] + algorithm_names,
                     default="auto",
                     help="online: engine solver (auto picks the "
                     "incremental backend for NoD instances)")
    sim.add_argument("--replay", action="store_true",
                     help="feed a demand trace (diurnal/flash/zipf, "
                     "composable with '+') through the dynamic engine "
                     "and report cost/latency/repair-rate over time")
    sim.add_argument("--trace", default="diurnal+flash",
                     help="replay: trace spec, e.g. 'diurnal+flash' "
                     "(stationary, diurnal, flash, zipf)")
    sim.add_argument("--tenants", type=_positive_int, default=1,
                     help="replay: independent catalogues sharing the "
                     "tree; >1 solves per tenant through the cached "
                     "service")
    sim.add_argument("--rate-scale", type=_positive_float, default=1.0,
                     help="replay: global multiplier on base demand")
    sim.add_argument("--check-every", type=_nonnegative_int, default=8,
                     help="replay: sampled-invariant audit period in "
                     "ticks (0 disables)")
    sim.add_argument("--sample", type=_positive_int, default=256,
                     help="replay: client sample size for latency and "
                     "invariant checks")
    sim.add_argument("--quick", action="store_true",
                     help="replay: CI smoke preset (caps horizon at 12 "
                     "ticks, sample at 128)")
    sim.add_argument("--json", default=None, metavar="PATH",
                     help="replay: also write the full JSON report")
    sim.set_defaults(func=_cmd_simulate)

    cmp_ = sub.add_parser(
        "compare",
        help="run several algorithms on one instance, or summarise a "
        "persisted sweep store",
        epilog=_docs("algorithms"),
    )
    cmp_.add_argument("instance", nargs="?", default=None)
    cmp_.add_argument(
        "--algorithms", nargs="+", choices=algorithm_names,
        default=["single-gen", "greedy-packing", "local"],
    )
    cmp_.add_argument(
        "--store", default=None,
        help="JSON-lines sweep store to summarise instead of solving live",
    )
    cmp_.set_defaults(func=_cmd_compare)

    sw = sub.add_parser(
        "sweep",
        help="fan the default corpus across registered solvers in parallel",
        epilog=_docs("algorithms"),
    )
    sw.add_argument(
        "--out", default=None,
        help="JSON-lines result store (sweeps resume from it by default)",
    )
    sw.add_argument(
        "--solvers", nargs="+", choices=algorithm_names, default=None,
        help="subset of solvers (default: every applicable registered solver)",
    )
    sw.add_argument("--limit", type=int, default=None,
                    help="truncate the corpus to its first N instances")
    sw.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: one per CPU, capped "
                    "at the number of sweep tasks; 1 = run inline)")
    sw.add_argument("--timeout", type=float, default=60.0,
                    help="per-task timeout in seconds (0 disables)")
    sw.add_argument("--budget", type=_positive_int, default=None,
                    help="search budget forwarded to exact solvers")
    sw.add_argument("--seed", type=int, default=0,
                    help="corpus seed offset (distinct sweeps, distinct instances)")
    sw.add_argument("--no-resume", action="store_true",
                    help="recompute rows already present in --out")
    sw.add_argument("--retry-timeouts", action="store_true",
                    help="also recompute stored timeout rows (crashed "
                    "'error' rows are always retried)")
    sw.add_argument("--verbose", action="store_true",
                    help="stream one line per completed task to stderr")
    sw.set_defaults(func=_cmd_sweep)

    bn = sub.add_parser(
        "bench",
        help="run the pinned performance corpus and persist a "
        "BENCH_<date>.json snapshot",
        epilog=_docs("performance"),
    )
    bn.add_argument("--out-dir", default=".",
                    help="directory for BENCH_*.json snapshots")
    bn.add_argument("--quick", action="store_true",
                    help="run the reduced CI corpus (the 220-node "
                    "NoD flagships only, one repetition)")
    bn.add_argument("--profile", choices=["full", "quick", "smoke"],
                    default=None,
                    help="explicit corpus profile (overrides --quick)")
    bn.add_argument("--repeats", type=int, default=None,
                    help="timing repetitions per solver (best run kept; "
                    "default 3 for full, 1 otherwise)")
    bn.add_argument("--baseline", default="auto",
                    help="snapshot to compare against: a path, 'auto' "
                    "(latest BENCH_*.json in --out-dir) or 'none'")
    bn.add_argument("--threshold", type=float, default=25.0,
                    help="fail on calibration-normalised slowdowns "
                    "beyond this percentage")
    bn.add_argument("--label", default=None,
                    help="snapshot filename label (default: today's date)")
    bn.set_defaults(func=_cmd_bench)

    st = sub.add_parser(
        "stress",
        help="run the differential conformance harness over the "
        "adversarial scenario grid",
        epilog=_docs("scenarios"),
    )
    st.add_argument(
        "--family", action="append", default=None, metavar="NAME",
        help="restrict to one scenario family (repeatable; "
        "default: the full catalogue)",
    )
    st.add_argument(
        "--solvers", nargs="+", choices=algorithm_names, default=None,
        help="subset of solvers (default: every applicable registered solver)",
    )
    st.add_argument("--quick", action="store_true",
                    help="the pinned CI gate grid: every family, one "
                    "seed, small sizes (finishes in seconds)")
    st.add_argument("--seed", type=_nonnegative_int, default=0,
                    help="base scenario seed (default 0, the pinned grid)")
    st.add_argument("--seeds", type=_positive_int, default=None,
                    help="number of consecutive seeds per cell "
                    "(default: 1 quick, 3 full)")
    st.add_argument("--size", type=_positive_int, default=None,
                    help="scenario scale (clients per instance; capped "
                    "per regime so exact solvers stay tractable)")
    st.add_argument("--budget", type=_positive_int, default=None,
                    help="search budget for exact solvers (exhaustion "
                    "is a recorded outcome, not a violation)")
    st.add_argument("--no-dynamic", action="store_true",
                    help="skip the failure-storm incremental-parity check")
    st.add_argument("--json", default=None, metavar="PATH",
                    help="also write the report as JSON ('-' for stdout)")
    st.add_argument("--list", action="store_true",
                    help="list the scenario family catalogue and exit")
    st.add_argument("--verbose", action="store_true",
                    help="stream one line per completed cell to stderr")
    st.set_defaults(func=_cmd_stress)

    srv = sub.add_parser(
        "serve",
        help="run the placement service daemon (JSON over HTTP)",
        epilog=_docs("service"),
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8350,
                     help="TCP port (0 binds an ephemeral port)")
    srv.add_argument("--cache-size", type=int, default=256,
                     help="LRU result-cache entries (0 disables caching)")
    srv.add_argument("--budget", type=_positive_int, default=None,
                     help="default search budget for budgeted solvers")
    srv.add_argument("--verbose", action="store_true",
                     help="log one access line per request to stderr")
    srv.add_argument("--data-dir", default=None,
                     help="persist service state here (WAL + snapshots) and "
                          "recover it on startup; see docs/durability.md")
    srv.add_argument("--snapshot-interval", type=int, default=256,
                     help="auto-snapshot after this many logged records "
                          "(0 disables; snapshot still taken on shutdown)")
    srv.set_defaults(func=_cmd_serve)

    rec = sub.add_parser(
        "recover",
        help="inspect and replay a serve --data-dir offline",
        epilog=_docs("durability"),
    )
    rec.add_argument("--data-dir", required=True,
                     help="data directory written by repro serve --data-dir")
    rec.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")
    rec.add_argument("--compact", action="store_true",
                     help="after a clean replay, write a fresh snapshot and "
                          "compact the write-ahead log")
    rec.set_defaults(func=_cmd_recover)

    cl = sub.add_parser(
        "cluster",
        help="run a consistent-hash router over N placement workers",
        epilog=_docs("cluster"),
    )
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=8360,
                    help="router TCP port (0 binds an ephemeral port)")
    cl.add_argument("--workers", type=_positive_int, default=3,
                    help="number of managed worker daemons to spawn")
    cl.add_argument("--data-root", default=None,
                    help="directory holding one durable data-dir per worker "
                         "(worker-0/, worker-1/, ...); required unless "
                         "--attach is given")
    cl.add_argument("--attach", nargs="+", metavar="URL", default=None,
                    help="route across already-running repro serve daemons "
                         "instead of spawning a managed fleet")
    cl.add_argument("--vnodes", type=_positive_int, default=16,
                    help="virtual nodes per worker on the hash ring")
    cl.add_argument("--probe-interval", type=float, default=1.0,
                    help="seconds between health probes of each worker")
    cl.add_argument("--down-after", type=_positive_int, default=2,
                    help="consecutive probe failures before a worker is "
                         "ejected from the ring")
    cl.add_argument("--snapshot-interval", type=int, default=64,
                    help="per-worker auto-snapshot interval (records)")
    cl.add_argument("--verbose", action="store_true",
                    help="log one line per routed request to stderr")
    cl.set_defaults(func=_cmd_cluster)

    lt = sub.add_parser(
        "loadtest",
        help="drive a deterministic seeded request mix at a cluster",
        epilog=_docs("cluster"),
    )
    lt.add_argument("--url", default=None,
                    help="router (or single daemon) base URL; omitted = "
                         "spawn a transient local cluster, drive it, and "
                         "tear it down")
    lt.add_argument("--workers", type=_positive_int, default=3,
                    help="fleet size for the transient cluster "
                         "(ignored with --url)")
    lt.add_argument("--requests", type=_positive_int, default=200,
                    help="total requests to issue")
    lt.add_argument("--concurrency", type=_positive_int, default=8,
                    help="client thread-pool size")
    lt.add_argument("--seed", type=int, default=0,
                    help="request-mix seed (same seed + mix = same "
                         "fingerprint sequence)")
    lt.add_argument("--mix", choices=["default", "scenario", "quick"],
                    default="default",
                    help="which instance pool the mix draws from")
    lt.add_argument("--quick", action="store_true",
                    help="shorthand for a fast smoke pass: at most 40 "
                         "requests from the quick mix")
    lt.add_argument("--json", default=None, metavar="PATH",
                    help="also write the report as JSON ('-' for stdout)")
    lt.set_defaults(func=_cmd_loadtest)

    rep = sub.add_parser(
        "report",
        help="regenerate the paper's headline numbers",
        epilog=_docs("algorithms"),
    )
    rep.add_argument("--out", default=None)
    rep.add_argument(
        "--sweep", default=None,
        help="append a sweep summary section from this JSON-lines store",
    )
    rep.set_defaults(func=_cmd_report)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        # User-input problems (missing/corrupt files, unknown family
        # names): one clean stderr line, exit code 2 — same contract as
        # argparse's own usage errors, never a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (head, grep -m, ...) closed the pipe:
        # normal in `repro ... | head` pipelines, not an error.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
