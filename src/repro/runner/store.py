"""JSON-lines result store.

One :class:`SolveResult` per line, appended as results arrive, so a
killed sweep loses at most the row in flight.  The format is
diff-friendly (stable key order, one row per line) and greppable; the
batch runner resumes sweeps from :meth:`ResultStore.latest`
(last-write-wins per resume key) across commits and crashes.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Set

from .result import SolveResult

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSON-lines persistence for sweep results."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SolveResult]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    # A row truncated by a crash mid-append: skip it; the
                    # resume logic will simply recompute that task.
                    continue
                res = SolveResult.from_dict(data)
                res.cached = True
                yield res

    def load(self) -> List[SolveResult]:
        """All rows, in append order."""
        return list(self)

    def latest(self) -> Dict[str, SolveResult]:
        """One row per resume key; later appends win."""
        out: Dict[str, SolveResult] = {}
        for res in self:
            out[res.key] = res
        return out

    def completed_keys(self) -> Set[str]:
        """Resume keys already present in the store."""
        return set(self.latest())

    def __len__(self) -> int:
        return sum(1 for _ in self)

    # ------------------------------------------------------------------
    def append(self, result: SolveResult) -> None:
        """Append one row and flush, creating the file if needed."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def extend(self, results: Iterable[SolveResult]) -> None:
        for r in results:
            self.append(r)
