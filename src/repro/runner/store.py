"""JSON-lines result store.

One :class:`SolveResult` per line, appended as results arrive, so a
killed sweep loses at most the row in flight.  The format is
diff-friendly (stable key order, one row per line) and greppable; the
batch runner resumes sweeps from :meth:`ResultStore.latest`
(last-write-wins per resume key) across commits and crashes.

Besides result rows a store can carry **metadata rows** — lines of the
form ``{"_meta": {...}}`` recording how the sweep was produced (corpus
seed, generator specs, solver subset), written by
:meth:`ResultStore.write_metadata` and merged back by
:meth:`ResultStore.metadata`.  Metadata rows are invisible to result
iteration, so stores written before the format existed read unchanged.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Set

from ..storage.fsutil import durable_append_line
from .result import SolveResult

__all__ = ["ResultStore"]

_META_KEY = "_meta"


class ResultStore:
    """Append-only JSON-lines persistence for sweep results."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # ------------------------------------------------------------------
    def _rows(self) -> Iterator[dict]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A row truncated by a crash mid-append: skip it; the
                    # resume logic will simply recompute that task.
                    continue

    def __iter__(self) -> Iterator[SolveResult]:
        for data in self._rows():
            if _META_KEY in data:
                continue
            res = SolveResult.from_dict(data)
            res.cached = True
            yield res

    def load(self) -> List[SolveResult]:
        """All rows, in append order."""
        return list(self)

    def latest(self) -> Dict[str, SolveResult]:
        """One row per resume key; later appends win."""
        out: Dict[str, SolveResult] = {}
        for res in self:
            out[res.key] = res
        return out

    def completed_keys(self) -> Set[str]:
        """Resume keys already present in the store."""
        return set(self.latest())

    def __len__(self) -> int:
        return sum(1 for _ in self)

    # ------------------------------------------------------------------
    def _append_line(self, payload: dict) -> None:
        """Durably append one JSON row, creating the file if needed.

        Uses :func:`~repro.storage.fsutil.durable_append_line`, which
        repairs a missing trailing newline first: a row torn by a crash
        mid-append costs only itself, never the next row appended after
        the restart (the torn fragment stays on its own line, where
        :meth:`_rows` skips it as malformed JSON).
        """
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        durable_append_line(self.path, json.dumps(payload, sort_keys=True))

    def append(self, result: SolveResult) -> None:
        """Append one result row."""
        self._append_line(result.to_dict())

    def extend(self, results: Iterable[SolveResult]) -> None:
        for r in results:
            self.append(r)

    # ------------------------------------------------------------------
    def write_metadata(self, meta: Dict) -> None:
        """Append one ``{"_meta": ...}`` provenance row.

        ``meta`` must be JSON-serialisable.  Typical contents: the
        corpus seed, the generator specs and the solver subset of the
        sweep that produced the result rows — enough to regenerate the
        exact instances later.  Repeated calls append; later rows win
        key-by-key in :meth:`metadata`.
        """
        self._append_line({_META_KEY: meta})

    def metadata(self) -> Dict:
        """All metadata rows merged in append order (later rows win).

        Returns an empty dict for stores without metadata, including
        every store written before the format existed.
        """
        out: Dict = {}
        for data in self._rows():
            if _META_KEY in data and isinstance(data[_META_KEY], dict):
                out.update(data[_META_KEY])
        return out
