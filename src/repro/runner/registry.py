"""Solver protocol and registry.

All placement algorithms register themselves under a stable name with
declarative applicability metadata (policy, NoD-only, binary-only,
exactness) and optional budget/stats plumbing::

    @register_solver("single-nod", policy=Policy.SINGLE, needs_nod=True)
    def single_nod(instance): ...

The decorator returns the function unchanged — existing direct callers
are unaffected — while the registry gains a uniform entry point::

    result = solve("single-nod", instance, budget=100_000)

which times the call, validates the placement with the independent
checker and returns a :class:`~repro.runner.result.SolveResult`
regardless of how the solver failed.  The batch runner, the CLI and the
benchmark harness all enumerate solvers exclusively through this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from ..core.errors import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    NotBinaryTreeError,
    PolicyError,
    ReproError,
    SolverError,
)
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.validation import placement_violations
from ..core.bounds import lower_bound
from .result import SolveResult, Status

__all__ = [
    "Solver",
    "SolverSpec",
    "DuplicateSolverError",
    "UnknownSolverError",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "solvers_for",
    "solve",
    "result_from_outcome",
]


@runtime_checkable
class Solver(Protocol):
    """Anything that maps an instance to a placement."""

    def __call__(self, instance: ProblemInstance) -> Placement:  # pragma: no cover
        ...


class DuplicateSolverError(ReproError):
    """Two solvers registered under the same name."""


class UnknownSolverError(ReproError):
    """Lookup of a name no solver registered."""


@dataclass(frozen=True)
class SolverSpec:
    """Registry entry: the callable plus applicability metadata."""

    name: str
    fn: Callable[..., Placement]
    policy: Optional[Policy] = None  # None: any policy
    exact: bool = False
    needs_nod: bool = False  # only solves instances without dmax
    binary_only: bool = False
    budget_kwarg: Optional[str] = None  # kwarg receiving the search budget
    stats_kwarg: Optional[str] = None  # kwarg receiving a counters dict
    description: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    def inapplicable_reason(self, instance: ProblemInstance) -> Optional[str]:
        """Why this solver cannot run on ``instance`` (None if it can)."""
        if self.policy is not None and instance.policy is not self.policy:
            return f"{self.name} solves {self.policy.value} instances only"
        if self.needs_nod and instance.has_distance_constraint:
            return f"{self.name} solves the NoD variants only"
        if self.binary_only and not instance.is_binary:
            return f"{self.name} requires a binary tree"
        return None

    def applicable(self, instance: ProblemInstance) -> bool:
        """True iff this solver accepts ``instance``."""
        return self.inapplicable_reason(instance) is None


_REGISTRY: Dict[str, SolverSpec] = {}


def register_solver(
    name: str,
    *,
    policy: Optional[Policy] = None,
    exact: bool = False,
    needs_nod: bool = False,
    binary_only: bool = False,
    budget_kwarg: Optional[str] = None,
    stats_kwarg: Optional[str] = None,
    description: str = "",
) -> Callable[[Callable[..., Placement]], Callable[..., Placement]]:
    """Class-style decorator registering a solver function.

    Returns the function unchanged so direct calls keep working.  Raises
    :class:`DuplicateSolverError` if ``name`` is already taken.
    """

    def deco(fn: Callable[..., Placement]) -> Callable[..., Placement]:
        if name in _REGISTRY:
            raise DuplicateSolverError(
                f"solver name {name!r} already registered by "
                f"{_REGISTRY[name].fn.__module__}.{_REGISTRY[name].fn.__qualname__}"
            )
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = SolverSpec(
            name=name,
            fn=fn,
            policy=policy,
            exact=exact,
            needs_nod=needs_nod,
            binary_only=binary_only,
            budget_kwarg=budget_kwarg,
            stats_kwarg=stats_kwarg,
            description=description or (doc_lines[0] if doc_lines else ""),
        )
        return fn

    return deco


def unregister_solver(name: str) -> None:
    """Remove a solver (tests only — production solvers self-register)."""
    _REGISTRY.pop(name, None)


def ensure_builtin_solvers() -> None:
    """Import the algorithm modules so their registrations run."""
    from .. import algorithms  # noqa: F401  (import side effect)


def get_solver(name: str) -> SolverSpec:
    """The spec registered under ``name`` (:class:`UnknownSolverError`)."""
    ensure_builtin_solvers()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered: {known}"
        ) from None


def available_solvers() -> List[SolverSpec]:
    """All registered solvers, sorted by name."""
    ensure_builtin_solvers()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def solvers_for(instance: ProblemInstance, *, exact: Optional[bool] = None) -> List[SolverSpec]:
    """Registered solvers applicable to ``instance``.

    ``exact=True``/``False`` filters to exact / heuristic solvers.
    """
    out = [s for s in available_solvers() if s.applicable(instance)]
    if exact is not None:
        out = [s for s in out if s.exact is exact]
    return out


# ----------------------------------------------------------------------
def solve(
    name: str,
    instance: ProblemInstance,
    *,
    budget: Optional[int] = None,
    instance_id: Optional[str] = None,
    seed: int = 0,
    keep_placement: bool = False,
) -> SolveResult:
    """Run a registered solver and normalise the outcome.

    Never raises for solver-level failures: infeasibility, policy or
    shape mismatches, budget exhaustion and crashes all come back as a
    :class:`SolveResult` with the corresponding status.

    Parameters
    ----------
    name:
        Registry name of the solver (e.g. ``"single-gen"``).
    instance:
        The problem instance to solve.
    budget:
        Search budget, forwarded only to solvers that declared a
        ``budget_kwarg``; silently ignored otherwise.
    instance_id:
        Stable identifier recorded on the result (defaults to the
        instance's ``name`` or variant).
    seed:
        Seed recorded on the result for resumable sweep stores.
    keep_placement:
        When True, attach the full :class:`Placement` to the result
        (``result.placement``) so in-process callers — the service
        façade in particular — can return assignments without
        re-solving; batch/store paths leave it off since placements
        are transport-only and never persisted.

    Returns
    -------
    SolveResult
        ``status="ok"`` with objective/lower-bound/timing on success;
        ``"infeasible"``, ``"inapplicable"``, ``"budget"``,
        ``"invalid"`` or ``"error"`` otherwise, with ``error`` naming
        the exception.  The placement is checker-validated before
        ``"ok"`` is reported.

    Raises
    ------
    UnknownSolverError
        If ``name`` is not registered — a caller bug, not a solver
        outcome.
    """
    spec = get_solver(name)
    iid = instance_id if instance_id is not None else (instance.name or instance.variant)
    reason = spec.inapplicable_reason(instance)
    if reason is not None:
        return SolveResult(
            solver=name, instance=iid, seed=seed,
            status=Status.INAPPLICABLE, error=reason,
        )

    kwargs: Dict[str, object] = {}
    counters: Dict[str, int] = {}
    if budget is not None and spec.budget_kwarg:
        kwargs[spec.budget_kwarg] = budget
    if spec.stats_kwarg:
        kwargs[spec.stats_kwarg] = counters

    t0 = time.perf_counter()
    try:
        outcome: object = spec.fn(instance, **kwargs)
    except Exception as exc:  # noqa: BLE001 — uniform batch reporting
        outcome = exc
    return result_from_outcome(
        name,
        instance,
        outcome,
        time.perf_counter() - t0,
        counters=counters,
        instance_id=iid,
        seed=seed,
        keep_placement=keep_placement,
    )


def result_from_outcome(
    name: str,
    instance: ProblemInstance,
    outcome: object,
    elapsed: float,
    *,
    counters: Optional[Dict[str, int]] = None,
    instance_id: Optional[str] = None,
    seed: int = 0,
    keep_placement: bool = False,
) -> SolveResult:
    """Normalise a solver outcome produced out-of-band into a result.

    ``outcome`` is either the :class:`Placement` the solver returned or
    the exception it raised.  The status mapping and the checker
    validation are exactly those of :func:`solve`, so batch paths that
    obtain placements elsewhere — the service façade's batched
    ``solve_many`` and the sweep runner's batched leg — report
    identically to a direct registry call.
    """
    iid = (
        instance_id
        if instance_id is not None
        else (instance.name or instance.variant)
    )
    if counters is None:
        counters = {}
    if isinstance(outcome, BaseException):
        if isinstance(outcome, InfeasibleInstanceError):
            status = Status.INFEASIBLE
        elif isinstance(
            outcome, (PolicyError, NotBinaryTreeError, InvalidInstanceError)
        ):
            status = Status.INAPPLICABLE
        elif isinstance(outcome, SolverError):
            status = Status.BUDGET
        else:
            status = Status.ERROR
        return SolveResult(
            solver=name, instance=iid, seed=seed, status=status,
            wall_time=elapsed, counters=counters,
            error=f"{type(outcome).__name__}: {outcome}",
        )
    placement: Placement = outcome  # type: ignore[assignment]
    problems = placement_violations(instance, placement)
    status = Status.OK if not problems else Status.INVALID
    return SolveResult(
        solver=name,
        instance=iid,
        seed=seed,
        status=status,
        n_replicas=placement.n_replicas,
        lower_bound=lower_bound(instance),
        wall_time=elapsed,
        counters=counters,
        replicas=sorted(placement.replicas),
        error=None if not problems else f"InvalidPlacement: {problems[0]}",
        placement=placement if keep_placement else None,
    )
