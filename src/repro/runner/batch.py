"""Parallel batch runner: fan instances × solvers across processes.

A sweep is a list of :class:`SweepTask` — (solver name, instance spec,
budget, timeout) — executed either inline (``workers=1``) or on a
``fork`` process pool.  Tasks describe instances by *spec* (generator
name + parameters), not by object, so they pickle cheaply and every
worker regenerates its instance deterministically from the seed.

Per-task timeouts use ``SIGALRM`` (POSIX): the solver is interrupted in
place and the task reports ``status="timeout"`` instead of stalling the
sweep.  Results stream into a :class:`~repro.runner.store.ResultStore`
as they complete, and a re-run with ``resume=True`` skips every task
whose key is already stored — sweeps survive crashes and grow
incrementally across commits.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..instances.generators import make_instance
from . import registry
from .result import SolveResult, Status
from .store import ResultStore

__all__ = ["SweepTask", "SweepOutcome", "run_sweep", "tasks_for_corpus"]

#: Solver whose sweep tasks are vectorised through
#: :func:`repro.algorithms.batched.solve_many` instead of one-by-one.
_BATCH_SOLVER = "multiple-nod-dp"


@dataclass(frozen=True)
class SweepTask:
    """One unit of work: run one solver on one generated instance."""

    solver: str
    spec: Mapping  # instance spec for make_instance(); must carry "name"
    budget: Optional[int] = None
    timeout: Optional[float] = None

    @property
    def instance_id(self) -> str:
        return str(self.spec.get("name") or self.spec.get("kind", "instance"))

    @property
    def seed(self) -> int:
        return int(self.spec.get("seed", 0))

    @property
    def key(self) -> str:
        return f"{self.instance_id}@{self.seed}::{self.solver}"


@dataclass
class SweepOutcome:
    """What a sweep did: fresh results plus rows skipped via resume."""

    results: List[SolveResult] = field(default_factory=list)
    n_run: int = 0
    n_skipped: int = 0

    @property
    def all_results(self) -> List[SolveResult]:
        return self.results


class _Timeout(BaseException):
    """Internal: the SIGALRM fired before the solver returned.

    Derives from ``BaseException`` so the registry's uniform
    ``except Exception`` normalisation cannot swallow it — a timeout
    must surface as ``status="timeout"``, not ``"error"``.
    """


def _run_task(task: SweepTask) -> SolveResult:
    """Execute one task in the current process, enforcing its timeout."""
    try:
        instance = make_instance(task.spec)
    except Exception as exc:  # noqa: BLE001 — a bad spec is a task outcome
        return SolveResult(
            solver=task.solver, instance=task.instance_id, seed=task.seed,
            status=Status.ERROR, error=f"spec error — {type(exc).__name__}: {exc}",
        )

    use_alarm = (
        task.timeout is not None
        and task.timeout > 0
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return registry.solve(
            task.solver, instance,
            budget=task.budget, instance_id=task.instance_id, seed=task.seed,
        )

    def _on_alarm(signum, frame):  # noqa: ANN001 — signal handler signature
        raise _Timeout()

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    try:
        # Armed inside the try: were the timer started before it, an
        # immediate expiry could raise _Timeout past the except below.
        signal.setitimer(signal.ITIMER_REAL, float(task.timeout))
        return registry.solve(
            task.solver, instance,
            budget=task.budget, instance_id=task.instance_id, seed=task.seed,
        )
    except _Timeout:
        return SolveResult(
            solver=task.solver, instance=task.instance_id, seed=task.seed,
            status=Status.TIMEOUT, wall_time=float(task.timeout),
            error=f"timed out after {task.timeout:g}s",
        )
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _run_batched_tasks(tasks: Sequence[SweepTask]) -> List[SolveResult]:
    """Run same-solver DP tasks as shape-bucketed array programs.

    Rows are exactly what :func:`registry.solve` would produce for each
    task (same statuses, costs, bounds and replica lists — the batched
    path is bit-identical and outcomes go through the registry's own
    normaliser); only ``wall_time`` differs, carrying the amortised
    per-instance share of the batch.
    """
    from ..algorithms.batched import solve_many as batched_solve

    results: List[SolveResult] = []
    instances = []
    runnable: List[SweepTask] = []
    for task in tasks:
        try:
            instance = make_instance(task.spec)
        except Exception as exc:  # noqa: BLE001 — a bad spec is a task outcome
            results.append(SolveResult(
                solver=task.solver, instance=task.instance_id, seed=task.seed,
                status=Status.ERROR,
                error=f"spec error — {type(exc).__name__}: {exc}",
            ))
            continue
        reason = registry.get_solver(task.solver).inapplicable_reason(instance)
        if reason is not None:
            results.append(SolveResult(
                solver=task.solver, instance=task.instance_id, seed=task.seed,
                status=Status.INAPPLICABLE, error=reason,
            ))
            continue
        instances.append(instance)
        runnable.append(task)
    if instances:
        t0 = time.perf_counter()
        outcomes = batched_solve(instances, return_exceptions=True)
        per_instance = (time.perf_counter() - t0) / len(instances)
        for task, instance, outcome in zip(runnable, instances, outcomes):
            results.append(registry.result_from_outcome(
                task.solver, instance, outcome, per_instance,
                instance_id=task.instance_id, seed=task.seed,
            ))
    return results


def tasks_for_corpus(
    specs: Sequence[Mapping],
    solvers: Optional[Sequence[str]] = None,
    *,
    budget: Optional[int] = None,
    timeout: Optional[float] = None,
    strict: bool = True,
) -> List[SweepTask]:
    """Cross a corpus of instance specs with solvers.

    Without an explicit solver list, every registered solver applicable
    to each instance is used.  With one, ``strict=True`` still drops
    (solver, instance) pairs the solver declares itself inapplicable to
    — they would only produce noise rows.
    """
    tasks: List[SweepTask] = []
    for spec in specs:
        instance = make_instance(spec)
        if solvers is None:
            names = [s.name for s in registry.solvers_for(instance)]
        else:
            names = []
            for name in solvers:
                s = registry.get_solver(name)
                if not strict or s.applicable(instance):
                    names.append(name)
        for name in names:
            tasks.append(
                SweepTask(solver=name, spec=spec, budget=budget, timeout=timeout)
            )
    return tasks


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    retry_statuses: Tuple[str, ...] = (Status.ERROR,),
    on_result: Optional[Callable[[SolveResult], None]] = None,
    batch: bool = True,
) -> SweepOutcome:
    """Run a sweep, streaming results into ``store`` as they complete.

    ``resume=True`` (with a store) skips tasks whose key already has a
    row and returns the stored rows (``cached=True``) in their place —
    except rows whose status is in ``retry_statuses``, which are
    recomputed (a later append supersedes the old row, since
    :meth:`ResultStore.latest` is last-write-wins).  By default only
    ``"error"`` rows (crashes, typically transient) are retried;
    timeouts and budget exhaustions are deterministic outcomes and stay
    cached — pass ``retry_statuses=("error", "timeout")`` to re-attempt
    them too.  ``workers>1`` fans tasks over a ``fork`` pool — solver
    registrations and test-registered solvers are inherited by the
    children.

    ``batch=True`` (the default) peels off pending Multiple-NoD DP
    tasks without a timeout and runs them through the vectorised
    :func:`repro.algorithms.batched.solve_many` — one array program per
    tree shape, bit-identical rows — before the remaining tasks are
    dispatched as usual.
    """
    outcome = SweepOutcome()
    done: dict = {}
    if store is not None and resume:
        done = store.latest()

    pending: List[SweepTask] = []
    for task in tasks:
        prior = done.get(task.key)
        if prior is not None and prior.status not in retry_statuses:
            outcome.results.append(prior)
            outcome.n_skipped += 1
        else:
            pending.append(task)

    def _collect(res: SolveResult) -> None:
        outcome.results.append(res)
        outcome.n_run += 1
        if store is not None:
            store.append(res)
        if on_result is not None:
            on_result(res)

    if batch:
        # SIGALRM timeouts can't interrupt individual solves inside one
        # array program, so timeout-carrying tasks stay sequential.
        batchable = [
            t for t in pending
            if t.solver == _BATCH_SOLVER and t.timeout is None
        ]
        if len(batchable) >= 2:
            pending = [
                t for t in pending
                if not (t.solver == _BATCH_SOLVER and t.timeout is None)
            ]
            for res in _run_batched_tasks(batchable):
                _collect(res)

    if workers <= 1 or len(pending) <= 1:
        for task in pending:
            _collect(_run_task(task))
        return outcome

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=min(workers, len(pending))) as pool:
        for res in pool.imap_unordered(_run_task, pending, chunksize=1):
            _collect(res)
    return outcome


