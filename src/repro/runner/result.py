"""Uniform solver outcome record.

Every solver invocation through the registry — interactive, batch or
CI — produces one :class:`SolveResult`: the objective, validity verdict,
wall time, solver counters and a machine-readable status.  Results are
plain data (no :class:`~repro.core.placement.Placement` reference is
kept beyond the replica set) so they can cross process boundaries and
round-trip through the JSON-lines store unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.placement import Placement

__all__ = ["SolveResult", "Status"]


class Status:
    """Allowed values of :attr:`SolveResult.status`."""

    OK = "ok"
    INVALID = "invalid"
    INFEASIBLE = "infeasible"
    INAPPLICABLE = "inapplicable"
    BUDGET = "budget"
    TIMEOUT = "timeout"
    ERROR = "error"

    ALL = (OK, INVALID, INFEASIBLE, INAPPLICABLE, BUDGET, TIMEOUT, ERROR)


@dataclass
class SolveResult:
    """Outcome of running one solver on one instance.

    Attributes
    ----------
    solver:
        Registry name of the solver (e.g. ``"single-gen"``).
    instance:
        Stable instance identifier — for generated corpora the spec
        name, for files the file name.
    status:
        One of :class:`Status`; ``"ok"`` means a checker-valid placement
        was produced.
    n_replicas:
        The objective ``|R|`` (``None`` unless a placement was produced).
    lower_bound:
        Combinatorial lower bound of the instance, for ratio reporting.
    wall_time:
        Solver wall-clock seconds (excludes instance generation).
    counters:
        Solver-specific work counters (nodes expanded, subsets explored,
        local-search rounds, ...).
    replicas:
        The replica set, for diffing placements across commits.
    error:
        ``"ExceptionType: message"`` for non-``ok`` outcomes.
    seed:
        Seed of the generated instance (0 for file-backed instances).
    cached:
        True when the row was loaded from a store instead of computed.
    placement:
        The full :class:`~repro.core.placement.Placement` (assignments
        included), populated only when the registry is asked to keep it
        (``solve(..., keep_placement=True)``).  Transport-only: never
        persisted to a store and excluded from :meth:`to_dict`.
    """

    solver: str
    instance: str
    status: str
    n_replicas: Optional[int] = None
    lower_bound: Optional[int] = None
    wall_time: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    replicas: List[int] = field(default_factory=list)
    error: Optional[str] = None
    seed: int = 0
    cached: bool = False
    placement: Optional["Placement"] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True iff the solver produced a checker-valid placement."""
        return self.status == Status.OK

    @property
    def key(self) -> str:
        """Resume key: one row per (instance, seed, solver)."""
        return f"{self.instance}@{self.seed}::{self.solver}"

    # ------------------------------------------------------------------
    _TRANSPORT_ONLY = ("cached", "placement")

    def to_dict(self) -> dict:
        """Plain-JSON representation (one store row)."""
        d = {}
        for f in fields(self):
            if f.name in self._TRANSPORT_ONLY:
                continue
            v = getattr(self, f.name)
            d[f.name] = dict(v) if isinstance(v, dict) else (
                list(v) if isinstance(v, list) else v
            )
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "SolveResult":
        """Inverse of :meth:`to_dict`; tolerates unknown extra keys."""
        known = {
            "solver", "instance", "status", "n_replicas", "lower_bound",
            "wall_time", "counters", "replicas", "error", "seed",
        }
        kw = {k: v for k, v in data.items() if k in known}
        return cls(**kw)
