"""Default sweep corpus: a scenario-diverse set of instance specs.

Specs are plain dicts consumed by
:func:`repro.instances.generators.make_instance` — picklable, JSON-able
and deterministic given their seed.  The default corpus mixes every
topology family and both policies, with and without distance
constraints, so a single ``repro sweep`` exercises each registered
solver on the regimes it claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["default_corpus"]


def _spec(name: str, kind: str, **params) -> Dict:
    return {"name": name, "kind": kind, **params}


def default_corpus(limit: Optional[int] = None, seed0: int = 0) -> List[Dict]:
    """The standard benchmark corpus (24 instances by default).

    ``limit`` truncates the list — ``repro sweep --limit 4`` is the CI
    smoke configuration; ``seed0`` shifts every seed so distinct sweeps
    never share instances.
    """
    specs: List[Dict] = []

    # Single policy, distance-constrained: general random topologies.
    for i in range(4):
        specs.append(_spec(
            f"single-rnd-d{i}", "random_tree",
            n_internal=8 + 2 * i, n_clients=16 + 4 * i, capacity=20,
            dmax=5.0 + i, policy="single", max_arity=4, seed=seed0 + i,
        ))
    # Single policy, NoD: unlocks single-nod / single-push.
    for i in range(4):
        specs.append(_spec(
            f"single-rnd-nod{i}", "random_tree",
            n_internal=8 + 2 * i, n_clients=16 + 4 * i, capacity=18,
            dmax=None, policy="single", max_arity=3, seed=seed0 + 10 + i,
        ))
    # Multiple policy on binary trees: multiple-bin's home turf.  A
    # binary skeleton of n internal nodes can host at most n+1 clients.
    for i in range(4):
        specs.append(_spec(
            f"multi-bin-d{i}", "random_binary_tree",
            n_internal=9 + 2 * i, n_clients=8 + 2 * i, capacity=10,
            dmax=None if i % 2 else 6.0 + i, policy="multiple",
            request_range=[1, 8], seed=seed0 + 20 + i,
        ))
    # Multiple policy, general arity (multiple-greedy / exact-multiple).
    for i in range(3):
        specs.append(_spec(
            f"multi-rnd{i}", "random_tree",
            n_internal=6 + i, n_clients=10 + 2 * i, capacity=12,
            dmax=None if i == 0 else 7.0, policy="multiple",
            max_arity=3, request_range=[1, 10], seed=seed0 + 30 + i,
        ))
    # Structured families: deep, fanned and degenerate shapes.
    for i in range(3):
        specs.append(_spec(
            f"caterpillar{i}", "caterpillar",
            length=12 + 6 * i, capacity=15, dmax=None if i == 2 else 4.0,
            policy="single", seed=seed0 + 40 + i,
        ))
    for i in range(3):
        specs.append(_spec(
            f"broom{i}", "broom",
            handle=4 + i, n_clients=10 + 3 * i, capacity=16,
            dmax=None if i == 1 else float(6 + i), policy="single",
            seed=seed0 + 50 + i,
        ))
    for i in range(3):
        specs.append(_spec(
            f"star{i}", "star",
            n_clients=12 + 4 * i, capacity=14,
            dmax=None if i == 0 else 2.0, policy="single",
            request_range=[1, 9], seed=seed0 + 60 + i,
        ))

    if limit is not None:
        specs = specs[: max(0, int(limit))]
    return specs
