"""Unified solver registry and parallel experiment runner.

The substrate every experiment in this repository runs on:

* :mod:`~repro.runner.registry` — the :class:`Solver` protocol, the
  ``@register_solver`` decorator all algorithms use, and the uniform
  ``solve(name, instance, budget=...) -> SolveResult`` entry point;
* :mod:`~repro.runner.batch` — a multiprocessing sweep runner with
  per-task timeouts and deterministic seeds;
* :mod:`~repro.runner.store` — an append-only JSON-lines result store
  making sweeps resumable and diffable across commits;
* :mod:`~repro.runner.corpus` — the default scenario-diverse corpus.

Exposed on the CLI as ``repro sweep`` and ``repro compare``.
"""

from .corpus import default_corpus
from .registry import (
    DuplicateSolverError,
    Solver,
    SolverSpec,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    solve,
    solvers_for,
    unregister_solver,
)
from .result import SolveResult, Status
from .store import ResultStore
from .batch import SweepOutcome, SweepTask, run_sweep, tasks_for_corpus

__all__ = [
    "Solver",
    "SolverSpec",
    "SolveResult",
    "Status",
    "DuplicateSolverError",
    "UnknownSolverError",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "available_solvers",
    "solvers_for",
    "solve",
    "ResultStore",
    "SweepTask",
    "SweepOutcome",
    "run_sweep",
    "tasks_for_corpus",
    "default_corpus",
]
