"""Online re-placement: keep a placement current under changing traffic.

The top layer of the stack (``core → algorithms → runner → service →
dynamic``): where the lower layers solve one static snapshot, this
package maintains a **standing placement** as the snapshot drifts —
client demand changes, hosts crash, capacity is resized — re-solving
only the *dirty subtrees* an event touched instead of the whole tree.

Entry points:

* :class:`DynamicPlacement` — the engine: wraps an instance + standing
  placement, folds :data:`ChangeEvent` batches via :meth:`apply`, and
  exposes :meth:`resolve_full` for repair-vs-resolve comparisons.
* :func:`random_event_trace` — seeded randomized event traces for
  experiments and property tests.
* :class:`IncrementalNodDP` / :class:`IncrementalSingleNod` — the
  memoized bottom-up solvers, reusable directly.

Invalidation is content-addressed: every cached subtree result is keyed
by a Merkle fingerprint of that subtree (see
:mod:`repro.dynamic.fingerprints`), so "dirty" is simply "the key no
longer matches" and incremental results are byte-identical to a cold
solve.  See ``docs/simulation.md`` for the event model and
``docs/architecture.md`` for where this layer sits.
"""

from .engine import (
    MODE_FULL_RESOLVE,
    MODE_INCREMENTAL,
    MODE_INCREMENTAL_REPAIR,
    DynamicPlacement,
    DynamicStats,
    RepairOutcome,
    trace_outcomes,
)
from .events import (
    CapacityEvent,
    ChangeEvent,
    DemandEvent,
    FailureEvent,
    apply_event,
    apply_events_batch,
    describe_events,
    event_from_wire,
    event_to_wire,
    random_event_trace,
)
from .fingerprints import instance_salt, root_fingerprint, subtree_fingerprints
from .incremental import (
    IncrementalNodDP,
    IncrementalSingleNod,
    IncrementalStats,
    IncrementalUnsupported,
)

__all__ = [
    "DynamicPlacement",
    "RepairOutcome",
    "DynamicStats",
    "trace_outcomes",
    "MODE_INCREMENTAL",
    "MODE_INCREMENTAL_REPAIR",
    "MODE_FULL_RESOLVE",
    "DemandEvent",
    "FailureEvent",
    "CapacityEvent",
    "ChangeEvent",
    "apply_event",
    "apply_events_batch",
    "random_event_trace",
    "describe_events",
    "event_to_wire",
    "event_from_wire",
    "subtree_fingerprints",
    "instance_salt",
    "root_fingerprint",
    "IncrementalNodDP",
    "IncrementalSingleNod",
    "IncrementalStats",
    "IncrementalUnsupported",
]
