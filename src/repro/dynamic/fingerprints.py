"""Bottom-up subtree fingerprints — the dirty-subtree invalidation key.

The incremental solvers cache one result per tree node.  Rather than
tracking dirtiness imperatively (easy to get wrong as event kinds grow),
each cached entry is keyed by a *Merkle-style fingerprint* of the
subtree it was computed from: a 128-bit blake2b hash combining the
node's own solver-relevant data (demand, edge distance, failed flag)
with the fingerprints of its children, salted with the instance-global
parameters (capacity, policy).

The invariants this buys:

* a demand change at client ``c`` changes exactly the fingerprints of
  ``c`` and its ancestors — sibling subtrees keep their keys, so their
  cached solves stay valid with no bookkeeping;
* a host failure re-keys the failed node's root path the same way;
* a capacity change re-keys *every* node (the salt changed), so a
  global parameter shift degrades gracefully to a full recompute
  instead of a stale splice.

The root fingerprint doubles as the content identity of the whole
mutable snapshot; the service layer uses it to invalidate its
request-level result cache after :meth:`PlacementService.apply_events`.
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import FrozenSet, List

from ..core.instance import ProblemInstance
from ..core.tree import Tree

__all__ = ["subtree_fingerprints", "instance_salt", "root_fingerprint"]

_DIGEST_SIZE = 16


def instance_salt(instance: ProblemInstance) -> bytes:
    """Global salt: everything solver-relevant that is not per-node.

    Capacity, policy and ``dmax`` participate; the display ``name`` does
    not (same contract as the service-layer instance fingerprint).
    """
    dmax = -1.0 if instance.dmax is None else float(instance.dmax)
    return struct.pack(
        "<qd", int(instance.capacity), dmax
    ) + instance.policy.value.encode("utf-8")


def subtree_fingerprints(
    tree: Tree,
    salt: bytes,
    failed: FrozenSet[int] = frozenset(),
) -> List[bytes]:
    """One 128-bit fingerprint per node, children-first.

    ``fps[v]`` identifies the solver-relevant content of ``subtree(v)``
    under the given global ``salt``: demands, edge distances, failure
    flags, and the shape of the subtree (children order included —
    the solvers' tie-breaking depends on it).
    """
    n = len(tree)
    fps: List[bytes] = [b""] * n
    for v in tree.postorder():
        h = blake2b(digest_size=_DIGEST_SIZE)
        h.update(salt)
        h.update(
            struct.pack(
                "<qdB",
                tree.requests(v),
                tree.delta(v),
                1 if v in failed else 0,
            )
        )
        for c in tree.children(v):
            h.update(fps[c])
        fps[v] = h.digest()
    return fps


def root_fingerprint(
    instance: ProblemInstance, failed: FrozenSet[int] = frozenset()
) -> str:
    """Hex fingerprint of the whole snapshot (tree + failures + salt)."""
    fps = subtree_fingerprints(
        instance.tree, instance_salt(instance), failed
    )
    return fps[instance.tree.root].hex()
