"""Change events consumed by the online re-placement engine.

The static model solves one snapshot; a running deployment sees the
snapshot *drift*: client demand rises and falls, machines crash, and
operators resize server capacity.  This module types that drift as three
event kinds, all referring to an existing tree topology (the node set is
immutable — growing the tree is a new instance, not an event):

* :class:`DemandEvent` — client ``client`` now issues ``requests``
  requests per unit (an absolute level, not a delta, so event traces are
  replayable from any point);
* :class:`FailureEvent` — ``node`` crashed and may never host a replica
  again (it still routes traffic: the network position survives, the
  machine does not — the same model as :mod:`repro.simulate.failures`);
* :class:`CapacityEvent` — the global per-replica capacity ``W`` becomes
  ``capacity`` (a fleet-wide resize; it dirties every subtree by
  definition).

:func:`apply_event` folds one event into a
:class:`~repro.core.instance.ProblemInstance` (returning the new
instance plus the failed-host delta), and :func:`random_event_trace`
draws seeded randomized traces for experiments and property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.errors import InvalidInstanceError
from ..core.instance import ProblemInstance

__all__ = [
    "DemandEvent",
    "FailureEvent",
    "CapacityEvent",
    "ChangeEvent",
    "apply_event",
    "apply_events_batch",
    "random_event_trace",
    "describe_events",
    "event_to_wire",
    "event_from_wire",
]


@dataclass(frozen=True)
class DemandEvent:
    """Client ``client`` now issues ``requests`` requests per unit."""

    client: int
    requests: int

    def describe(self) -> str:
        return f"demand[{self.client}]={self.requests}"


@dataclass(frozen=True)
class FailureEvent:
    """``node`` crashed and can no longer host a replica."""

    node: int

    def describe(self) -> str:
        return f"fail[{self.node}]"


@dataclass(frozen=True)
class CapacityEvent:
    """The global per-replica capacity ``W`` becomes ``capacity``."""

    capacity: int

    def describe(self) -> str:
        return f"capacity={self.capacity}"


ChangeEvent = Union[DemandEvent, FailureEvent, CapacityEvent]


def apply_event(
    instance: ProblemInstance,
    event: ChangeEvent,
) -> Tuple[ProblemInstance, Optional[int]]:
    """Fold ``event`` into ``instance``.

    Parameters
    ----------
    instance:
        The current problem snapshot.
    event:
        One :data:`ChangeEvent`.

    Returns
    -------
    ``(new_instance, newly_failed)`` — the updated instance and, for
    :class:`FailureEvent`, the node that just crashed (``None``
    otherwise; failed-host bookkeeping lives in the engine, not on the
    instance, because the paper's instance model has no failure notion).

    Raises
    ------
    InvalidInstanceError
        If the event is inconsistent with the topology: a demand event
        naming an internal node or carrying a negative level, or a
        capacity event with a non-positive ``W``.
    """
    tree = instance.tree
    if isinstance(event, DemandEvent):
        if not 0 <= event.client < len(tree):
            raise InvalidInstanceError(
                f"demand event names unknown node {event.client}"
            )
        if not tree.is_leaf(event.client):
            raise InvalidInstanceError(
                f"demand event targets internal node {event.client}; only "
                "clients (leaves) issue requests"
            )
        if event.requests < 0:
            raise InvalidInstanceError(
                f"demand event carries negative level {event.requests}"
            )
        requests = [tree.requests(v) for v in range(len(tree))]
        requests[event.client] = event.requests
        return (
            ProblemInstance(
                tree.with_requests(requests),
                instance.capacity,
                instance.dmax,
                instance.policy,
                instance.name,
            ),
            None,
        )
    if isinstance(event, FailureEvent):
        if not 0 <= event.node < len(tree):
            raise InvalidInstanceError(
                f"failure event names unknown node {event.node}"
            )
        return instance, event.node
    if isinstance(event, CapacityEvent):
        if event.capacity <= 0:
            raise InvalidInstanceError(
                f"capacity event carries non-positive W {event.capacity}"
            )
        return (
            ProblemInstance(
                tree,
                event.capacity,
                instance.dmax,
                instance.policy,
                instance.name,
            ),
            None,
        )
    raise InvalidInstanceError(f"unknown event type {type(event).__name__}")


def apply_events_batch(
    instance: ProblemInstance,
    events: Sequence[ChangeEvent],
) -> Tuple[ProblemInstance, FrozenSet[int]]:
    """Fold a whole event batch into ``instance`` with one tree rebuild.

    Semantically identical to folding the batch through
    :func:`apply_event` one event at a time (demand events are absolute
    levels, so last-wins per client; capacity likewise), but the demand
    updates are collected into a single ``with_requests`` rebuild, so a
    batch of ``k`` demand events costs O(n + k) instead of O(n·k).  The
    replay layer leans on this: a diurnal tick on a 10k-client tree is
    one batch of ~10k demand events.

    Validation matches :func:`apply_event` exactly and is performed
    *before* any instance is built, so — like the engine's own batch
    contract — an invalid event anywhere in the batch rejects the whole
    batch with ``InvalidInstanceError`` and no partial state.

    Returns ``(new_instance, newly_failed)`` where ``newly_failed`` is
    the frozenset of nodes crashed by this batch.
    """
    tree = instance.tree
    n = len(tree)
    levels: dict = {}
    capacity = instance.capacity
    newly_failed = set()
    for event in events:
        if isinstance(event, DemandEvent):
            if not 0 <= event.client < n:
                raise InvalidInstanceError(
                    f"demand event names unknown node {event.client}"
                )
            if not tree.is_leaf(event.client):
                raise InvalidInstanceError(
                    f"demand event targets internal node {event.client}; "
                    "only clients (leaves) issue requests"
                )
            if event.requests < 0:
                raise InvalidInstanceError(
                    f"demand event carries negative level {event.requests}"
                )
            levels[event.client] = event.requests
        elif isinstance(event, FailureEvent):
            if not 0 <= event.node < n:
                raise InvalidInstanceError(
                    f"failure event names unknown node {event.node}"
                )
            newly_failed.add(event.node)
        elif isinstance(event, CapacityEvent):
            if event.capacity <= 0:
                raise InvalidInstanceError(
                    f"capacity event carries non-positive W {event.capacity}"
                )
            capacity = event.capacity
        else:
            raise InvalidInstanceError(
                f"unknown event type {type(event).__name__}"
            )
    new_tree = tree
    if levels:
        requests = [tree.requests(v) for v in range(n)]
        for client, level in levels.items():
            requests[client] = level
        new_tree = tree.with_requests(requests)
    if new_tree is tree and capacity == instance.capacity:
        return instance, frozenset(newly_failed)
    return (
        ProblemInstance(
            new_tree,
            capacity,
            instance.dmax,
            instance.policy,
            instance.name,
        ),
        frozenset(newly_failed),
    )


def random_event_trace(
    instance: ProblemInstance,
    *,
    steps: int = 20,
    events_per_step: int = 1,
    seed: int = 0,
    p_fail: float = 0.0,
    p_capacity: float = 0.0,
    failed: FrozenSet[int] = frozenset(),
    fail_leaves: bool = False,
) -> List[List[ChangeEvent]]:
    """Draw a seeded randomized event trace for ``instance``.

    Each of the ``steps`` entries is a batch of ``events_per_step``
    events.  Every event is a demand change by default; with probability
    ``p_fail`` it is a failure of a not-yet-failed non-root node, and
    with probability ``p_capacity`` a capacity resize within a factor of
    two of the current ``W``.  Demand levels are drawn Poisson around
    the current level (capped at ``W`` so Single instances stay
    feasible).  ``failed`` seeds the already-crashed set so traces can
    be extended.

    Failure events target internal nodes — *server* machines — unless
    ``fail_leaves=True``: a crashed client-host under the Single policy
    is frequently unrepairable (its whole demand must move to one
    ancestor with room), which is a modelling choice, not an engine
    property worth benchmarking by default.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    rng = np.random.default_rng(seed)
    tree = instance.tree
    clients = [c for c in tree.clients]
    W = instance.capacity
    down = set(failed)
    candidates = [
        v
        for v in range(1, len(tree))
        if fail_leaves or tree.is_internal(v)
    ]
    trace: List[List[ChangeEvent]] = []
    levels = {c: tree.requests(c) for c in clients}
    for _ in range(steps):
        batch: List[ChangeEvent] = []
        for _ in range(max(1, events_per_step)):
            roll = rng.random()
            if roll < p_fail:
                # A failure draw with no candidates left degrades to a
                # demand event — never to another event kind, which
                # would skew runs configured without that kind.
                alive = [v for v in candidates if v not in down]
                if alive:
                    node = int(alive[int(rng.integers(len(alive)))])
                    down.add(node)
                    batch.append(FailureEvent(node))
                    continue
            elif roll < p_fail + p_capacity:
                W = int(max(1, rng.integers(max(1, W // 2), 2 * W + 1)))
                batch.append(CapacityEvent(W))
                continue
            c = int(clients[int(rng.integers(len(clients)))])
            mean = max(1.0, float(levels[c]))
            level = int(min(W, rng.poisson(mean)))
            levels[c] = level
            batch.append(DemandEvent(c, level))
        trace.append(batch)
    return trace


def describe_events(events: Sequence[ChangeEvent]) -> str:
    """Compact one-line rendering of an event batch."""
    return ", ".join(e.describe() for e in events)


# -- wire codec ---------------------------------------------------------
# One JSON shape per event kind, shared by the HTTP dynamic endpoints
# and the storage layer's WAL records, so a persisted event replays
# byte-identically to the live one.

def event_to_wire(event: ChangeEvent) -> dict:
    """Plain-JSON representation of one change event."""
    if isinstance(event, DemandEvent):
        return {"kind": "demand", "client": event.client, "requests": event.requests}
    if isinstance(event, FailureEvent):
        return {"kind": "fail", "node": event.node}
    if isinstance(event, CapacityEvent):
        return {"kind": "capacity", "capacity": event.capacity}
    raise InvalidInstanceError(f"unknown event type {type(event).__name__}")


def event_from_wire(data: dict) -> ChangeEvent:
    """Inverse of :func:`event_to_wire`.

    Raises
    ------
    InvalidInstanceError
        For an unknown ``kind`` tag or missing/non-integer fields.
        Topology-level validation (does the client exist? is the level
        non-negative?) stays in :func:`apply_event`, which sees the
        instance.
    """
    if not isinstance(data, dict):
        raise InvalidInstanceError(
            f"event must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    try:
        if kind == "demand":
            return DemandEvent(int(data["client"]), int(data["requests"]))
        if kind == "fail":
            return FailureEvent(int(data["node"]))
        if kind == "capacity":
            return CapacityEvent(int(data["capacity"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidInstanceError(
            f"malformed {kind!r} event: {type(exc).__name__}: {exc}"
        ) from None
    raise InvalidInstanceError(f"unknown event kind {kind!r}")
