"""Incremental bottom-up solvers with per-subtree memoization.

Both NoD solvers in this repository are bottom-up folds: each node's
contribution is a pure function of its own data and what its children
hand up (DP tables for ``multiple-nod-dp``, entry bundles for
``single-nod``).  That makes them incrementally recomputable: cache the
per-node fold results keyed by the node's *subtree fingerprint*
(:mod:`repro.dynamic.fingerprints`), and after an event only the nodes
whose fingerprint changed — the event site and its root path — are
re-folded, while every untouched sibling subtree is reused verbatim.

Because a cache hit returns the byte-identical intermediate state a
cold run would compute, the incremental result **equals a from-scratch
solve exactly** — same cost, same placement — not just approximately.
That invariant is property-tested over randomized event traces in
``tests/test_dynamic.py``.

Two backends:

* :class:`IncrementalNodDP` — the exact Multiple-NoD dynamic program,
  extended with *forbidden hosts* so server failures are handled inside
  the optimality framework: a failed leaf must forward its demand, a
  failed internal node loses its absorb branch.  Still exact among
  placements avoiding the failed hosts.
* :class:`IncrementalSingleNod` — the paper's Algorithm 2 re-expressed
  as a fold over per-subtree *exports* (the aggregate entry or leftover
  entries a subtree pushes to its parent).  Greedy tie-breaking is
  reproduced exactly, including the original's reversed-children inbox
  order.  Forbidden hosts are **not** expressible in the greedy's
  replica-site choices; :class:`IncrementalUnsupported` is raised and
  the engine falls back (see :mod:`repro.dynamic.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.arrays import flat_tree
from ..core.kernels import (
    absorb_step,
    leaf_table,
    min_plus_mono,
    prefix_fit,
    stable_argsort,
)
from ..core.errors import InfeasibleInstanceError, PolicyError, ReproError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from .fingerprints import instance_salt, subtree_fingerprints

__all__ = [
    "IncrementalStats",
    "IncrementalUnsupported",
    "IncrementalNodDP",
    "IncrementalSingleNod",
]

_INF = float("inf")


class IncrementalUnsupported(ReproError):
    """The incremental backend cannot express this scenario.

    Raised instead of silently computing a wrong answer — the engine
    catches it and takes the documented fallback path.
    """


@dataclass(frozen=True)
class IncrementalStats:
    """How much work one incremental solve reused vs redid."""

    nodes_total: int = 0
    nodes_reused: int = 0
    nodes_recomputed: int = 0

    @property
    def reuse_fraction(self) -> float:
        """Reused nodes over all nodes (0.0 on a cold run)."""
        return self.nodes_reused / self.nodes_total if self.nodes_total else 0.0


def _check_nod(instance: ProblemInstance, who: str) -> None:
    if instance.has_distance_constraint:
        raise PolicyError(
            f"{who} solves the NoD variants only; distance-constrained "
            "instances take the engine's full-resolve fallback"
        )


class IncrementalNodDP:
    """Memoized exact Multiple-NoD DP with forbidden-host support.

    The per-node cache stores the DP table ``g_v`` plus the convolution
    and absorb bookkeeping reconstruction needs.  ``solve`` may be
    called repeatedly with mutated instances of the *same topology*
    (node set and parent relation); a topology change clears the cache.
    """

    name = "multiple-nod-dp"
    policy = Policy.MULTIPLE

    def __init__(self) -> None:
        self._topology: Optional[Tuple[int, ...]] = None
        # node -> (fingerprint, g, conv_args, absorb_from)
        self._memo: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        instance: ProblemInstance,
        failed: FrozenSet[int] = frozenset(),
    ) -> Tuple[Placement, IncrementalStats]:
        """Optimal Multiple-NoD placement avoiding the ``failed`` hosts.

        Parameters
        ----------
        instance:
            A Multiple-NoD instance (``dmax is None``).
        failed:
            Nodes that may not host a replica (they still route).

        Returns
        -------
        ``(placement, stats)`` — the optimal placement among those with
        no replica on a failed host, and the reuse statistics.

        Raises
        ------
        PolicyError
            If the instance carries a distance constraint or the Single
            policy.
        InfeasibleInstanceError
            If the demand cannot be covered without the failed hosts.
        """
        _check_nod(instance, "IncrementalNodDP")
        if instance.policy is not Policy.MULTIPLE:
            raise PolicyError("IncrementalNodDP solves Multiple instances")
        tree = instance.tree
        W = instance.capacity
        root = tree.root
        n = len(tree)

        topology = tuple(tree.parent(v) for v in range(n))
        if topology != self._topology:
            self._memo.clear()
            self._topology = topology

        # The re-fold runs on the flat substrate: post positions are
        # children-first, per-node data are contiguous array reads, and
        # depth / subtree demand come precompiled with the layout.  The
        # memo stays keyed by *original* node ids — that is what the
        # fingerprints key on, and it keeps cached entries valid across
        # the fresh Tree objects each event produces.
        ft = flat_tree(tree)
        post_to_orig = ft.post_to_orig
        depth = ft.depth
        demand = ft.demand
        sdem = ft.subtree_demand
        first_child = ft.first_child
        next_sibling = ft.next_sibling

        fps = subtree_fingerprints(tree, instance_salt(instance), failed)

        reused = recomputed = 0
        memo = self._memo
        for p in range(n):
            v = post_to_orig[p]
            cached = memo.get(v)
            if cached is not None and cached[0] == fps[v]:
                reused += 1
                continue
            recomputed += 1
            u_cap = min(sdem[p], W * depth[p])
            if first_child[p] < 0:
                r = demand[p]
                if v in failed:
                    # A failed leaf cannot serve itself: everything must
                    # be forwarded to (non-failed) ancestors.
                    table: List[float] = [
                        0.0 if u >= r else _INF for u in range(u_cap + 1)
                    ]
                else:
                    table = leaf_table(r, u_cap, W)
                memo[v] = (fps[v], table, None, None)
                continue
            pool_cap = min(sdem[p], W * (depth[p] + 1))
            pool: List[float] = [0.0]
            args: List[Tuple[int, List[int]]] = []
            c = first_child[p]
            while c >= 0:
                child = post_to_orig[c]
                pool, arg = min_plus_mono(memo[child][1], pool, pool_cap)
                args.append((child, arg))
                c = next_sibling[c]
            # Absorb branch: a replica at v takes 1..W of the pool —
            # unless v is a failed host, which loses the branch.
            table, chose = absorb_step(pool, u_cap, W, can_host=v not in failed)
            memo[v] = (fps[v], table, args, chose)

        stats = IncrementalStats(n, reused, recomputed)
        g_root = memo[root][1]
        if not g_root or g_root[0] == _INF:
            raise InfeasibleInstanceError(
                "demand cannot be covered"
                + (" without the failed hosts" if failed else "")
            )

        # Reconstruction: identical to the from-scratch DP, reading the
        # (cached or fresh) bookkeeping, plus the per-replica absorb
        # amount the direct routing below consumes.
        replicas: List[int] = []
        absorb: Dict[int, int] = {}
        forward: Dict[int, int] = {root: 0}
        stack = [root]
        while stack:
            v = stack.pop()
            u = forward[v]
            if tree.is_leaf(v):
                r = tree.requests(v)
                if u < r:
                    replicas.append(v)
                    absorb[v] = r - u
                continue
            _fp, _table, args, chose = memo[v]
            U = u
            src = chose[u]
            if src >= 0:
                replicas.append(v)
                absorb[v] = src - u
                U = src
            remaining = U
            for child, arg in reversed(args):
                take = arg[remaining]
                assert take >= 0
                forward[child] = take
                remaining -= take
                stack.append(child)
            assert remaining == 0

        assignments = self._route(ft, absorb)
        return Placement(replicas, assignments), stats

    @staticmethod
    def _route(ft, absorb: Dict[int, int]) -> Dict[Tuple[int, int], int]:
        """Direct client→replica routing from the DP's absorb amounts.

        The DP already fixed how many units each replica takes and how
        many units cross every parent edge; since any ancestor may
        serve any split of a descendant's demand under Multiple-NoD, a
        single bottom-up pass over the flat post-order suffices — no
        max-flow oracle.  Pending demand travels up as
        ``[client, amount]`` pairs and each replica consumes its absorb
        amount FIFO, so routing is deterministic and
        O(clients × depth) worst case.

        Parameters
        ----------
        ft:
            The instance tree's :class:`~repro.core.arrays.FlatTree`.
        absorb:
            Units each replica consumes, keyed by original node id.

        Returns
        -------
        The ``(client, server) -> amount`` assignment map (original
        node ids).
        """
        assignments: Dict[Tuple[int, int], int] = {}
        post_to_orig = ft.post_to_orig
        first_child = ft.first_child
        next_sibling = ft.next_sibling
        demand = ft.demand
        pending: List[Optional[List[List[int]]]] = [None] * ft.n
        for p in range(ft.n):
            v = post_to_orig[p]
            if first_child[p] < 0:
                r = demand[p]
                inc = [[v, r]] if r > 0 else []
            else:
                inc = []
                c = first_child[p]
                while c >= 0:
                    inc.extend(pending[c])
                    pending[c] = None
                    c = next_sibling[c]
            need = absorb.get(v, 0)
            k = 0
            while need > 0:
                client, amount = inc[k]
                take = min(amount, need)
                assignments[(client, v)] = (
                    assignments.get((client, v), 0) + take
                )
                inc[k][1] -= take
                need -= take
                if inc[k][1] == 0:
                    k += 1
            pending[p] = [e for e in inc if e[1] > 0]
        assert not pending[ft.root], "DP forwarded demand past the root"
        return assignments


# ----------------------------------------------------------------------
# Single-NoD: Algorithm 2 as a fold over per-subtree exports.
# ----------------------------------------------------------------------

#: An entry: a pending group of whole clients rooted at ``node``.
#: ``bundle`` is a tuple of ``(client, amount)`` pairs; demand ≤ W.
_Entry = Tuple[int, int, Tuple[Tuple[int, int], ...]]
#: What subtree(v) pushes to parent(v): one aggregate entry, leftover
#: entries from a packing at v, or nothing.
_Export = Optional[Tuple[str, tuple]]
#: Replicas opened while processing a node: ((site, bundle), ...).
_Contribution = Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...]


class IncrementalSingleNod:
    """Memoized Algorithm 2 (``single-nod``) for Single-NoD.

    Every node's processing is a pure function of its children's
    exports, so per-subtree results memoize exactly like the DP.  The
    original's tie-breaking is reproduced bit-for-bit: leftover entries
    arrive in reversed-children order (the from-scratch postorder inbox
    order), aggregates in children order, and the packing sort is
    stable — so incremental and from-scratch runs return *identical*
    placements, not merely equal costs.
    """

    name = "single-nod"
    policy = Policy.SINGLE

    def __init__(self) -> None:
        self._topology: Optional[Tuple[int, ...]] = None
        # node -> (fingerprint, export, contribution)
        self._memo: Dict[int, Tuple[bytes, _Export, _Contribution]] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        instance: ProblemInstance,
        failed: FrozenSet[int] = frozenset(),
    ) -> Tuple[Placement, IncrementalStats]:
        """Single-NoD placement via the memoized greedy fold.

        Parameters
        ----------
        instance:
            A Single-NoD instance (``dmax is None``).
        failed:
            Must be empty — the greedy pins replica sites (``j``, the
            overflow entry's node, root leftovers) and cannot relocate
            them; pass failures through the engine's repair fallback.

        Returns
        -------
        ``(placement, stats)`` — identical to a from-scratch
        :func:`repro.algorithms.single_nod.single_nod` run.

        Raises
        ------
        IncrementalUnsupported
            If ``failed`` is non-empty.
        PolicyError
            If the instance carries a distance constraint or the
            Multiple policy.
        InfeasibleInstanceError
            If some client demands more than ``W``.
        """
        _check_nod(instance, "IncrementalSingleNod")
        if instance.policy is not Policy.SINGLE:
            raise PolicyError("IncrementalSingleNod solves Single instances")
        if failed:
            raise IncrementalUnsupported(
                "single-nod pins replica sites; failed hosts are handled "
                "by the engine's greedy-repair fallback"
            )
        tree = instance.tree
        W = instance.capacity
        if tree.max_request > W:
            raise InfeasibleInstanceError(
                f"a client demands {tree.max_request} > W={W}; "
                "no Single placement exists"
            )

        topology = tuple(tree.parent(v) for v in range(len(tree)))
        if topology != self._topology:
            self._memo.clear()
            self._topology = topology

        fps = subtree_fingerprints(tree, instance_salt(instance), failed)
        ft = flat_tree(tree)
        memo = self._memo
        reused = recomputed = 0
        for p in range(ft.n):
            j = ft.post_to_orig[p]
            cached = memo.get(j)
            if cached is not None and cached[0] == fps[j]:
                reused += 1
                continue
            recomputed += 1
            export, contribution = self._process(ft, W, p)
            memo[j] = (fps[j], export, contribution)

        replicas: List[int] = []
        assignments: Dict[Tuple[int, int], int] = {}
        for j in tree.topological_order():
            for site, bundle in memo[j][2]:
                replicas.append(site)
                for client, amount in bundle:
                    assignments[(client, site)] = (
                        assignments.get((client, site), 0) + amount
                    )
        stats = IncrementalStats(len(tree), reused, recomputed)
        return Placement(replicas, assignments), stats

    # ------------------------------------------------------------------
    def _process(self, ft, W: int, p: int) -> Tuple[_Export, _Contribution]:
        """Fold one node given its children's memoized exports.

        Parameters
        ----------
        ft:
            The instance tree's :class:`~repro.core.arrays.FlatTree`;
            the fold walks its ``first_child`` / ``next_sibling``
            chains and ``demand`` array instead of the object graph.
        W:
            Server capacity.
        p:
            Post position of the node to fold (exports and
            contributions still carry *original* node ids — the memo
            key space).

        Returns
        -------
        ``(export, contribution)`` — what ``subtree(p)`` pushes to its
        parent, and the replicas opened while processing ``p``;
        bit-identical to the from-scratch Algorithm 2.
        """
        post_to_orig = ft.post_to_orig
        j = post_to_orig[p]
        is_root = p == ft.root
        if ft.first_child[p] < 0:
            r = ft.demand[p]
            if is_root:
                return None, (((j, ((j, r),)),) if r > 0 else ())
            if r == 0:
                return None, ()
            return ("agg", ((j, r, ((j, r),)),)), ()

        # Reproduce the from-scratch entry order: the postorder inbox
        # collects leftovers child-by-child in *reversed* children order,
        # then aggregates append in children order.
        entries: List[_Entry] = []
        children: List[int] = []
        c = ft.first_child[p]
        while c >= 0:
            children.append(post_to_orig[c])
            c = ft.next_sibling[c]
        for c in reversed(children):
            export = self._memo[c][1]
            if export is not None and export[0] == "left":
                entries.extend(export[1])
        for c in children:
            export = self._memo[c][1]
            if export is not None and export[0] == "agg":
                entries.extend(export[1])

        total = sum(e[1] for e in entries)
        if total > W:
            # Stable smallest-first packing, as in Algorithm 2 — the
            # shared kernel helpers keep every tie-break identical.
            order = stable_argsort([e[1] for e in entries])
            entries = [entries[i] for i in order]
            k = prefix_fit([e[1] for e in entries], W)
            assert k < len(entries)  # total > W and demands ≤ W
            overflow = entries[k]
            contribution: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = [
                (j, _merge_bundles(entries[:k])),
                (overflow[0], overflow[2]),
            ]
            leftovers = tuple(entries[k + 1 :])
            if not is_root:
                return ("left", leftovers), tuple(contribution)
            # Paper's R3: at the root, each leftover opens its own replica.
            contribution.extend((e[0], e[2]) for e in leftovers)
            return None, tuple(contribution)

        if total == 0:
            return None, ()
        merged = (j, total, _merge_bundles(entries))
        if is_root:
            return None, ((j, merged[2]),)
        return ("agg", (merged,)), ()


def _merge_bundles(
    entries: Sequence[_Entry],
) -> Tuple[Tuple[int, int], ...]:
    out: List[Tuple[int, int]] = []
    for _node, _demand, bundle in entries:
        out.extend(bundle)
    return tuple(out)
