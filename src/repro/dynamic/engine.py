"""The online re-placement engine: :class:`DynamicPlacement`.

A :class:`DynamicPlacement` wraps a standing ``(instance, placement)``
pair and keeps the placement current as :mod:`change events
<repro.dynamic.events>` arrive, re-solving *incrementally* — only the
subtrees an event dirtied are re-folded (see
:mod:`repro.dynamic.incremental`) — instead of from scratch every tick.

Repair strategy per :meth:`apply` call, in order of preference:

1. **incremental** — the memoized backend re-folds the dirty root
   path; the result provably equals a from-scratch solve.  Available
   for NoD instances: ``multiple-nod-dp`` (failures handled exactly via
   forbidden hosts) and ``single-nod`` (demand/capacity events).
2. **incremental + greedy repair** — Single-policy failures: the
   greedy pins replica sites, so the engine solves ignoring failures
   and then reroutes orphaned demand off failed hosts with
   :func:`repro.simulate.failures.repair_placement`.  Cost may drift
   above the solver's figure; the drift is visible in the outcome.
3. **full-resolve fallback** — distance-constrained instances (and any
   explicitly requested non-incremental solver): optimal substructure
   does not survive the subtree boundary (a served client's distance
   slack depends on where *outside* the subtree its server sits), so
   every event batch re-solves through the registry.  The outcome
   records the documented reason.

A failed repair (the new snapshot is infeasible, or greedy repair finds
no routing) leaves the engine without a standing placement until a
later batch succeeds; :attr:`RepairOutcome.ok` and the engine's
:attr:`repair_failures` counter record it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.errors import InfeasibleInstanceError, InvalidInstanceError, ReproError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from .events import ChangeEvent, apply_events_batch, describe_events
from .fingerprints import root_fingerprint
from .incremental import (
    IncrementalNodDP,
    IncrementalSingleNod,
    IncrementalStats,
    IncrementalUnsupported,
)

__all__ = [
    "DynamicPlacement",
    "RepairOutcome",
    "DynamicStats",
    "trace_outcomes",
    "MODE_INCREMENTAL",
    "MODE_INCREMENTAL_REPAIR",
    "MODE_FULL_RESOLVE",
]

#: Repair modes recorded on :class:`RepairOutcome`.
MODE_INCREMENTAL = "incremental"
MODE_INCREMENTAL_REPAIR = "incremental+repair"
MODE_FULL_RESOLVE = "full-resolve"


@dataclass(frozen=True)
class RepairOutcome:
    """Result of folding one event batch into the standing placement."""

    ok: bool
    mode: str
    events: Tuple[ChangeEvent, ...]
    placement: Optional[Placement] = None
    cost: Optional[int] = None
    repair_s: float = 0.0
    fallback_reason: Optional[str] = None
    stats: IncrementalStats = field(default_factory=IncrementalStats)
    error: Optional[str] = None
    fingerprint: str = ""

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        head = f"[{self.mode}] {describe_events(self.events)}: "
        if not self.ok:
            return head + f"FAILED ({self.error})"
        return head + (
            f"|R|={self.cost} in {self.repair_s * 1e3:.2f}ms "
            f"(reused {self.stats.nodes_reused}/{self.stats.nodes_total} subtrees)"
        )


@dataclass(frozen=True)
class DynamicStats:
    """Lifetime counters of one :class:`DynamicPlacement`."""

    applies: int = 0
    repair_failures: int = 0
    fallbacks: int = 0
    events_seen: int = 0


class DynamicPlacement:
    """A standing placement kept current under a stream of events.

    Parameters
    ----------
    instance:
        The initial problem snapshot.  NoD instances get an incremental
        backend matching their policy; distance-constrained instances
        run in full-resolve fallback mode.
    solver:
        ``None`` picks the backend automatically.  Naming the backend's
        own solver (``"multiple-nod-dp"`` / ``"single-nod"``) is
        equivalent; any other registered name forces full-resolve mode
        through that solver.
    failed:
        Hosts already crashed before this engine existed — used by the
        storage layer to restore a session from a snapshot.  The initial
        solve honours them exactly like replayed failure events.
    strict:
        With ``strict=False`` an unsolvable initial snapshot leaves the
        engine standing with ``placement=None`` (the state a live engine
        reaches after a failed repair) instead of raising — again for
        snapshot restore, where that is a legitimate persisted state.

    Raises
    ------
    InfeasibleInstanceError
        If the initial snapshot has no placement (``strict=True`` only).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        solver: Optional[str] = None,
        *,
        failed: FrozenSet[int] = frozenset(),
        strict: bool = True,
    ) -> None:
        self._instance = instance
        self._failed: FrozenSet[int] = frozenset(failed)
        self._backend = None
        self._solver_name = solver
        if not instance.has_distance_constraint:
            if instance.policy is Policy.MULTIPLE and solver in (
                None,
                IncrementalNodDP.name,
            ):
                self._backend = IncrementalNodDP()
            elif instance.policy is Policy.SINGLE and solver in (
                None,
                IncrementalSingleNod.name,
            ):
                self._backend = IncrementalSingleNod()
        self._placement: Optional[Placement] = None
        self._applies = 0
        self._repair_failures = 0
        self._fallbacks = 0
        self._events_seen = 0
        # One mutex serialises apply/resolve_full so the engine can sit
        # behind the threaded service façade unchanged.
        self._mutex = threading.RLock()
        try:
            placement, _stats, _mode, _reason = self._solve_current()
        except ReproError:
            if strict:
                raise
            # Snapshot restore of a session whose last repair failed:
            # the persisted state legitimately has no standing placement.
            placement = None
        if placement is None and strict:
            raise InfeasibleInstanceError(
                "initial snapshot admits no placement after failure repair"
            )
        self._placement = placement

    # -- introspection -------------------------------------------------
    @property
    def instance(self) -> ProblemInstance:
        """The current (mutated) problem snapshot."""
        return self._instance

    @property
    def placement(self) -> Optional[Placement]:
        """The standing placement (``None`` after a failed repair)."""
        return self._placement

    @property
    def failed_hosts(self) -> FrozenSet[int]:
        """Nodes that crashed so far (never host again)."""
        return self._failed

    @property
    def solver_name(self) -> str:
        """The solver semantics this engine maintains."""
        if self._backend is not None:
            return self._backend.name
        return self._solver_name or "auto"

    @property
    def incremental(self) -> bool:
        """True when an incremental backend is active."""
        return self._backend is not None

    @property
    def requested_solver(self) -> Optional[str]:
        """The solver name this engine was constructed with (``None`` = auto).

        Distinct from :attr:`solver_name` (the resolved semantics): a
        restored engine must be rebuilt from the *requested* name so
        auto-selection re-runs identically.
        """
        return self._solver_name

    def checkpoint(
        self,
    ) -> Tuple[ProblemInstance, Optional[str], FrozenSet[int]]:
        """Atomic ``(instance, requested_solver, failed_hosts)`` snapshot.

        Taken under the engine mutex so the storage layer never captures
        a half-applied event batch.
        """
        with self._mutex:
            return self._instance, self._solver_name, self._failed

    def fingerprint(self) -> str:
        """Content fingerprint of the current snapshot (+ failures)."""
        return root_fingerprint(self._instance, self._failed)

    def stats(self) -> DynamicStats:
        """Lifetime apply/failure/fallback counters."""
        return DynamicStats(
            applies=self._applies,
            repair_failures=self._repair_failures,
            fallbacks=self._fallbacks,
            events_seen=self._events_seen,
        )

    # -- the core call -------------------------------------------------
    def apply(self, events: Sequence[ChangeEvent]) -> RepairOutcome:
        """Fold an event batch into the snapshot and repair the placement.

        Parameters
        ----------
        events:
            The batch, applied atomically: the snapshot is updated by
            every event first, then repaired once.

        Returns
        -------
        A :class:`RepairOutcome` — never raises for repair-level
        failures (infeasible snapshot, unreroutable orphan, a
        malformed event): those come back with ``ok=False`` and the
        engine keeps accepting events.  A batch containing an invalid
        event is rejected *whole* — the snapshot is untouched.
        """
        with self._mutex:
            return self._apply_locked(tuple(events))

    def _apply_locked(self, events: Tuple[ChangeEvent, ...]) -> RepairOutcome:
        t0 = time.perf_counter()
        # Fold into locals first: a malformed event mid-batch must not
        # leave the engine with a half-applied snapshot.  The batched
        # fold rebuilds the tree once per batch, not once per demand
        # event, which is what makes trace replay viable at 10k nodes.
        try:
            instance, newly_failed = apply_events_batch(self._instance, events)
            failed = self._failed | newly_failed
        except InvalidInstanceError as exc:
            return RepairOutcome(
                ok=False,
                mode=self._mode_hint(),
                events=events,
                repair_s=time.perf_counter() - t0,
                error=f"rejected batch: {type(exc).__name__}: {exc}",
                fingerprint=self.fingerprint(),
            )
        self._instance, self._failed = instance, failed
        self._applies += 1
        self._events_seen += len(events)

        try:
            placement, stats, mode, reason = self._solve_current()
        except ReproError as exc:
            self._placement = None
            self._repair_failures += 1
            return RepairOutcome(
                ok=False,
                mode=self._mode_hint(),
                events=events,
                repair_s=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
                fingerprint=self.fingerprint(),
            )
        if placement is None:
            self._placement = None
            self._repair_failures += 1
            return RepairOutcome(
                ok=False,
                mode=mode,
                events=events,
                repair_s=time.perf_counter() - t0,
                fallback_reason=reason,
                error="greedy repair could not reroute orphaned demand",
                fingerprint=self.fingerprint(),
            )
        if mode != MODE_INCREMENTAL:
            self._fallbacks += 1
        self._placement = placement
        return RepairOutcome(
            ok=True,
            mode=mode,
            events=events,
            placement=placement,
            cost=placement.n_replicas,
            repair_s=time.perf_counter() - t0,
            fallback_reason=reason,
            stats=stats,
            fingerprint=self.fingerprint(),
        )

    def resolve_full(self) -> Tuple[Optional[Placement], float]:
        """Cold from-scratch solve of the current snapshot.

        Runs the same solver semantics with an empty memo (a fresh
        backend), so the result is directly comparable with the
        standing incremental placement — the repair-vs-resolve report
        is built on this pairing.  Returns ``(placement, seconds)``;
        ``placement`` is ``None`` when the snapshot is unsolvable.
        """
        with self._mutex:
            t0 = time.perf_counter()
            try:
                if self._backend is not None:
                    cold = type(self._backend)()
                    placement, _stats, _mode, _reason = self._solve_with(cold)
                else:
                    placement, _stats, _mode, _reason = self._solve_registry()
            except ReproError:
                return None, time.perf_counter() - t0
            return placement, time.perf_counter() - t0

    # -- internals -----------------------------------------------------
    def _mode_hint(self) -> str:
        return (
            MODE_INCREMENTAL if self._backend is not None else MODE_FULL_RESOLVE
        )

    def _solve_current(self):
        if self._backend is not None:
            return self._solve_with(self._backend)
        return self._solve_registry()

    def _solve_with(self, backend):
        """Solve via an incremental backend, with the repair fallback."""
        try:
            placement, stats = backend.solve(self._instance, self._failed)
            return placement, stats, MODE_INCREMENTAL, None
        except IncrementalUnsupported as exc:
            reason = str(exc)
        # Single policy + failures: solve ignoring failures, then
        # reroute demand off failed hosts greedily.
        placement, stats = backend.solve(self._instance, frozenset())
        placement = self._repair_failed(placement)
        return placement, stats, MODE_INCREMENTAL_REPAIR, reason

    def _solve_registry(self):
        """Full-resolve fallback through the solver registry."""
        from ..runner import registry
        from ..service.selection import select_solver

        spec, reason = select_solver(self._instance, self._solver_name)
        result = registry.solve(spec.name, self._instance, keep_placement=True)
        if result.status != "ok" or result.placement is None:
            raise InfeasibleInstanceError(
                f"full re-solve via {spec.name!r} failed: "
                f"{result.error or result.status}"
            )
        placement = self._repair_failed(result.placement)
        why = (
            "distance constraint breaks subtree optimal substructure"
            if self._instance.has_distance_constraint
            else f"no incremental backend ({reason})"
        )
        return placement, IncrementalStats(), MODE_FULL_RESOLVE, why

    def _repair_failed(self, placement: Placement) -> Optional[Placement]:
        """Move any replica off a failed host via greedy repair."""
        if not self._failed or not (placement.replicas & self._failed):
            return placement
        from ..simulate.failures import repair_placement

        rr = repair_placement(self._instance, placement, self._failed)
        return rr.placement if rr is not None else None


def trace_outcomes(
    engine: DynamicPlacement,
    trace: Sequence[Sequence[ChangeEvent]],
) -> List[RepairOutcome]:
    """Apply a whole event trace, collecting one outcome per batch."""
    return [engine.apply(batch) for batch in trace]
