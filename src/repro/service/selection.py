"""Automatic solver selection from registry applicability metadata.

When a :class:`~repro.service.schema.SolveRequest` names no solver, the
service walks a documented fallback chain and picks the first solver
whose :meth:`~repro.runner.registry.SolverSpec.applicable` accepts the
instance.  The chain orders solvers *specialised-and-exact first*:

1. ``multiple-bin``    — exact and polynomial on Multiple/binary trees
                         (Theorem 6 of the paper);
2. ``multiple-nod-dp`` — exact DP for Multiple-NoD on general trees;
3. ``single-nod``      — the paper's Single-NoD heuristic;
4. ``single-gen``      — the paper's general Single heuristic;
5. ``multiple-greedy`` — general Multiple heuristic;
6. ``greedy-packing``  — Single fallback heuristic;
7. ``local``           — policy-agnostic local search, accepts anything.

Exponential exact solvers (``exact``, ``exact-single``,
``exact-multiple``) are deliberately *not* in the chain: auto-selection
is the serving default and must stay polynomial.  Ask for them by name.

If the chain is exhausted (only possible with a stripped-down registry),
any remaining applicable registered solver is used — heuristics before
exact ones, then alphabetically — and only if *nothing* applies does
:class:`NoApplicableSolverError` surface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ReproError
from ..core.instance import ProblemInstance
from ..runner import registry

__all__ = [
    "AUTO_CHAIN",
    "NoApplicableSolverError",
    "selection_candidates",
    "select_solver",
]

# Order matters: first applicable entry wins.  Keep in sync with the
# module docstring and the README endpoint reference.
AUTO_CHAIN: Tuple[str, ...] = (
    "multiple-bin",
    "multiple-nod-dp",
    "single-nod",
    "single-gen",
    "multiple-greedy",
    "greedy-packing",
    "local",
)


class NoApplicableSolverError(ReproError):
    """No registered solver accepts the instance."""


def selection_candidates(instance: ProblemInstance) -> List[str]:
    """Solver names auto-selection would consider, in preference order."""
    registered = {s.name: s for s in registry.available_solvers()}
    chain = [
        n for n in AUTO_CHAIN
        if n in registered and registered[n].applicable(instance)
    ]
    extras = sorted(
        (s.exact, s.name)
        for s in registered.values()
        if s.name not in AUTO_CHAIN and s.applicable(instance)
    )
    return chain + [name for _exact, name in extras]


def select_solver(
    instance: ProblemInstance, explicit: Optional[str] = None
) -> Tuple[registry.SolverSpec, str]:
    """Resolve the solver for one request.

    Returns ``(spec, reason)`` where ``reason`` is a human-readable
    account for the response diagnostics.  An ``explicit`` name is
    looked up verbatim (:class:`~repro.runner.registry.UnknownSolverError`
    for unknown names) and *not* applicability-checked here — the
    registry's uniform ``solve`` reports inapplicability as a result
    status, which is more informative than second-guessing the caller.
    """
    if explicit is not None:
        return registry.get_solver(explicit), f"requested {explicit!r}"
    candidates = selection_candidates(instance)
    if not candidates:
        raise NoApplicableSolverError(
            f"no registered solver accepts {instance.variant} instances"
        )
    name = candidates[0]
    spec = registry.get_solver(name)
    in_chain = name in AUTO_CHAIN
    return spec, (
        f"auto-selected {name!r} for {instance.variant} "
        f"({'fallback chain' if in_chain else 'registry fallback'}, "
        f"{'exact' if spec.exact else 'heuristic'})"
    )
